//! Ordered index over timestamps.
//!
//! The TVDP data model keeps two temporal descriptors per image —
//! capture time and upload time — and serves temporal range filters
//! (paper Section IV). Timestamps are Unix seconds (`i64`).

use std::collections::BTreeMap;
use std::ops::Bound;

/// A secondary index from timestamp to document handles. Multiple
/// documents may share a timestamp.
#[derive(Debug, Clone, Default)]
pub struct TemporalIndex {
    by_time: BTreeMap<i64, Vec<usize>>,
    len: usize,
}

impl TemporalIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Indexes `doc` at `timestamp`.
    pub fn insert(&mut self, timestamp: i64, doc: usize) {
        self.by_time.entry(timestamp).or_default().push(doc);
        self.len += 1;
    }

    /// Documents with timestamps in `[from, to]` (inclusive), in time
    /// order (ties in insertion order).
    pub fn range(&self, from: i64, to: i64) -> Vec<usize> {
        if from > to {
            return Vec::new();
        }
        self.by_time
            .range((Bound::Included(from), Bound::Included(to)))
            .flat_map(|(_, docs)| docs.iter().copied())
            .collect()
    }

    /// Documents strictly before `t`, in time order.
    pub fn before(&self, t: i64) -> Vec<usize> {
        self.by_time
            .range((Bound::Unbounded, Bound::Excluded(t)))
            .flat_map(|(_, docs)| docs.iter().copied())
            .collect()
    }

    /// Documents at or after `t`, in time order.
    pub fn since(&self, t: i64) -> Vec<usize> {
        self.by_time
            .range((Bound::Included(t), Bound::Unbounded))
            .flat_map(|(_, docs)| docs.iter().copied())
            .collect()
    }

    /// Earliest and latest indexed timestamps.
    pub fn span(&self) -> Option<(i64, i64)> {
        let first = *self.by_time.keys().next()?;
        let last = *self.by_time.keys().next_back()?;
        Some((first, last))
    }

    /// The `k` most recent documents, newest first.
    pub fn most_recent(&self, k: usize) -> Vec<usize> {
        if k == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(k);
        for (_, docs) in self.by_time.iter().rev() {
            for &d in docs.iter().rev() {
                out.push(d);
                if out.len() == k {
                    return out;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TemporalIndex {
        let mut idx = TemporalIndex::new();
        idx.insert(100, 0);
        idx.insert(200, 1);
        idx.insert(200, 2);
        idx.insert(300, 3);
        idx.insert(50, 4);
        idx
    }

    #[test]
    fn range_inclusive_both_ends() {
        let idx = sample();
        assert_eq!(idx.range(100, 200), vec![0, 1, 2]);
        assert_eq!(idx.range(200, 200), vec![1, 2]);
        assert_eq!(idx.range(301, 400), Vec::<usize>::new());
        assert_eq!(idx.range(300, 100), Vec::<usize>::new());
    }

    #[test]
    fn before_and_since() {
        let idx = sample();
        assert_eq!(idx.before(200), vec![4, 0]);
        assert_eq!(idx.since(200), vec![1, 2, 3]);
        assert!(idx.before(0).is_empty());
    }

    #[test]
    fn span_and_len() {
        let idx = sample();
        assert_eq!(idx.span(), Some((50, 300)));
        assert_eq!(idx.len(), 5);
        assert_eq!(TemporalIndex::new().span(), None);
    }

    #[test]
    fn most_recent_newest_first() {
        let idx = sample();
        assert_eq!(idx.most_recent(3), vec![3, 2, 1]);
        assert_eq!(idx.most_recent(0), Vec::<usize>::new());
        assert_eq!(idx.most_recent(100).len(), 5);
    }

    #[test]
    fn negative_timestamps_supported() {
        let mut idx = TemporalIndex::new();
        idx.insert(-100, 0);
        idx.insert(0, 1);
        assert_eq!(idx.range(-200, -1), vec![0]);
        assert_eq!(idx.span(), Some((-100, 0)));
    }
}
