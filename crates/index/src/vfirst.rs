//! Visual-first hybrid index: IVF-style feature-space cells with
//! spatial MBR pruning.
//!
//! The Visual R*-tree ([`crate::hybrid`]) orders its hierarchy
//! *spatially first*: nodes group by location, and feature balls are a
//! secondary pruning channel. "Hybrid Indexes to Expedite Spatial-Visual
//! Search" (the follow-up study to the TVDP paper) shows the opposite
//! ordering wins when the spatial predicate is broad and the visual one
//! is sharp — the common shape for "anywhere downtown, looking like this
//! example". This module is that alternative: a flat inverted file of
//! feature-space cells (IVF-flat), each cell carrying
//!
//! * a feature centroid and covering radius (primary, visual ordering),
//! * the spatial MBR of its members (secondary, spatial pruning).
//!
//! A query walks cells in ascending order of the visual lower bound
//! `max(‖q − centroid‖ − radius, 0)`, skips cells whose MBR misses the
//! region, and stops as soon as the next cell's lower bound cannot beat
//! the current k-th distance. Results are **exact** — cells partition
//! the corpus, the bound is sound, and every surviving member is scored
//! with the true distance — so callers may swap this for the R*-tree
//! without any recall change.
//!
//! Like the R*-tree, the index owns no feature bytes: entries carry
//! `u32` row handles into the shared feature arena, and centroids are
//! derived aggregates. Construction is deterministic: entries go to the
//! strictly-nearest centroid (first wins ties), and an over-full cell
//! splits on its farthest member pair — no RNG, no wall clock.

use tvdp_geo::BBox;
use tvdp_kernel::{l2, l2_sq, RowSource, TopK, TotalF32};

/// Maximum members per cell before it splits. Chosen so a cell scan
/// (CELL_MAX exact distances) costs about as much as one level of
/// R*-tree fan-out, keeping the two hybrid orderings comparable in
/// per-node work.
pub const CELL_MAX: usize = 128;

#[derive(Debug, Clone)]
struct Member<T> {
    bbox: BBox,
    /// Arena row handle of this member's feature vector.
    row: u32,
    value: T,
}

#[derive(Debug, Clone)]
struct Cell<T> {
    /// Mean feature of the members (recomputed from arena rows on every
    /// mutation; fixed member order makes the sum bit-stable).
    centroid: Vec<f32>,
    /// Covering radius: every member feature is within `radius` of
    /// `centroid`.
    radius: f32,
    /// Spatial MBR of the members (secondary pruning channel).
    mbr: BBox,
    members: Vec<Member<T>>,
}

impl<T> Cell<T> {
    /// Recomputes centroid, radius and MBR from the members.
    fn refresh(&mut self, rows: &impl RowSource, dim: usize) {
        let mut centroid = vec![0.0f32; dim];
        // tvdp-lint: allow(no_panic, reason = "cells are created non-empty and splits never empty one; refresh is only called on live cells")
        let mut mbr = self.members.first().expect("cell non-empty").bbox;
        for m in &self.members {
            mbr = mbr.union(&m.bbox);
            for (c, &f) in centroid.iter_mut().zip(rows.row(m.row)) {
                *c += f;
            }
        }
        let n = self.members.len() as f32;
        for c in &mut centroid {
            *c /= n;
        }
        let radius = self
            .members
            .iter()
            .map(|m| l2(&centroid, rows.row(m.row)))
            .fold(0.0f32, f32::max);
        self.centroid = centroid;
        self.radius = radius;
        self.mbr = mbr;
    }
}

/// The visual-first hybrid index over arena row handles.
#[derive(Debug, Clone)]
pub struct VisualFirstIndex<T> {
    cells: Vec<Cell<T>>,
    dim: usize,
    len: usize,
}

impl<T: Clone> VisualFirstIndex<T> {
    /// An empty index over `dim`-dimensional feature vectors.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "zero-dimensional features");
        Self {
            cells: Vec::new(),
            dim,
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of feature-space cells (diagnostics/planning).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Inserts an object with spatial extent `bbox` whose feature
    /// vector is arena row `row` of `rows`. The source must resolve
    /// every previously inserted row too (centroid maintenance re-reads
    /// member features).
    ///
    /// # Panics
    ///
    /// Panics on feature dimensionality mismatch.
    pub fn insert(&mut self, rows: &impl RowSource, bbox: BBox, row: u32, value: T) {
        assert_eq!(rows.dim(), self.dim, "feature dimension mismatch");
        self.len += 1;
        let member = Member { bbox, row, value };
        if self.cells.is_empty() {
            let mut cell = Cell {
                centroid: Vec::new(),
                radius: 0.0,
                mbr: bbox,
                members: vec![member],
            };
            cell.refresh(rows, self.dim);
            self.cells.push(cell);
            return;
        }
        // Strictly-nearest centroid; the first minimum wins ties, so
        // assignment is independent of anything but insertion order.
        let feat = rows.row(member.row);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (i, cell) in self.cells.iter().enumerate() {
            let d = l2_sq(&cell.centroid, feat);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        self.cells[best].members.push(member);
        if self.cells[best].members.len() > CELL_MAX {
            let spawned = self.split(rows, best);
            self.cells.push(spawned);
        } else {
            self.cells[best].refresh(rows, self.dim);
        }
    }

    /// Splits over-full cell `at` on its farthest member pair: seed A is
    /// the member farthest from the centroid, seed B the member farthest
    /// from A, and each member joins its strictly-nearer seed (A on
    /// ties). Returns the new cell; `at` keeps A's half.
    fn split(&mut self, rows: &impl RowSource, at: usize) -> Cell<T> {
        let members = std::mem::take(&mut self.cells[at].members);
        let centroid = &self.cells[at].centroid;
        let far = |from: &[f32], members: &[Member<T>]| {
            let mut best = 0usize;
            let mut best_d = -1.0f32;
            for (i, m) in members.iter().enumerate() {
                let d = l2_sq(from, rows.row(m.row));
                if d > best_d {
                    best_d = d;
                    best = i;
                }
            }
            best
        };
        let seed_a = rows.row(members[far(centroid, &members)].row).to_vec();
        let seed_b = rows.row(members[far(&seed_a, &members)].row).to_vec();
        let mut keep = Vec::new();
        let mut spawn = Vec::new();
        for m in members {
            let feat = rows.row(m.row);
            if l2_sq(&seed_a, feat) <= l2_sq(&seed_b, feat) {
                keep.push(m);
            } else {
                spawn.push(m);
            }
        }
        // Seed B is strictly nearer to itself than to A (they differ or
        // the corpus is degenerate); both halves are non-empty whenever
        // the seeds differ. A fully degenerate cell (all features equal)
        // keeps everything in `keep`; fall back to an even split so the
        // cap still holds.
        if spawn.is_empty() {
            let half = keep.len() / 2;
            spawn = keep.split_off(half);
        }
        let mut spawned = Cell {
            centroid: Vec::new(),
            radius: 0.0,
            mbr: spawn[0].bbox,
            members: spawn,
        };
        spawned.refresh(rows, self.dim);
        self.cells[at].members = keep;
        self.cells[at].refresh(rows, self.dim);
        spawned
    }

    /// Spatial-visual top-k, visual-first: the `k` entries intersecting
    /// `region` most similar to `query`. Exact — identical result set to
    /// [`crate::VisualRTree::knn_visual`] up to tie order.
    pub fn knn_visual(
        &self,
        rows: &impl RowSource,
        region: &BBox,
        query: &[f32],
        k: usize,
    ) -> Vec<(f32, &T)> {
        assert_eq!(query.len(), self.dim, "feature dimension mismatch");
        if k == 0 {
            return Vec::new();
        }
        // Cells in ascending visual-lower-bound order; the bound is on
        // the *distance*, compare in squared space to skip roots.
        let mut order: Vec<(f32, usize)> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.mbr.intersects(region))
            .map(|(i, c)| ((l2(&c.centroid, query) - c.radius).max(0.0), i))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Top-k on (squared distance, cell, member): the index pair makes
        // tie order deterministic and lets us return borrowed payloads.
        let mut top: TopK<(TotalF32, usize, usize)> = TopK::new(k);
        for &(lb, ci) in &order {
            if let Some(&(TotalF32(worst), _, _)) = top.threshold() {
                if top.len() == k && lb * lb > worst {
                    break;
                }
            }
            let cell = &self.cells[ci];
            for (mi, m) in cell.members.iter().enumerate() {
                if m.bbox.intersects(region) {
                    let d_sq = l2_sq(rows.row(m.row), query);
                    top.push((TotalF32(d_sq), ci, mi));
                }
            }
        }
        top.into_sorted_vec()
            .into_iter()
            .map(|(TotalF32(d_sq), ci, mi)| (d_sq.sqrt(), &self.cells[ci].members[mi].value))
            .collect()
    }

    /// Spatial-visual range query in squared-distance space: members
    /// intersecting `region` with `l2_sq(feature, query) <= max_dist_sq`,
    /// as `(squared_distance, payload)` sorted ascending.
    pub fn range_visual_sq(
        &self,
        rows: &impl RowSource,
        region: &BBox,
        query: &[f32],
        max_dist_sq: f32,
    ) -> Vec<(f32, &T)> {
        assert_eq!(query.len(), self.dim, "feature dimension mismatch");
        let mut out = Vec::new();
        for cell in &self.cells {
            if !cell.mbr.intersects(region) {
                continue;
            }
            let lb = (l2(&cell.centroid, query) - cell.radius).max(0.0);
            if lb * lb > max_dist_sq {
                continue;
            }
            for m in &cell.members {
                if m.bbox.intersects(region) {
                    let d_sq = l2_sq(rows.row(m.row), query);
                    if d_sq <= max_dist_sq {
                        out.push((d_sq, &m.value));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// [`VisualFirstIndex::range_visual_sq`] with rooted distances.
    pub fn range_visual(
        &self,
        rows: &impl RowSource,
        region: &BBox,
        query: &[f32],
        max_dist: f32,
    ) -> Vec<(f32, &T)> {
        self.range_visual_sq(rows, region, query, max_dist * max_dist)
            .into_iter()
            .map(|(d_sq, v)| (d_sq.sqrt(), v))
            .collect()
    }

    /// Verifies the cell invariants: members within the covering radius
    /// and MBR, counts adding up, no cell over the cap (test helper).
    pub fn check_invariants(&self, rows: &impl RowSource) {
        let mut total = 0usize;
        for cell in &self.cells {
            assert!(!cell.members.is_empty(), "empty cell");
            assert!(cell.members.len() <= CELL_MAX, "cell over cap");
            total += cell.members.len();
            for m in &cell.members {
                let d = l2(rows.row(m.row), &cell.centroid);
                assert!(
                    d <= cell.radius + 1e-4,
                    "feature escapes radius: {d} > {}",
                    cell.radius
                );
                assert!(cell.mbr.contains_bbox(&m.bbox), "member escapes MBR");
            }
        }
        assert_eq!(total, self.len, "member count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_geo::GeoPoint;
    use tvdp_kernel::FeatureSlab;

    type RawEntry = (BBox, Vec<f32>, usize);

    /// Same corpus shape as the hybrid R*-tree tests: spatial grid,
    /// group-structured features.
    fn build(n: usize) -> (VisualFirstIndex<usize>, FeatureSlab, Vec<RawEntry>) {
        let mut index = VisualFirstIndex::new(4);
        let mut slab = FeatureSlab::new(4);
        let mut raw = Vec::new();
        for i in 0..n {
            let lat = 34.0 + (i / 12) as f64 * 0.001;
            let lon = -118.3 + (i % 12) as f64 * 0.001;
            let b = BBox::from_point(GeoPoint::new(lat, lon));
            let group = i % 4;
            let mut f = vec![0.1f32; 4];
            f[group] = 1.0 + (i as f32 * 0.001);
            let row = slab.push(&f);
            index.insert(&slab, b, row, i);
            raw.push((b, f, i));
        }
        (index, slab, raw)
    }

    #[test]
    fn knn_visual_matches_linear_scan_exactly() {
        let (index, slab, raw) = build(400);
        index.check_invariants(&slab);
        assert!(index.cell_count() > 1, "corpus should split cells");
        let region = BBox::new(33.99, -118.31, 34.05, -118.27);
        let query = {
            let mut f = vec![0.1f32; 4];
            f[1] = 1.05;
            f
        };
        let got: Vec<(f32, usize)> = index
            .knn_visual(&slab, &region, &query, 10)
            .into_iter()
            .map(|(d, id)| (d, *id))
            .collect();
        let mut lin: Vec<(f32, usize)> = raw
            .iter()
            .filter(|(b, _, _)| b.intersects(&region))
            .map(|(_, f, id)| (l2(f, &query), *id))
            .collect();
        lin.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(got.len(), 10);
        for ((gd, gid), (ed, eid)) in got.iter().zip(&lin[..10]) {
            assert_eq!(gd.to_bits(), ed.to_bits(), "distance for {gid} vs {eid}");
        }
    }

    #[test]
    fn range_visual_matches_linear_scan() {
        let (index, slab, raw) = build(200);
        let region = BBox::new(34.0, -118.3, 34.01, -118.292);
        let query = {
            let mut f = vec![0.1f32; 4];
            f[2] = 1.0;
            f
        };
        let got: Vec<usize> = index
            .range_visual(&slab, &region, &query, 0.3)
            .into_iter()
            .map(|(_, id)| *id)
            .collect();
        let mut expected: Vec<(f32, usize)> = raw
            .iter()
            .filter(|(b, f, _)| b.intersects(&region) && l2(f, &query) <= 0.3)
            .map(|(_, f, id)| (l2(f, &query), *id))
            .collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0));
        let expected_ids: Vec<usize> = expected.into_iter().map(|(_, id)| id).collect();
        assert_eq!(got, expected_ids);
        assert!(!got.is_empty());
    }

    #[test]
    fn agrees_with_spatial_first_ordering() {
        // Both hybrid orderings are exact; on tie-free data they must
        // return identical (distance, id) lists.
        let (index, slab, raw) = build(300);
        let mut tree = crate::VisualRTree::new(4);
        for (b, _, id) in &raw {
            tree.insert(&slab, *b, *id as u32, *id);
        }
        let region = BBox::new(33.9, -118.4, 34.1, -118.2);
        let query = vec![0.1f32, 0.1, 1.0, 0.1];
        let vf: Vec<(u32, usize)> = index
            .knn_visual(&slab, &region, &query, 15)
            .into_iter()
            .map(|(d, id)| (d.to_bits(), *id))
            .collect();
        let sf: Vec<(u32, usize)> = tree
            .knn_visual(&slab, &region, &query, 15)
            .into_iter()
            .map(|(d, id)| (d.to_bits(), *id))
            .collect();
        assert_eq!(vf, sf);
    }

    #[test]
    fn spatial_constraint_respected() {
        let (index, slab, _) = build(100);
        let empty_region = BBox::new(35.0, -117.0, 35.1, -116.9);
        let query = vec![1.0, 0.1, 0.1, 0.1];
        assert!(index
            .range_visual(&slab, &empty_region, &query, 100.0)
            .is_empty());
        assert!(index.knn_visual(&slab, &empty_region, &query, 5).is_empty());
    }

    #[test]
    fn works_through_a_detached_view() {
        let (index, slab, _) = build(150);
        let view = slab.view();
        let region = BBox::new(33.9, -118.4, 34.1, -118.2);
        let query = vec![0.1f32, 0.1, 1.0, 0.1];
        let direct = index.knn_visual(&slab, &region, &query, 7);
        let snapped = index.knn_visual(&view, &region, &query, 7);
        assert_eq!(direct.len(), snapped.len());
        for ((da, ia), (db, ib)) in direct.iter().zip(&snapped) {
            assert_eq!(da.to_bits(), db.to_bits());
            assert_eq!(ia, ib);
        }
    }

    #[test]
    fn degenerate_identical_features_still_split() {
        // All-equal features defeat farthest-pair seeding; the fallback
        // even split must keep every cell under the cap.
        let mut index = VisualFirstIndex::new(3);
        let mut slab = FeatureSlab::new(3);
        for i in 0..(CELL_MAX * 2 + 10) {
            let row = slab.push(&[1.0, 2.0, 3.0]);
            let b = BBox::from_point(GeoPoint::new(34.0, -118.0 + i as f64 * 1e-5));
            index.insert(&slab, b, row, i);
        }
        index.check_invariants(&slab);
    }

    #[test]
    fn empty_index_and_dim_checks() {
        let index: VisualFirstIndex<u8> = VisualFirstIndex::new(3);
        assert!(index.is_empty());
        assert_eq!(index.dim(), 3);
        let slab = FeatureSlab::new(3);
        let region = BBox::new(0.0, 0.0, 1.0, 1.0);
        assert!(index
            .range_visual(&slab, &region, &[0.0; 3], 1.0)
            .is_empty());
        assert!(index.knn_visual(&slab, &region, &[0.0; 3], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dim_rejected() {
        let mut index: VisualFirstIndex<u8> = VisualFirstIndex::new(3);
        let mut slab = FeatureSlab::new(4);
        let row = slab.push(&[0.0; 4]);
        index.insert(&slab, BBox::new(0.0, 0.0, 1.0, 1.0), row, 1);
    }
}
