//! Property-based tests: every index must agree with a linear scan.

use proptest::prelude::*;
use tvdp_geo::{AngularRange, BBox, Fov, GeoPoint};
use tvdp_index::{
    InvertedIndex, LshConfig, LshIndex, OrientedRTree, RTree, TemporalIndex, VisualRTree,
};

fn la_point() -> impl Strategy<Value = GeoPoint> {
    (33.9f64..34.1, -118.4f64..-118.2).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

fn la_bbox() -> impl Strategy<Value = BBox> {
    (la_point(), la_point()).prop_map(|(a, b)| BBox::from_points(&[a, b]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_range_equals_linear_scan(
        points in proptest::collection::vec(la_point(), 1..120),
        query in la_bbox(),
    ) {
        let mut tree = RTree::new();
        for (i, p) in points.iter().enumerate() {
            tree.insert_point(*p, i);
        }
        tree.check_invariants();
        let mut got: Vec<usize> = tree.range(&query).into_iter().copied().collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| query.contains(p))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn rtree_knn_equals_linear_scan(
        points in proptest::collection::vec(la_point(), 1..100),
        q in la_point(),
        k in 1usize..10,
    ) {
        let mut tree = RTree::new();
        for (i, p) in points.iter().enumerate() {
            tree.insert_point(*p, i);
        }
        let got: Vec<f64> = tree.knn(&q, k).iter().map(|(d, _)| *d).collect();
        let mut lin: Vec<f64> = points.iter().map(|p| q.fast_distance_m(p)).collect();
        lin.sort_by(f64::total_cmp);
        lin.truncate(k);
        prop_assert_eq!(got.len(), lin.len());
        for (g, e) in got.iter().zip(&lin) {
            prop_assert!((g - e).abs() < 1e-6, "knn distance {} vs linear {}", g, e);
        }
    }

    #[test]
    fn bulk_load_equals_linear_scan(
        points in proptest::collection::vec(la_point(), 0..150),
        query in la_bbox(),
    ) {
        let tree = RTree::bulk_load(
            points.iter().enumerate().map(|(i, p)| (BBox::from_point(*p), i)).collect(),
        );
        if !points.is_empty() {
            tree.check_invariants();
        }
        let mut got: Vec<usize> = tree.range(&query).into_iter().copied().collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| query.contains(p))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn remove_then_range_equals_filtered_scan(
        points in proptest::collection::vec(la_point(), 1..100),
        removals in proptest::collection::vec(0usize..100, 0..40),
        query in la_bbox(),
    ) {
        let mut tree = RTree::new();
        for (i, p) in points.iter().enumerate() {
            tree.insert_point(*p, i);
        }
        let mut removed = std::collections::HashSet::new();
        for r in removals {
            let idx = r % points.len();
            if removed.contains(&idx) {
                continue;
            }
            let got = tree.remove(&BBox::from_point(points[idx]), |&v| v == idx);
            prop_assert_eq!(got, Some(idx), "live entry must be removable");
            removed.insert(idx);
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), points.len() - removed.len());
        let mut got: Vec<usize> = tree.range(&query).into_iter().copied().collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(i, p)| !removed.contains(i) && query.contains(p))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn oriented_rtree_equals_linear_scan(
        cams in proptest::collection::vec((la_point(), 0.0f64..360.0), 1..80),
        query in la_bbox(),
        dir_start in 0.0f64..360.0,
        dir_width in 10.0f64..180.0,
    ) {
        let fovs: Vec<Fov> =
            cams.iter().map(|(p, h)| Fov::new(*p, *h, 60.0, 100.0)).collect();
        let mut tree = OrientedRTree::new();
        for (i, f) in fovs.iter().enumerate() {
            tree.insert(*f, i);
        }
        tree.check_invariants();
        let dirs = AngularRange::new(dir_start, dir_width);
        let mut got: Vec<usize> =
            tree.range_directed(&query, &dirs).into_iter().map(|(_, i)| *i).collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = fovs
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.scene_location().intersects(&query) && f.direction_range().overlaps(&dirs)
            })
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn visual_rtree_range_equals_linear_scan(
        entries in proptest::collection::vec(
            (la_point(), proptest::collection::vec(-1.0f32..1.0, 4)), 1..80),
        query_region in la_bbox(),
        query_feat in proptest::collection::vec(-1.0f32..1.0, 4),
        threshold in 0.1f32..2.0,
    ) {
        let mut tree = VisualRTree::new(4);
        let mut slab = tvdp_kernel::FeatureSlab::new(4);
        for (i, (p, f)) in entries.iter().enumerate() {
            let row = slab.push(f);
            tree.insert(&slab, BBox::from_point(*p), row, i);
        }
        tree.check_invariants(&slab);
        let l2 = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        };
        let mut got: Vec<usize> = tree
            .range_visual(&slab, &query_region, &query_feat, threshold)
            .into_iter()
            .map(|(_, i)| *i)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter(|(_, (p, f))| {
                query_region.contains(p) && l2(f, &query_feat) <= threshold
            })
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn lsh_self_query_always_hits(
        vectors in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 6), 1..60),
        probe in 0usize..60,
    ) {
        let mut idx = LshIndex::new(6, LshConfig::default());
        let mut slab = tvdp_kernel::FeatureSlab::new(6);
        for v in &vectors {
            let row = slab.push(v);
            idx.insert(v, row);
        }
        let probe = probe % vectors.len();
        // A stored vector hashes identically to itself in every table.
        prop_assert!(idx.candidates(&vectors[probe]).contains(&probe));
        let knn = idx.knn(&slab, &vectors[probe], 1);
        prop_assert!(knn[0].0 < 1e-6);
    }

    #[test]
    fn inverted_and_subset_of_or(
        docs in proptest::collection::vec("[a-d ]{0,24}", 1..30),
        query in "[a-d]( [a-d])?",
    ) {
        let mut idx = InvertedIndex::new();
        for (i, d) in docs.iter().enumerate() {
            idx.index_document(i, d);
        }
        let and = idx.search_and(&query);
        let or = idx.search_or(&query);
        for d in &and {
            prop_assert!(or.contains(d), "AND result {} missing from OR", d);
        }
        // Ranked results cover exactly the OR set when k is large.
        let ranked: Vec<usize> =
            idx.search_ranked(&query, docs.len()).into_iter().map(|(_, d)| d).collect();
        let mut ranked_sorted = ranked.clone();
        ranked_sorted.sort_unstable();
        prop_assert_eq!(ranked_sorted, or);
    }

    #[test]
    fn temporal_range_equals_filter(
        stamps in proptest::collection::vec(-1000i64..1000, 1..80),
        from in -1000i64..1000,
        width in 0i64..500,
    ) {
        let mut idx = TemporalIndex::new();
        for (i, &t) in stamps.iter().enumerate() {
            idx.insert(t, i);
        }
        let to = from + width;
        let mut got = idx.range(from, to);
        got.sort_unstable();
        let mut expected: Vec<usize> = stamps
            .iter()
            .enumerate()
            .filter(|(_, &t)| t >= from && t <= to)
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
