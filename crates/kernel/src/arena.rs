//! Zero-copy feature arena: contiguous, append-only `f32` row storage.
//!
//! Every dense feature vector in TVDP used to live in up to three heap
//! copies (store table, hybrid-tree leaf, LSH table), and every lookup
//! cloned a fresh `Vec<f32>`. The arena replaces all of that with one
//! slab per feature family: rows are appended into fixed-capacity
//! chunks that never move once written, so indexes store bare `u32`
//! row handles and distance kernels run directly over arena memory.
//!
//! Three access forms, all borrowing instead of cloning:
//!
//! * [`FeatureSlab::row`] — direct `&[f32]` while you hold the slab
//!   (ingest paths, benches, anything under the owner's lock),
//! * [`SlabView`] — an `Arc`-sharing snapshot detached from the slab;
//!   chunk pointers are reference-counted, only the partial tail chunk
//!   is copied once per refresh. Query execution resolves every row
//!   through a view with pure pointer arithmetic: no locks, no
//!   allocation, no copies on the hot path,
//! * [`RowRef`] — an owned handle to a single row (`Deref<Target =
//!   [f32]>`) for callers that outlive the slab borrow.
//!
//! Rows are write-once: replacing a feature appends a new row and
//! repoints the handle, which is what makes lock-free snapshot reads
//! safe without any `unsafe` code.
//!
//! Frozen chunks can additionally be **spilled**: the owner trades the
//! resident `Arc<[f32]>` for a [`ChunkLoader`] handle
//! ([`FeatureSlab::spill_frozen`]), and the first row access through
//! any holder transparently reloads the chunk exactly once
//! ([`Chunk::data`]). Because chunks are write-once, a spilled copy on
//! disk never goes stale, so re-spilling a reloaded chunk is a pure
//! in-memory swap. Everything still flows through [`RowSource`] — index
//! structures and query execution cannot tell a reloaded chunk from one
//! that never left memory.

use std::sync::{Arc, OnceLock};

use crate::quant::{QuantChunk, QuantParams};

/// Rows per storage chunk. Chunks except the last are always exactly
/// this full, so `row -> (chunk, offset)` is pure arithmetic. 1024 rows
/// keeps a dim-512 chunk at 2 MiB (hugepage-friendly) and bounds the
/// tail copy a snapshot refresh may perform.
pub const ROWS_PER_CHUNK: usize = 1024;

/// Reloads a spilled chunk's floats from backing storage.
///
/// Implementations live with whatever owns the spilled bytes (the
/// storage layer's snapshot tier); the arena only needs the exact
/// float sequence back. `load` must be pure for a given chunk index —
/// chunks are write-once, so the loader is called at most once per
/// [`Chunk`] handle and every call for the same index must return the
/// same data.
pub trait ChunkLoader: Send + Sync + std::fmt::Debug {
    /// Returns the full float contents of chunk `index`.
    fn load(&self, index: usize) -> Arc<[f32]>;
}

#[derive(Debug)]
enum ChunkState {
    /// The floats are in memory.
    Resident(Arc<[f32]>),
    /// The floats were spilled; the first access reloads them through
    /// the loader and caches the result for every later access.
    Spilled {
        index: usize,
        loader: Arc<dyn ChunkLoader>,
        cache: OnceLock<Arc<[f32]>>,
    },
}

/// One frozen slab chunk: either resident floats or a lazy handle to a
/// spilled copy. Clones share state (`Arc`), so a reload performed
/// through one holder is visible to every clone taken from the same
/// spill.
#[derive(Debug, Clone)]
pub struct Chunk {
    state: Arc<ChunkState>,
}

impl Chunk {
    /// A chunk whose floats are in memory.
    pub fn resident(data: Arc<[f32]>) -> Chunk {
        Chunk {
            state: Arc::new(ChunkState::Resident(data)),
        }
    }

    /// A chunk whose floats live with `loader` until first access.
    pub fn spilled(index: usize, loader: Arc<dyn ChunkLoader>) -> Chunk {
        Chunk {
            state: Arc::new(ChunkState::Spilled {
                index,
                loader,
                cache: OnceLock::new(),
            }),
        }
    }

    fn arc(&self) -> &Arc<[f32]> {
        match &*self.state {
            ChunkState::Resident(data) => data,
            ChunkState::Spilled {
                index,
                loader,
                cache,
            } => cache.get_or_init(|| loader.load(*index)),
        }
    }

    /// The chunk's floats, reloading from the spill on first access.
    #[inline]
    pub fn data(&self) -> &[f32] {
        self.arc()
    }

    /// An owning handle to the chunk's floats (reloading if spilled).
    pub fn data_arc(&self) -> Arc<[f32]> {
        Arc::clone(self.arc())
    }

    /// Whether the floats are currently in memory (resident, or a
    /// spilled chunk that has already been reloaded).
    pub fn is_in_memory(&self) -> bool {
        match &*self.state {
            ChunkState::Resident(_) => true,
            ChunkState::Spilled { cache, .. } => cache.get().is_some(),
        }
    }

    /// Whether this handle points at a spilled copy (reloaded or not).
    pub fn is_spilled(&self) -> bool {
        matches!(&*self.state, ChunkState::Spilled { .. })
    }

    /// Whether two handles share the same state allocation.
    pub fn ptr_eq(&self, other: &Chunk) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }
}

/// Anything that can resolve a row handle to its `f32` slice: both
/// [`FeatureSlab`] (direct, under the owner's borrow) and [`SlabView`]
/// (snapshot). Index structures take `&impl RowSource` so inserts can
/// run against the live slab while queries run against a detached view.
pub trait RowSource {
    /// Feature dimensionality of every row.
    fn dim(&self) -> usize;
    /// Number of resolvable rows.
    fn rows(&self) -> usize;
    /// The row's values; `row` must be `< self.rows()`.
    fn row(&self, row: u32) -> &[f32];
}

/// An append-only slab of fixed-dimension `f32` rows.
#[derive(Debug, Clone, Default)]
pub struct FeatureSlab {
    dim: usize,
    /// Full chunks, each exactly `ROWS_PER_CHUNK * dim` floats, frozen
    /// (never written again) and shared with snapshots by `Arc`.
    /// Individual chunks may be spilled ([`FeatureSlab::spill_frozen`]).
    frozen: Vec<Chunk>,
    /// Scalar-quantized mirror of `frozen`, one [`QuantChunk`] per
    /// frozen chunk, trained at freeze time ([`crate::quant`]). Codes
    /// stay resident even when the `f32` chunk is spilled: they *are*
    /// the compressed in-memory representation the quantized candidate
    /// scan reads, at a quarter of the float footprint.
    quant: Vec<Arc<QuantChunk>>,
    /// The chunk currently being filled (< `ROWS_PER_CHUNK` rows).
    tail: Vec<f32>,
    len: usize,
}

impl FeatureSlab {
    /// An empty slab over `dim`-dimensional rows.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "zero-dimensional rows");
        Self {
            dim,
            frozen: Vec::new(),
            quant: Vec::new(),
            tail: Vec::new(),
            len: 0,
        }
    }

    /// Whether the slab holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a row, returning its stable handle.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.dim()`.
    pub fn push(&mut self, v: &[f32]) -> u32 {
        assert_eq!(v.len(), self.dim, "row dimension mismatch");
        self.tail.extend_from_slice(v);
        let row = self.len as u32;
        self.len += 1;
        if self.tail.len() == ROWS_PER_CHUNK * self.dim {
            let full = std::mem::take(&mut self.tail);
            // Freeze time is when the chunk's value ranges are final:
            // train the scalar-quantized mirror before the floats are
            // shared out. Deterministic, so replayed ingests rebuild
            // byte-identical codes.
            self.quant
                .push(Arc::new(QuantChunk::encode(&full, self.dim)));
            self.frozen.push(Chunk::resident(Arc::from(full)));
        }
        row
    }

    /// Number of frozen (full, write-once) chunks.
    pub fn frozen_chunks(&self) -> usize {
        self.frozen.len()
    }

    /// Whether frozen chunk `chunk` is currently held in memory.
    pub fn chunk_in_memory(&self, chunk: usize) -> bool {
        self.frozen[chunk].is_in_memory()
    }

    /// The floats of frozen chunk `chunk` (reloading if spilled).
    pub fn chunk_data(&self, chunk: usize) -> &[f32] {
        self.frozen[chunk].data()
    }

    /// The quantized mirror of frozen chunk `chunk` (always resident —
    /// codes are never spilled, only the floats are).
    pub fn chunk_quant(&self, chunk: usize) -> &Arc<QuantChunk> {
        &self.quant[chunk]
    }

    /// Total resident bytes of the quantized mirrors (codes plus
    /// decode-parameter sidecars) across every frozen chunk — the
    /// compressed footprint the quantized candidate scan works from.
    pub fn quant_code_bytes(&self) -> usize {
        self.quant.iter().map(|q| q.resident_bytes()).sum()
    }

    /// Replaces frozen chunk `chunk`'s resident floats with a lazy
    /// spill handle. The caller is responsible for having written the
    /// chunk's exact contents wherever `loader` reads from *before*
    /// calling this — afterwards the arena drops its reference and the
    /// next access reloads through the loader. Views taken earlier keep
    /// their own handles (and their memory) until they are dropped;
    /// views taken after see the spill. Re-spilling a reloaded chunk is
    /// a pure in-memory swap: chunks are write-once, so the copy behind
    /// `loader` never goes stale.
    pub fn spill_frozen(&mut self, chunk: usize, loader: Arc<dyn ChunkLoader>) {
        self.frozen[chunk] = Chunk::spilled(chunk, loader);
    }

    /// An `Arc`-sharing snapshot of every row pushed so far. Frozen
    /// chunks are shared by reference count; only the partial tail
    /// chunk is copied. Snapshots never see rows pushed after they are
    /// taken.
    pub fn view(&self) -> SlabView {
        let mut chunks = self.frozen.clone();
        if !self.tail.is_empty() {
            chunks.push(Chunk::resident(Arc::from(self.tail.clone())));
        }
        SlabView {
            dim: self.dim,
            len: self.len,
            chunks,
            quant: self.quant.clone(),
        }
    }

    /// An owned reference to one row, valid independently of the slab
    /// borrow. Zero-copy for rows in frozen chunks; rows still in the
    /// tail are copied once (bounded by the most recent
    /// [`ROWS_PER_CHUNK`] appends).
    pub fn row_ref(&self, row: u32) -> RowRef {
        let r = row as usize;
        let chunk = r / ROWS_PER_CHUNK;
        if chunk < self.frozen.len() {
            let start = (r % ROWS_PER_CHUNK) * self.dim;
            RowRef {
                chunk: self.frozen[chunk].data_arc(),
                start,
                len: self.dim,
            }
        } else {
            let start = (r - self.frozen.len() * ROWS_PER_CHUNK) * self.dim;
            RowRef {
                chunk: Arc::from(&self.tail[start..start + self.dim]),
                start: 0,
                len: self.dim,
            }
        }
    }

    /// Total floats stored (diagnostics / memory accounting).
    pub fn float_len(&self) -> usize {
        self.len * self.dim
    }
}

impl RowSource for FeatureSlab {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rows(&self) -> usize {
        self.len
    }

    fn row(&self, row: u32) -> &[f32] {
        let r = row as usize;
        let chunk = r / ROWS_PER_CHUNK;
        if chunk < self.frozen.len() {
            let start = (r % ROWS_PER_CHUNK) * self.dim;
            &self.frozen[chunk].data()[start..start + self.dim]
        } else {
            let start = (r - self.frozen.len() * ROWS_PER_CHUNK) * self.dim;
            &self.tail[start..start + self.dim]
        }
    }
}

/// A detached, immutable snapshot of a [`FeatureSlab`]. Cheap to clone
/// (chunk `Arc`s only); row resolution is branch-free arithmetic into
/// shared chunk memory.
#[derive(Debug, Clone)]
pub struct SlabView {
    dim: usize,
    len: usize,
    /// Every chunk except the last holds exactly `ROWS_PER_CHUNK` rows.
    chunks: Vec<Chunk>,
    /// Quantized mirrors of the frozen chunks (never the partial tail),
    /// shared by `Arc` with the slab. `quant.len() <= chunks.len()`.
    quant: Vec<Arc<QuantChunk>>,
}

impl SlabView {
    /// A view over no rows (placeholder before any feature exists).
    pub fn empty(dim: usize) -> Self {
        Self {
            dim,
            len: 0,
            chunks: Vec::new(),
            quant: Vec::new(),
        }
    }

    /// Whether the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of rows covered by quantized chunks (a prefix of the
    /// view: frozen chunks are quantized, the mutable tail is not).
    pub fn quant_rows(&self) -> usize {
        (self.quant.len() * ROWS_PER_CHUNK).min(self.len)
    }

    /// The quantized codes and decode parameters of `row`, or `None`
    /// when the row lives in the unquantized tail. Resolving a row here
    /// never touches the `f32` chunk, so a spilled chunk stays on disk
    /// through the whole approximate scan.
    #[inline]
    pub fn quant_row(&self, row: u32) -> Option<(&[u8], &QuantParams)> {
        let r = row as usize;
        let chunk = self.quant.get(r / ROWS_PER_CHUNK)?;
        Some((chunk.row_codes(r % ROWS_PER_CHUNK), chunk.params()))
    }

    /// The largest decode-error radius across the view's quantized
    /// chunks — the `eps` the exactness margin of a quantized scan +
    /// re-rank must use ([`QuantParams::eps`]). `0.0` when nothing is
    /// quantized.
    pub fn max_quant_eps(&self) -> f32 {
        self.quant
            .iter()
            .map(|q| q.params().eps())
            .fold(0.0, f32::max)
    }
}

impl RowSource for SlabView {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rows(&self) -> usize {
        self.len
    }

    #[inline]
    fn row(&self, row: u32) -> &[f32] {
        let r = row as usize;
        let start = (r % ROWS_PER_CHUNK) * self.dim;
        &self.chunks[r / ROWS_PER_CHUNK].data()[start..start + self.dim]
    }
}

/// An owned, clonable reference to a single arena row.
#[derive(Debug, Clone)]
pub struct RowRef {
    chunk: Arc<[f32]>,
    start: usize,
    len: usize,
}

impl RowRef {
    /// A reference to a zero-length row (placeholder for empty
    /// feature vectors, which have no slab).
    pub fn empty() -> Self {
        Self {
            chunk: Arc::from(Vec::new()),
            start: 0,
            len: 0,
        }
    }
}

impl std::ops::Deref for RowRef {
    type Target = [f32];

    #[inline]
    fn deref(&self) -> &[f32] {
        &self.chunk[self.start..self.start + self.len]
    }
}

impl AsRef<[f32]> for RowRef {
    fn as_ref(&self) -> &[f32] {
        self
    }
}

impl PartialEq for RowRef {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_of(i: usize, dim: usize) -> Vec<f32> {
        (0..dim).map(|d| (i * dim + d) as f32).collect()
    }

    #[test]
    fn push_and_read_across_chunk_boundaries() {
        let dim = 3;
        let n = ROWS_PER_CHUNK * 2 + 17;
        let mut slab = FeatureSlab::new(dim);
        for i in 0..n {
            let r = slab.push(&row_of(i, dim));
            assert_eq!(r as usize, i);
        }
        assert_eq!(slab.rows(), n);
        assert_eq!(slab.float_len(), n * dim);
        for i in [
            0,
            1,
            ROWS_PER_CHUNK - 1,
            ROWS_PER_CHUNK,
            2 * ROWS_PER_CHUNK,
            n - 1,
        ] {
            assert_eq!(slab.row(i as u32), &row_of(i, dim)[..], "slab row {i}");
        }
    }

    #[test]
    fn view_snapshots_are_stable_and_zero_copy() {
        let dim = 4;
        let mut slab = FeatureSlab::new(dim);
        for i in 0..ROWS_PER_CHUNK + 5 {
            slab.push(&row_of(i, dim));
        }
        let view = slab.view();
        assert_eq!(view.rows(), ROWS_PER_CHUNK + 5);
        // Later pushes are invisible to the snapshot.
        slab.push(&row_of(999_999, dim));
        assert_eq!(view.rows(), ROWS_PER_CHUNK + 5);
        for i in [0, ROWS_PER_CHUNK - 1, ROWS_PER_CHUNK, ROWS_PER_CHUNK + 4] {
            assert_eq!(view.row(i as u32), &row_of(i, dim)[..], "view row {i}");
        }
        // Frozen chunks are shared, not copied: same allocation.
        let view2 = slab.view();
        assert!(view.chunks[0].ptr_eq(&view2.chunks[0]));
    }

    /// A loader that serves chunks from a captured copy, counting loads.
    #[derive(Debug)]
    struct MapLoader {
        chunks: std::sync::Mutex<std::collections::BTreeMap<usize, Vec<f32>>>,
        loads: std::sync::atomic::AtomicUsize,
    }

    impl MapLoader {
        fn capture(slab: &FeatureSlab, chunk: usize) -> (Arc<MapLoader>, Arc<dyn ChunkLoader>) {
            let mut chunks = std::collections::BTreeMap::new();
            chunks.insert(chunk, slab.chunk_data(chunk).to_vec());
            let l = Arc::new(MapLoader {
                chunks: std::sync::Mutex::new(chunks),
                loads: std::sync::atomic::AtomicUsize::new(0),
            });
            (Arc::clone(&l), l)
        }
    }

    impl ChunkLoader for MapLoader {
        fn load(&self, index: usize) -> Arc<[f32]> {
            self.loads.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Arc::from(self.chunks.lock().unwrap()[&index].clone())
        }
    }

    #[test]
    fn spilled_chunk_reloads_once_and_rows_are_identical() {
        let dim = 3;
        let mut slab = FeatureSlab::new(dim);
        for i in 0..ROWS_PER_CHUNK * 2 + 9 {
            slab.push(&row_of(i, dim));
        }
        let before: Vec<Vec<f32>> = (0..slab.rows() as u32)
            .map(|r| slab.row(r).to_vec())
            .collect();
        let (counter, loader) = MapLoader::capture(&slab, 0);
        slab.spill_frozen(0, loader);
        assert!(!slab.chunk_in_memory(0));
        assert!(slab.chunk_in_memory(1));
        // Rows resolve identically through slab, view, and row_ref, and
        // the loader fires exactly once for all of them combined.
        let view = slab.view();
        for r in 0..slab.rows() as u32 {
            assert_eq!(slab.row(r), &before[r as usize][..]);
            assert_eq!(view.row(r), &before[r as usize][..]);
        }
        assert_eq!(&*slab.row_ref(5), &before[5][..]);
        assert_eq!(counter.loads.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert!(slab.chunk_in_memory(0), "reload caches the chunk");
    }

    #[test]
    fn respill_of_reloaded_chunk_drops_cache_without_new_handle_loads() {
        let dim = 2;
        let mut slab = FeatureSlab::new(dim);
        for i in 0..ROWS_PER_CHUNK + 1 {
            slab.push(&row_of(i, dim));
        }
        let (counter, loader) = MapLoader::capture(&slab, 0);
        slab.spill_frozen(0, Arc::clone(&loader) as Arc<dyn ChunkLoader>);
        // Views taken before the spill keep their resident memory and
        // never hit the loader.
        let _ = slab.row(0);
        assert_eq!(counter.loads.load(std::sync::atomic::Ordering::SeqCst), 1);
        // Re-spill: fresh handle, cache dropped, next access reloads.
        slab.spill_frozen(0, loader);
        assert!(!slab.chunk_in_memory(0));
        assert_eq!(slab.row(0), &row_of(0, dim)[..]);
        assert_eq!(counter.loads.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn row_ref_outlives_slab_borrow() {
        let dim = 2;
        let mut slab = FeatureSlab::new(dim);
        for i in 0..ROWS_PER_CHUNK + 1 {
            slab.push(&row_of(i, dim));
        }
        let frozen = slab.row_ref(7);
        let tail = slab.row_ref(ROWS_PER_CHUNK as u32);
        drop(slab);
        assert_eq!(&*frozen, &row_of(7, dim)[..]);
        assert_eq!(&*tail, &row_of(ROWS_PER_CHUNK, dim)[..]);
    }

    #[test]
    fn frozen_chunks_carry_quantized_mirrors() {
        let dim = 5;
        let mut slab = FeatureSlab::new(dim);
        for i in 0..ROWS_PER_CHUNK + 3 {
            slab.push(&row_of(i, dim));
        }
        let view = slab.view();
        assert_eq!(view.quant_rows(), ROWS_PER_CHUNK);
        assert!(view.max_quant_eps() > 0.0);
        // Quantized rows decode to within eps of the exact floats.
        let (codes, params) = view.quant_row(17).unwrap();
        assert_eq!(codes.len(), dim);
        let d = crate::quant::l2_sq_asym(view.row(17), codes, params).sqrt();
        assert!(
            d <= params.eps(),
            "self-distance {d} > eps {}",
            params.eps()
        );
        // Tail rows are not quantized.
        assert!(view.quant_row(ROWS_PER_CHUNK as u32).is_none());
        // Spilling the floats keeps the codes resident: the quantized
        // path needs no reload.
        let (counter, loader) = MapLoader::capture(&slab, 0);
        slab.spill_frozen(0, loader);
        let spilled_view = slab.view();
        assert!(spilled_view.quant_row(17).is_some());
        assert_eq!(counter.loads.load(std::sync::atomic::Ordering::SeqCst), 0);
        // Quantized mirrors are shared, not copied, across views.
        assert!(Arc::ptr_eq(&view.quant[0], &spilled_view.quant[0]));
    }

    #[test]
    fn empty_view_and_slab() {
        let slab = FeatureSlab::new(8);
        assert!(slab.is_empty());
        let view = slab.view();
        assert!(view.is_empty());
        assert_eq!(view.dim(), 8);
        assert!(SlabView::empty(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "row dimension mismatch")]
    fn push_rejects_wrong_dim() {
        let mut slab = FeatureSlab::new(4);
        slab.push(&[0.0; 5]);
    }
}
