//! Generation publication: lock-free-for-readers snapshot handoff.
//!
//! A [`GenCell`] holds an `Arc` to an immutable *generation* — a frozen
//! snapshot of some index or arena state. Writers build the next
//! generation off to the side and [`GenCell::store`] it with a single
//! pointer swap; readers [`GenCell::load`] the current generation as a
//! cheap `Arc` clone and keep using it for as long as they like,
//! unaffected by later swaps. Readers therefore never block on writers
//! and never observe a half-built state: a generation is immutable from
//! the moment it is published.
//!
//! This is the **only** sanctioned publication primitive for shared
//! mutable-by-replacement state outside the pool (`cargo xtask lint`
//! rule L3 flags raw atomics and hand-rolled swap schemes). Internally
//! it is a lock held only for the duration of an `Arc` clone or
//! pointer store — nanoseconds, never across user code — so the
//! determinism contract holds trivially: a `load` returns whichever
//! generation was most recently published, and computed values depend
//! only on that generation's contents.

use std::sync::{Arc, RwLock};

/// A cell publishing immutable generations of `T` to concurrent
/// readers. See the module docs for the reader/writer contract.
#[derive(Debug)]
pub struct GenCell<T> {
    current: RwLock<Arc<T>>,
}

impl<T> GenCell<T> {
    /// Creates a cell publishing `initial` as the first generation.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            current: RwLock::new(initial),
        }
    }

    /// Returns the most recently published generation. The returned
    /// `Arc` stays valid (and immutable) regardless of later
    /// [`GenCell::store`] calls.
    pub fn load(&self) -> Arc<T> {
        // A panicking writer can only poison the lock *after* its store
        // completed (the critical section is one pointer assignment),
        // so the recovered value is always a fully published generation.
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Publishes `next` as the new current generation. In-flight
    /// readers keep the generation they loaded; new readers see `next`.
    pub fn store(&self, next: Arc<T>) {
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = next;
    }
}

impl<T: Default> Default for GenCell<T> {
    fn default() -> Self {
        Self::new(Arc::new(T::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_last_store() {
        let cell = GenCell::new(Arc::new(1u32));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn old_generation_survives_swap() {
        let cell = GenCell::new(Arc::new(vec![1, 2, 3]));
        let old = cell.load();
        cell.store(Arc::new(vec![4]));
        assert_eq!(*old, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![4]);
    }

    #[test]
    fn concurrent_readers_always_see_a_complete_generation() {
        let cell = Arc::new(GenCell::new(Arc::new(vec![0u64; 64])));
        let pool = crate::Pool::new(4);
        pool.scope(|s| {
            for worker in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for i in 0..500u64 {
                        if worker == 0 {
                            // Writer: publish generations where every
                            // element equals the generation number.
                            cell.store(Arc::new(vec![i; 64]));
                        } else {
                            // Readers: a loaded generation must be
                            // internally consistent.
                            let g = cell.load();
                            let first = g[0];
                            assert!(g.iter().all(|&x| x == first));
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn default_publishes_default_value() {
        let cell: GenCell<u32> = GenCell::default();
        assert_eq!(*cell.load(), 0);
    }
}
