//! Shared compute substrate for the Translational Visual Data Platform.
//!
//! Every latency-critical service in TVDP — LSH candidate re-ranking,
//! Visual R*-tree traversal, k-means dictionary building, kNN scoring —
//! bottoms out in dense `f32` distance evaluations. This crate is the one
//! place those primitives live:
//!
//! * [`dot`], [`l2_sq`], [`l2`], [`normalize`] — chunked, multi-accumulator
//!   loops the compiler auto-vectorizes. Strict IEEE semantics (no
//!   fast-math): results are bit-deterministic for a given input, just
//!   accumulated in a fixed lane-then-tree order instead of strictly
//!   left-to-right.
//! * [`Pool`] — a scoped work pool (std scoped threads, num-CPU default)
//!   with a deterministic chunk→slot mapping, so parallel maps return
//!   results in input order and per-item values never depend on the
//!   thread count.
//! * [`FeatureSlab`] / [`SlabView`] — the zero-copy feature arena:
//!   append-only chunked row storage with `Arc`-shared snapshots, so
//!   stores and indexes reference rows by `u32` handle instead of
//!   owning `Vec<f32>` clones.
//! * [`quant`] — scalar quantization for the arena: `u8` codes with
//!   per-dimension affine decode trained per frozen chunk, and
//!   [`l2_sq_asym`], the asymmetric f32-query-vs-u8-codes distance
//!   kernel behind the compressed candidate scan.
//! * [`TopK`] / [`TotalF32`] — bounded top-k selection over float
//!   scores, replacing collect-then-sort on every top-k query path.
//! * [`GenCell`] — generation publication: writers `Arc`-swap frozen
//!   snapshots in, readers take them out without ever blocking on a
//!   writer. The sanctioned primitive behind every lock-free read path
//!   (shard snapshots, slab views).
//!
//! The determinism contract all pieces uphold: **thread count and pool
//! choice never change any computed value** — only wall-clock time.

pub mod arena;
pub mod gencell;
pub mod pool;
pub mod quant;
pub mod topk;

pub use arena::{Chunk, ChunkLoader, FeatureSlab, RowRef, RowSource, SlabView, ROWS_PER_CHUNK};
pub use gencell::GenCell;
pub use pool::Pool;
pub use quant::{l2_sq_asym, QuantChunk, QuantParams};
pub use topk::{TopK, TotalF32, TotalF64};

/// Accumulator lanes for the chunked kernels. Sixteen `f32` lanes give
/// the vectorizer two full AVX2 registers (or four SSE registers) of
/// independent accumulators; measured ~3x over the scalar loop at
/// dim >= 512 on baseline x86-64.
pub(crate) const LANES: usize = 16;

#[inline(always)]
pub(crate) fn reduce(acc: [f32; LANES], tail: f32) -> f32 {
    // Fixed pairwise tree: deterministic and instruction-level parallel.
    let mut s = [0.0f32; 4];
    for (i, &a) in acc.iter().enumerate() {
        s[i % 4] += a;
    }
    ((s[0] + s[1]) + (s[2] + s[3])) + tail
}

/// Dot product of equal-length vectors.
///
/// # Panics
///
/// Panics in debug builds when the lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xs, ys) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..LANES {
            acc[i] += xs[i] * ys[i];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    reduce(acc, tail)
}

/// Squared Euclidean distance between equal-length vectors.
///
/// The workhorse of every compare-only path (thresholding, ranking,
/// nearest-centroid): monotonic in [`l2`] without the square root.
///
/// # Panics
///
/// Panics in debug builds when the lengths differ.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xs, ys) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..LANES {
            let d = xs[i] - ys[i];
            acc[i] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    reduce(acc, tail)
}

/// Euclidean distance between equal-length vectors.
///
/// Prefer [`l2_sq`] wherever distances are only compared; take the root
/// once per *reported* value, not per candidate.
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    l2_sq(a, b).sqrt()
}

/// Scales `v` to unit Euclidean norm in place; zero vectors are left
/// unchanged.
#[inline]
pub fn normalize(v: &mut [f32]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        let inv = 1.0 / norm;
        for x in v {
            *x *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_l2_sq(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    fn scalar_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn vecs(dim: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
        // Tiny deterministic LCG; no external RNG in this crate.
        let mut state = seed as u64 * 2 + 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let a = (0..dim).map(|_| next()).collect();
        let b = (0..dim).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn matches_scalar_reference_within_tolerance() {
        for dim in [0, 1, 3, 7, 8, 9, 15, 16, 17, 64, 127, 512, 1000] {
            let (a, b) = vecs(dim, dim as u32 + 1);
            let got = l2_sq(&a, &b);
            let want = scalar_l2_sq(&a, &b);
            assert!(
                (got - want).abs() <= 1e-4 * want.max(1.0),
                "l2_sq dim {dim}: {got} vs {want}"
            );
            let got = dot(&a, &b);
            let want = scalar_dot(&a, &b);
            assert!(
                (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                "dot dim {dim}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn l2_is_root_of_l2_sq() {
        let (a, b) = vecs(33, 9);
        assert_eq!(l2(&a, &b), l2_sq(&a, &b).sqrt());
        assert_eq!(l2(&a, &a), 0.0);
    }

    #[test]
    fn known_values() {
        let a = [1.0, 0.0, 2.0];
        let b = [0.0, 1.0, 2.0];
        assert_eq!(l2_sq(&a, &b), 2.0);
        assert_eq!(dot(&a, &b), 4.0);
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(l2_sq(&[], &[]), 0.0);
    }

    #[test]
    fn bit_deterministic_across_calls() {
        let (a, b) = vecs(777, 3);
        let x = l2_sq(&a, &b);
        for _ in 0..10 {
            assert_eq!(l2_sq(&a, &b).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn normalize_unit_norm_and_zero_untouched() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((dot(&v, &v).sqrt() - 1.0).abs() < 1e-6);
        assert!((v[0] - 0.6).abs() < 1e-6);
        let mut z = vec![0.0; 5];
        normalize(&mut z);
        assert!(z.iter().all(|&x| x == 0.0));
    }
}
