//! A small reusable scoped work pool with deterministic output placement.
//!
//! TVDP parallelizes *data-parallel* hot paths: batch feature extraction,
//! k-means assignment, per-tree forest training, cross-validation folds,
//! LSH candidate re-ranking, and batch query execution. All of them share
//! one need — fan a pure per-item function out over worker threads and get
//! the results back **in input order, with values independent of the
//! thread count**. [`Pool::map`] and [`Pool::map_index`] provide exactly
//! that: items are split into contiguous chunks, each worker writes into
//! its own disjoint slice of the pre-sized output, and the per-item
//! closure sees only the item and its index. Because the closure never
//! observes which worker ran it, a 1-thread pool and a 64-thread pool
//! produce bit-identical outputs.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Upper bound on worker threads (a safety clamp, not a tuning knob).
const MAX_THREADS: usize = 64;

/// A fixed-width scoped work pool.
///
/// Threads are scoped (std scoped threads): workers are spawned per call
/// and joined before the call returns, so borrowed data flows in freely
/// and panics propagate to the caller.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool running `threads` workers (clamped to `1..=64`).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// A single-threaded pool: every map runs inline on the caller.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// The process-wide default pool: one worker per available CPU,
    /// overridable with the `TVDP_THREADS` environment variable
    /// (read once, at first use).
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("TVDP_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&t| t >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(NonZeroUsize::get)
                        .unwrap_or(1)
                });
            Pool::new(threads)
        })
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to `0..n`, returning results in index order.
    ///
    /// The index range is split into `threads` contiguous chunks; chunk
    /// `c` covers `c*len..(c+1)*len` and writes slots `c*len..` of the
    /// output (the deterministic chunk→slot mapping). `f` must be pure in
    /// its index for outputs to be thread-count independent — every
    /// caller in this workspace passes seeded, side-effect-free closures.
    ///
    /// Panics in a worker propagate to the caller after all workers stop.
    pub fn map_index<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(n);
        if threads == 1 {
            return (0..n).map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let f = &f;
        std::thread::scope(|scope| {
            for (c, slots) in out.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let base = c * chunk;
                    for (j, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(base + j));
                    }
                });
            }
        });
        out.into_iter()
            // tvdp-lint: allow(no_panic, reason = "pool invariant: every slot is written exactly once by its owning worker before join")
            .map(|r| r.expect("worker filled every slot"))
            .collect()
    }

    /// Applies `f` to every item of `items`, returning results in input
    /// order. `f` receives `(index, &item)`. See [`Pool::map_index`] for
    /// the determinism contract.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_index(items.len(), |i| f(i, &items[i]))
    }

    /// Runs `f` inside a scoped-thread context with this pool's width,
    /// for callers that need manual control over what each worker does.
    /// Spawn at most [`Pool::threads`] workers for CPU-bound work.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        std::thread::scope(f)
    }
}

impl Default for Pool {
    fn default() -> Self {
        *Self::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 7, 64] {
            let pool = Pool::new(threads);
            let out = pool.map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // A float reduction whose value would drift if work moved between
        // slots: each slot's value depends only on its index.
        let compute = |threads: usize| {
            Pool::new(threads).map_index(4097, |i| ((i as f32).sin() * 1e3).to_bits())
        };
        let one = compute(1);
        for threads in [2, 5, 8, 64] {
            assert_eq!(
                one,
                compute(threads),
                "thread count {threads} changed results"
            );
        }
    }

    #[test]
    fn every_item_visited_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = Pool::new(8).map_index(257, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = Pool::new(8);
        assert!(pool.map_index(0, |i| i).is_empty());
        assert_eq!(pool.map_index(1, |i| i), vec![0]);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.map(&empty, |_, &b| b).is_empty());
    }

    #[test]
    fn thread_count_clamped() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(10_000).threads(), MAX_THREADS);
        assert!(Pool::global().threads() >= 1);
        assert_eq!(Pool::serial().threads(), 1);
    }

    #[test]
    fn borrows_flow_into_map() {
        let data = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let lens = Pool::new(2).map(&data, |_, s| s.len());
        assert_eq!(lens, vec![1, 2, 3]);
        drop(data);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates() {
        let _ = Pool::new(4).map_index(100, |i| {
            if i == 37 {
                panic!("boom");
            }
            i
        });
    }
}
