//! Scalar quantization for the feature arena: `u8` codes with a
//! per-dimension affine decode, trained independently for every frozen
//! chunk.
//!
//! A frozen chunk's rows are write-once, so its per-dimension value
//! range is known exactly at freeze time. Each dimension `d` stores a
//! `min[d]` / `scale[d]` pair with `scale = (max - min) / 255`, and a
//! row value `v` is encoded as `round((v - min) / scale)` clamped to
//! `[0, 255]`. The decoded value is `min + scale * code`, so the
//! per-element quantization error is at most `scale / 2` (plus float
//! rounding) — and crucially the chunk records its **measured**
//! decode-error radius [`QuantParams::eps`]: the largest Euclidean
//! distance between any row and its decoded counterpart, inflated by a
//! small slop factor that dominates `f32` rounding. Query layers use
//! `eps` to turn the approximate scan into an *exact* filter: any row
//! whose true distance could reach the current top-k must have an
//! approximate distance within `2 * eps` of the k-th approximate
//! distance (triangle inequality), so re-ranking everything inside
//! that margin on the full-precision floats reproduces the exact
//! result byte-for-byte.
//!
//! [`l2_sq_asym`] is the asymmetric distance kernel: an `f32` query
//! against `u8` codes, decoded on the fly in the same fixed
//! lane-then-tree accumulation order as [`crate::l2_sq`]. The scan
//! touches one byte per element instead of four — the memory-bound
//! candidate scan the compressed representation exists for.

use crate::{reduce, LANES};

/// Levels per dimension (`u8` codes).
const LEVELS: f32 = 255.0;

/// Relative inflation applied to the measured decode-error radius so
/// the exactness margin also absorbs `f32` rounding in the distance
/// kernels themselves.
const EPS_SLOP: f32 = 1.001;

/// Per-chunk affine decode parameters: one `(min, scale)` pair per
/// dimension, plus the chunk's measured decode-error radius.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantParams {
    min: Box<[f32]>,
    scale: Box<[f32]>,
    eps: f32,
}

impl QuantParams {
    /// Feature dimensionality the parameters cover.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Per-dimension decode offsets.
    pub fn min(&self) -> &[f32] {
        &self.min
    }

    /// Per-dimension decode scales (`0.0` for constant dimensions).
    pub fn scale(&self) -> &[f32] {
        &self.scale
    }

    /// Decode-error radius: an upper bound on the Euclidean distance
    /// between any encoded row and its decoded counterpart. `|l2(q, x)
    /// - l2(q, decode(x))| <= eps` for every row `x` of the chunk, so
    /// an approximate ranking cut `2 * eps` past the k-th approximate
    /// distance provably covers the exact top-k.
    pub fn eps(&self) -> f32 {
        self.eps
    }
}

/// One frozen chunk's quantized representation: `rows * dim` `u8`
/// codes plus the chunk's [`QuantParams`]. Immutable after training,
/// shared by `Arc` exactly like the `f32` chunk it mirrors.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantChunk {
    params: QuantParams,
    codes: Box<[u8]>,
}

impl QuantChunk {
    /// Trains per-dimension parameters over `data` (a frozen chunk's
    /// `rows * dim` floats, row-major) and encodes every row.
    ///
    /// Deterministic: the same floats always produce the same codes and
    /// parameters, so a chunk re-frozen during recovery replay carries
    /// byte-identical quantized state.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0` or `data.len()` is not a multiple of
    /// `dim`.
    pub fn encode(data: &[f32], dim: usize) -> QuantChunk {
        assert!(dim > 0, "zero-dimensional rows");
        assert_eq!(data.len() % dim, 0, "partial row in chunk data");
        let rows = data.len() / dim;
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        for r in 0..rows {
            let v = &data[r * dim..(r + 1) * dim];
            for d in 0..dim {
                min[d] = min[d].min(v[d]);
                max[d] = max[d].max(v[d]);
            }
        }
        let scale: Vec<f32> = min
            .iter()
            .zip(&max)
            .map(|(&lo, &hi)| {
                let s = (hi - lo) / LEVELS;
                if s.is_finite() && s > 0.0 {
                    s
                } else {
                    0.0
                }
            })
            .collect();
        let mut codes = vec![0u8; data.len()];
        for (i, &v) in data.iter().enumerate() {
            let d = i % dim;
            if scale[d] > 0.0 {
                codes[i] = ((v - min[d]) / scale[d]).round().clamp(0.0, LEVELS) as u8;
            }
        }
        // Measured decode-error radius, accumulated in f64 so the bound
        // itself is not limited by f32 precision. The decode expression
        // matches `l2_sq_asym` exactly.
        let mut worst = 0.0f64;
        for r in 0..rows {
            let mut err = 0.0f64;
            for d in 0..dim {
                let dec = min[d] + scale[d] * f32::from(codes[r * dim + d]);
                let e = f64::from(data[r * dim + d] - dec);
                err += e * e;
            }
            worst = worst.max(err);
        }
        let eps = (worst.sqrt() as f32) * EPS_SLOP + 1e-6;
        QuantChunk {
            params: QuantParams {
                min: min.into_boxed_slice(),
                scale: scale.into_boxed_slice(),
                eps,
            },
            codes: codes.into_boxed_slice(),
        }
    }

    /// Rebuilds a chunk from previously serialized parts (spill-file
    /// reload). The caller is responsible for `min`/`scale`/`codes`
    /// coming from a matching [`QuantChunk::encode`] run.
    ///
    /// # Panics
    ///
    /// Panics when `min` and `scale` lengths differ, are empty, or
    /// `codes.len()` is not a multiple of the dimension.
    pub fn from_parts(min: Vec<f32>, scale: Vec<f32>, eps: f32, codes: Vec<u8>) -> QuantChunk {
        assert!(!min.is_empty(), "zero-dimensional parameters");
        assert_eq!(min.len(), scale.len(), "min/scale length mismatch");
        assert_eq!(codes.len() % min.len(), 0, "partial row in codes");
        QuantChunk {
            params: QuantParams {
                min: min.into_boxed_slice(),
                scale: scale.into_boxed_slice(),
                eps,
            },
            codes: codes.into_boxed_slice(),
        }
    }

    /// The chunk's decode parameters.
    pub fn params(&self) -> &QuantParams {
        &self.params
    }

    /// All codes, row-major (`rows * dim` bytes; spill serialization).
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Number of encoded rows.
    pub fn rows(&self) -> usize {
        self.codes.len() / self.params.dim()
    }

    /// The codes of one row within the chunk.
    #[inline]
    pub fn row_codes(&self, row_in_chunk: usize) -> &[u8] {
        let dim = self.params.dim();
        &self.codes[row_in_chunk * dim..(row_in_chunk + 1) * dim]
    }

    /// Resident bytes of the compressed representation: the codes plus
    /// the per-dimension `min`/`scale` sidecar and the `eps` scalar.
    pub fn resident_bytes(&self) -> usize {
        self.codes.len() + self.params.dim() * 8 + 4
    }
}

/// Asymmetric squared Euclidean distance: an `f32` query against one
/// row's `u8` codes, decoded on the fly through `params`.
///
/// Accumulates in the same fixed lane-then-tree order as
/// [`crate::l2_sq`]: bit-deterministic for a given input, independent
/// of thread count or call site. Equal to `l2_sq(q, decode(codes))`
/// bit-for-bit, since the decode expression and accumulation order are
/// identical to materializing the decoded row first.
///
/// # Panics
///
/// Panics in debug builds when lengths disagree with `params.dim()`.
#[inline]
pub fn l2_sq_asym(q: &[f32], codes: &[u8], params: &QuantParams) -> f32 {
    debug_assert_eq!(q.len(), params.dim(), "query dimension mismatch");
    debug_assert_eq!(codes.len(), params.dim(), "code dimension mismatch");
    let n = q.len().min(codes.len());
    let (q, codes) = (&q[..n], &codes[..n]);
    let (min, scale) = (&params.min[..n], &params.scale[..n]);
    let mut acc = [0.0f32; LANES];
    let mut cq = q.chunks_exact(LANES);
    let mut cc = codes.chunks_exact(LANES);
    let mut cm = min.chunks_exact(LANES);
    let mut cs = scale.chunks_exact(LANES);
    for (((xs, bs), ms), ss) in cq
        .by_ref()
        .zip(cc.by_ref())
        .zip(cm.by_ref())
        .zip(cs.by_ref())
    {
        for i in 0..LANES {
            let d = xs[i] - (ms[i] + ss[i] * f32::from(bs[i]));
            acc[i] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (((x, &b), &m), &s) in cq
        .remainder()
        .iter()
        .zip(cc.remainder())
        .zip(cm.remainder())
        .zip(cs.remainder())
    {
        let d = x - (m + s * f32::from(b));
        tail += d * d;
    }
    reduce(acc, tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l2_sq;

    fn rows(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        // Deterministic LCG; no external RNG in this crate.
        let mut state = seed * 2 + 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 1.0
        };
        (0..n * dim).map(|_| next()).collect()
    }

    fn decode(chunk: &QuantChunk, row: usize) -> Vec<f32> {
        let p = chunk.params();
        chunk
            .row_codes(row)
            .iter()
            .enumerate()
            .map(|(d, &c)| p.min()[d] + p.scale()[d] * f32::from(c))
            .collect()
    }

    #[test]
    fn decode_error_within_eps() {
        let dim = 9;
        let data = rows(300, dim, 7);
        let chunk = QuantChunk::encode(&data, dim);
        assert_eq!(chunk.rows(), 300);
        let eps = chunk.params().eps();
        assert!(eps > 0.0);
        for r in 0..300 {
            let dec = decode(&chunk, r);
            let err = l2_sq(&data[r * dim..(r + 1) * dim], &dec).sqrt();
            assert!(err <= eps, "row {r}: decode error {err} > eps {eps}");
        }
    }

    #[test]
    fn asym_kernel_matches_decoded_l2_bitwise() {
        for dim in [1, 3, 15, 16, 17, 48, 130] {
            let data = rows(40, dim, dim as u64);
            let chunk = QuantChunk::encode(&data, dim);
            let q = &rows(1, dim, 999)[..];
            for r in 0..40 {
                let fast = l2_sq_asym(q, chunk.row_codes(r), chunk.params());
                let slow = l2_sq(q, &decode(&chunk, r));
                assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "dim {dim} row {r}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn triangle_bound_holds_against_random_queries() {
        let dim = 16;
        let data = rows(200, dim, 3);
        let chunk = QuantChunk::encode(&data, dim);
        let eps = chunk.params().eps();
        for qi in 0..20 {
            let q = rows(1, dim, 1000 + qi);
            for r in 0..200 {
                let exact = l2_sq(&q, &data[r * dim..(r + 1) * dim]).sqrt();
                let approx = l2_sq_asym(&q, chunk.row_codes(r), chunk.params()).sqrt();
                assert!(
                    (exact - approx).abs() <= eps,
                    "q {qi} row {r}: |{exact} - {approx}| > eps {eps}"
                );
            }
        }
    }

    #[test]
    fn constant_dimension_is_lossless() {
        let dim = 4;
        // Dimension 2 is constant across rows.
        let data: Vec<f32> = (0..12)
            .map(|i| if i % dim == 2 { 7.5 } else { i as f32 })
            .collect();
        let chunk = QuantChunk::encode(&data, dim);
        assert_eq!(chunk.params().scale()[2], 0.0);
        for r in 0..3 {
            assert_eq!(decode(&chunk, r)[2], 7.5);
        }
    }

    #[test]
    fn encode_is_deterministic_and_parts_roundtrip() {
        let dim = 8;
        let data = rows(100, dim, 42);
        let a = QuantChunk::encode(&data, dim);
        let b = QuantChunk::encode(&data, dim);
        assert_eq!(a, b);
        let rebuilt = QuantChunk::from_parts(
            a.params().min().to_vec(),
            a.params().scale().to_vec(),
            a.params().eps(),
            a.codes().to_vec(),
        );
        assert_eq!(a, rebuilt);
    }

    #[test]
    #[should_panic(expected = "partial row")]
    fn encode_rejects_partial_rows() {
        let _ = QuantChunk::encode(&[0.0; 7], 4);
    }
}
