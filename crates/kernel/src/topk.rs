//! Bounded top-k selection.
//!
//! Every top-k path in TVDP used to collect *all* scored candidates
//! into a `Vec`, sort it, and truncate — `O(n log n)` time and `O(n)`
//! transient memory per query. [`TopK`] keeps only the best `k` items
//! in a bounded binary max-heap (`O(n log k)`, `O(k)` memory), and
//! [`TotalF32`] supplies the total order over `f32` scores
//! (`f32::total_cmp`) that makes floats usable as heap keys without
//! `unwrap` on `partial_cmp`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An `f32` wrapped with the IEEE-754 `totalOrder` comparison so it
/// implements `Ord` (and can key heaps and sorts). For the finite,
/// same-sign values our kernels produce this orders identically to the
/// `total_cmp` sorts used elsewhere in the workspace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TotalF32(pub f32);

impl Eq for TotalF32 {}

impl PartialOrd for TotalF32 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF32 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// [`TotalF32`]'s double-precision sibling, for `f64` scores (tf-idf,
/// reported result scores).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A bounded selector that retains the `k` smallest items pushed into
/// it (by `Ord`). Push order never affects the final sorted contents.
///
/// For "largest k" semantics, push [`std::cmp::Reverse`]-wrapped items
/// and unwrap after [`TopK::into_sorted_vec`].
#[derive(Debug, Clone)]
pub struct TopK<T: Ord> {
    k: usize,
    heap: BinaryHeap<T>,
}

impl<T: Ord> TopK<T> {
    /// A selector keeping at most `k` items (`k == 0` keeps nothing).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.min(4096).saturating_add(1)),
        }
    }

    /// Number of items currently retained (`<= k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items are retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th (worst retained) item, once `k` items have been
    /// seen. Callers can use it to skip work for candidates that cannot
    /// make the cut.
    pub fn threshold(&self) -> Option<&T> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek()
        }
    }

    /// Offers an item; it is kept only while it ranks among the `k`
    /// smallest seen so far.
    pub fn push(&mut self, item: T) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(item);
        } else if let Some(mut worst) = self.heap.peek_mut() {
            if item < *worst {
                *worst = item;
            }
        }
    }

    /// The retained items in ascending order.
    pub fn into_sorted_vec(self) -> Vec<T> {
        self.heap.into_sorted_vec()
    }
}

impl<T: Ord> Extend<T> for TopK<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn keeps_k_smallest_regardless_of_order() {
        let items = [9_u32, 3, 7, 1, 8, 2, 6, 0, 5, 4];
        let mut fwd = TopK::new(4);
        fwd.extend(items);
        assert_eq!(fwd.into_sorted_vec(), vec![0, 1, 2, 3]);

        let mut rev = TopK::new(4);
        rev.extend(items.iter().rev().copied());
        assert_eq!(rev.into_sorted_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn matches_full_sort_truncate_on_float_keys() {
        // Deterministic pseudo-random distances with duplicates.
        let mut xs = Vec::new();
        let mut s = 0x2545_f491u64;
        for _ in 0..500 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            xs.push(((s >> 33) % 97) as f32 * 0.5);
        }
        let mut reference: Vec<(TotalF32, usize)> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (TotalF32(x), i))
            .collect();
        reference.sort();
        reference.truncate(10);

        let mut topk = TopK::new(10);
        topk.extend(xs.iter().enumerate().map(|(i, &x)| (TotalF32(x), i)));
        assert_eq!(topk.into_sorted_vec(), reference);
    }

    #[test]
    fn fewer_items_than_k_and_zero_k() {
        let mut t = TopK::new(10);
        t.extend([3_i32, 1, 2]);
        assert_eq!(t.len(), 3);
        assert!(t.threshold().is_none());
        assert_eq!(t.into_sorted_vec(), vec![1, 2, 3]);

        let mut z = TopK::new(0);
        z.push(1_i32);
        assert!(z.is_empty());
        assert!(z.into_sorted_vec().is_empty());
    }

    #[test]
    fn threshold_tracks_kth_item() {
        let mut t = TopK::new(2);
        t.push(5_i32);
        assert!(t.threshold().is_none());
        t.push(9);
        assert_eq!(t.threshold(), Some(&9));
        t.push(1);
        assert_eq!(t.threshold(), Some(&5));
    }

    #[test]
    fn largest_k_via_reverse() {
        let mut t = TopK::new(3);
        t.extend([4_i32, 9, 1, 7, 3].map(Reverse));
        let best: Vec<i32> = t
            .into_sorted_vec()
            .into_iter()
            .map(|Reverse(x)| x)
            .collect();
        assert_eq!(best, vec![9, 7, 4]);
    }
}
