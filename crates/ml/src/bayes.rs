//! Gaussian naive Bayes.

use serde::{Deserialize, Serialize};

use crate::{validate_fit_input, Classifier};

/// Gaussian naive Bayes: per-class, per-feature normal densities with
/// variance smoothing, log-space scoring.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaussianNb {
    /// Per class: (log prior, per-feature mean, per-feature variance).
    classes: Vec<ClassStats>,
    var_smoothing: f32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClassStats {
    log_prior: f32,
    mean: Vec<f32>,
    var: Vec<f32>,
}

impl GaussianNb {
    /// Creates an unfitted model with scikit-learn's default smoothing.
    pub fn new() -> Self {
        Self {
            classes: Vec::new(),
            var_smoothing: 1e-6,
        }
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize], n_classes: usize) {
        let dim = validate_fit_input(x, y, n_classes);
        let n = x.len() as f32;
        // Global max variance scales the smoothing floor.
        let mut global_mean = vec![0.0f32; dim];
        for row in x {
            for (g, &v) in global_mean.iter_mut().zip(row) {
                *g += v;
            }
        }
        for g in &mut global_mean {
            *g /= n;
        }
        let mut global_var_max = 0.0f32;
        for d in 0..dim {
            let v: f32 = x
                .iter()
                .map(|r| (r[d] - global_mean[d]).powi(2))
                // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
                .sum::<f32>()
                / n;
            global_var_max = global_var_max.max(v);
        }
        let floor = self.var_smoothing * global_var_max.max(1e-9);

        self.classes = (0..n_classes)
            .map(|class| {
                let rows: Vec<&Vec<f32>> = x
                    .iter()
                    .zip(y)
                    .filter(|(_, &l)| l == class)
                    .map(|(r, _)| r)
                    .collect();
                if rows.is_empty() {
                    // Unseen class: uniform-ish fallback with -inf prior.
                    return ClassStats {
                        log_prior: f32::NEG_INFINITY,
                        mean: vec![0.0; dim],
                        var: vec![1.0; dim],
                    };
                }
                let m = rows.len() as f32;
                let mut mean = vec![0.0f32; dim];
                for r in &rows {
                    for (acc, &v) in mean.iter_mut().zip(r.iter()) {
                        *acc += v;
                    }
                }
                for v in &mut mean {
                    *v /= m;
                }
                let mut var = vec![0.0f32; dim];
                for r in &rows {
                    for d in 0..dim {
                        var[d] += (r[d] - mean[d]).powi(2);
                    }
                }
                for v in &mut var {
                    *v = *v / m + floor;
                }
                ClassStats {
                    log_prior: (m / n).ln(),
                    mean,
                    var,
                }
            })
            .collect();
    }

    fn decision_scores(&self, x: &[f32]) -> Vec<f32> {
        assert!(!self.classes.is_empty(), "classifier not fitted");
        self.classes
            .iter()
            .map(|c| {
                if c.log_prior == f32::NEG_INFINITY {
                    return f32::NEG_INFINITY;
                }
                let mut log_lik = c.log_prior;
                for ((&xv, &mean), &var) in x.iter().zip(&c.mean).zip(&c.var) {
                    let diff = xv - mean;
                    log_lik += -0.5 * ((2.0 * std::f32::consts::PI * var).ln() + diff * diff / var);
                }
                log_lik
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "Naive Bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_shifted_gaussians() {
        // Deterministic pseudo-noise.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let noise = ((i * 37) % 17) as f32 / 17.0 - 0.5;
            x.push(vec![0.0 + noise, 1.0 - noise]);
            y.push(0);
            x.push(vec![4.0 + noise, 5.0 + noise]);
            y.push(1);
        }
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y, 2);
        assert_eq!(nb.predict_one(&[0.2, 1.1]), 0);
        assert_eq!(nb.predict_one(&[3.9, 5.2]), 1);
    }

    #[test]
    fn prior_breaks_ties_for_majority_class() {
        // Identical feature distributions, class 1 three times as frequent.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = (i % 5) as f32;
            x.push(vec![v]);
            y.push(usize::from(i % 4 != 0));
        }
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y, 2);
        assert_eq!(nb.predict_one(&[2.0]), 1);
    }

    #[test]
    fn zero_variance_feature_does_not_nan() {
        let x = vec![
            vec![1.0, 5.0],
            vec![1.0, 6.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0, 0, 1, 1];
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y, 2);
        let s = nb.decision_scores(&[1.0, 5.5]);
        assert!(s.iter().all(|v| !v.is_nan()));
        assert_eq!(nb.predict_one(&[1.0, 5.5]), 0);
    }

    #[test]
    fn unseen_class_never_predicted() {
        let x = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
        let y = vec![0, 0, 1, 1];
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y, 3); // class 2 has no samples
        for probe in [-5.0, 0.5, 10.5, 100.0] {
            assert_ne!(nb.predict_one(&[probe]), 2);
        }
    }
}
