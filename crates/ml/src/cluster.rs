//! k-means clustering (k-means++ initialization, Lloyd iterations).
//!
//! Used to build the SIFT-BoW visual dictionary (the paper clusters SIFT
//! key points into 1000 visual words with k-means).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use tvdp_kernel::Pool;

use crate::sq_l2;

/// Below this many distance evaluations per Lloyd iteration
/// (`rows * k * dim`), the assignment step runs inline: thread spawn
/// overhead would dominate. The cut-over is a latency knob only — the
/// parallel assignment is bitwise identical to the serial one.
const PARALLEL_ASSIGN_FLOPS: usize = 1 << 15;

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Vec<Vec<f32>>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Clusters `data` into `k` groups. Deterministic under `seed`
    /// regardless of thread count — see [`KMeans::fit_with_pool`].
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty, `k == 0`, or `k > data.len()`.
    pub fn fit(data: &[Vec<f32>], k: usize, max_iter: usize, seed: u64) -> Self {
        Self::fit_with_pool(data, k, max_iter, seed, Pool::global())
    }

    /// [`KMeans::fit`] with an explicit worker pool for the assignment
    /// step. Only the per-row nearest-centroid search is parallel; the
    /// inertia sum and centroid updates accumulate serially in row order,
    /// so the result is bit-identical for every thread count.
    pub fn fit_with_pool(
        data: &[Vec<f32>],
        k: usize,
        max_iter: usize,
        seed: u64,
        pool: &Pool,
    ) -> Self {
        assert!(!data.is_empty(), "empty input");
        assert!(k >= 1, "k must be positive");
        assert!(k <= data.len(), "k {k} > samples {}", data.len());
        let dim = data[0].len();
        assert!(data.iter().all(|r| r.len() == dim), "ragged rows");

        let parallel = data.len() * k * dim >= PARALLEL_ASSIGN_FLOPS;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centroids = Self::kmeanspp_init(data, k, &mut rng);
        let mut assignment = vec![0usize; data.len()];
        let mut inertia = f64::INFINITY;
        let mut iterations = 0;

        for it in 0..max_iter {
            iterations = it + 1;
            // Assign: each row's nearest centroid is an independent pure
            // computation; the f64 inertia accumulation stays in row order.
            let nearest: Vec<(usize, f32)> = if parallel {
                pool.map(data, |_, row| Self::nearest(&centroids, row))
            } else {
                data.iter()
                    .map(|row| Self::nearest(&centroids, row))
                    .collect()
            };
            let mut new_inertia = 0.0f64;
            for (i, &(best, d)) in nearest.iter().enumerate() {
                assignment[i] = best;
                // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
                new_inertia += d as f64;
            }
            // Update.
            let mut sums = vec![vec![0.0f32; dim]; k];
            let mut counts = vec![0usize; k];
            for (row, &a) in data.iter().zip(&assignment) {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(row) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at a random sample.
                    centroids[c] = data[rng.gen_range(0..data.len())].clone();
                } else {
                    for (cv, s) in centroids[c].iter_mut().zip(&sums[c]) {
                        *cv = s / counts[c] as f32;
                    }
                }
            }
            let converged = (inertia - new_inertia).abs() < 1e-7 * inertia.max(1.0);
            inertia = new_inertia;
            if converged {
                break;
            }
        }
        Self {
            centroids,
            inertia,
            iterations,
        }
    }

    fn kmeanspp_init(data: &[Vec<f32>], k: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
        let mut centroids = Vec::with_capacity(k);
        centroids.push(data[rng.gen_range(0..data.len())].clone());
        let mut dists: Vec<f32> = data.iter().map(|r| sq_l2(r, &centroids[0])).collect();
        while centroids.len() < k {
            // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
            let total: f64 = dists.iter().map(|&d| d as f64).sum();
            let next = if total <= 0.0 {
                rng.gen_range(0..data.len())
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = data.len() - 1;
                for (i, &d) in dists.iter().enumerate() {
                    target -= d as f64;
                    if target <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            let newest = data[next].clone();
            for (d, row) in dists.iter_mut().zip(data) {
                *d = d.min(sq_l2(row, &newest));
            }
            centroids.push(newest);
        }
        centroids
    }

    fn nearest(centroids: &[Vec<f32>], row: &[f32]) -> (usize, f32) {
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let d = sq_l2(centroid, row);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        (best, best_d)
    }

    /// Cluster centres.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Sum of squared distances to assigned centroids at convergence.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Index of the nearest centroid for `row` (BoW quantization).
    pub fn assign(&self, row: &[f32]) -> usize {
        Self::nearest(&self.centroids, row).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f32>> {
        let mut data = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f32 * 0.01;
            data.push(vec![0.0 + j, 0.0 + j]);
            data.push(vec![10.0 + j, 0.0 - j]);
            data.push(vec![5.0 - j, 10.0 + j]);
        }
        data
    }

    #[test]
    fn recovers_blob_centres() {
        let data = three_blobs();
        let km = KMeans::fit(&data, 3, 50, 7);
        let mut found = [false; 3];
        for c in km.centroids() {
            if sq_l2(c, &[0.0, 0.0]) < 1.0 {
                found[0] = true;
            }
            if sq_l2(c, &[10.0, 0.0]) < 1.0 {
                found[1] = true;
            }
            if sq_l2(c, &[5.0, 10.0]) < 1.0 {
                found[2] = true;
            }
        }
        assert!(found.iter().all(|&f| f), "centroids {:?}", km.centroids());
    }

    #[test]
    fn assign_maps_to_own_blob() {
        let data = three_blobs();
        let km = KMeans::fit(&data, 3, 50, 7);
        let a = km.assign(&[0.1, 0.1]);
        let b = km.assign(&[9.9, 0.1]);
        let c = km.assign(&[5.0, 10.0]);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = three_blobs();
        let k1 = KMeans::fit(&data, 1, 50, 3);
        let k3 = KMeans::fit(&data, 3, 50, 3);
        assert!(k3.inertia() < k1.inertia());
    }

    #[test]
    fn deterministic_under_seed() {
        let data = three_blobs();
        let a = KMeans::fit(&data, 3, 50, 11);
        let b = KMeans::fit(&data, 3, 50, 11);
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = vec![vec![0.0], vec![1.0], vec![2.0]];
        let km = KMeans::fit(&data, 3, 20, 0);
        assert!(km.inertia() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "k")]
    fn k_larger_than_n_panics() {
        let _ = KMeans::fit(&[vec![0.0]], 2, 10, 0);
    }
}
