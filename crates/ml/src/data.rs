//! Datasets, splits, and fold generation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A labelled dataset of dense feature rows.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows; all rows share one dimensionality.
    pub features: Vec<Vec<f32>>,
    /// Class labels, each `< n_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl Dataset {
    /// Builds a dataset, validating shape invariants.
    pub fn new(features: Vec<Vec<f32>>, labels: Vec<usize>, n_classes: usize) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "feature/label length mismatch"
        );
        if let Some(first) = features.first() {
            let dim = first.len();
            assert!(
                features.iter().all(|r| r.len() == dim),
                "ragged feature rows"
            );
        }
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        Self {
            features,
            labels,
            n_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality (0 when empty).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Selects the subset at `indices` (cloning rows).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// Appends another dataset with the same schema.
    pub fn extend(&mut self, other: &Dataset) {
        assert_eq!(self.n_classes, other.n_classes, "class-count mismatch");
        if !self.is_empty() && !other.is_empty() {
            assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        }
        self.features.extend(other.features.iter().cloned());
        self.labels.extend_from_slice(&other.labels);
    }
}

/// Splits `n` samples into shuffled (train, test) index sets with
/// `train_fraction` of samples in train. Deterministic under `seed`.
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "fraction out of range"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let cut = ((n as f64) * train_fraction).round() as usize;
    let test = idx.split_off(cut.min(n));
    (idx, test)
}

/// Stratified split: preserves per-class proportions between train and test.
/// The paper's 80/20 evaluation protocol uses this to keep minority classes
/// represented.
pub fn stratified_split(
    labels: &[usize],
    n_classes: usize,
    train_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "fraction out of range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for class in 0..n_classes {
        let mut members: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect();
        members.shuffle(&mut rng);
        let cut = ((members.len() as f64) * train_fraction).round() as usize;
        let rest = members.split_off(cut.min(members.len()));
        train.extend(members);
        test.extend(rest);
    }
    train.shuffle(&mut rng);
    test.shuffle(&mut rng);
    (train, test)
}

/// K-fold indices: returns `k` (train, validation) index pairs covering all
/// `n` samples; validation folds are disjoint and exhaustive.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(n >= k, "fewer samples than folds");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = n * f / k;
        let hi = n * (f + 1) / k;
        let val: Vec<usize> = idx[lo..hi].to_vec();
        let train: Vec<usize> = idx[..lo].iter().chain(idx[hi..].iter()).copied().collect();
        folds.push((train, val));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![
                vec![0.0, 0.0],
                vec![1.0, 1.0],
                vec![2.0, 2.0],
                vec![3.0, 3.0],
            ],
            vec![0, 0, 1, 1],
            2,
        )
    }

    #[test]
    fn dataset_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.class_counts(), vec![2, 2]);
        assert!(!d.is_empty());
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy();
        let s = d.subset(&[0, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![0, 1]);
        assert_eq!(s.features[1], vec![3.0, 3.0]);
    }

    #[test]
    fn extend_appends() {
        let mut d = toy();
        let e = toy();
        d.extend(&e);
        assert_eq!(d.len(), 8);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1], 2);
    }

    #[test]
    fn split_partitions_and_is_deterministic() {
        let (tr1, te1) = train_test_split(100, 0.8, 7);
        let (tr2, te2) = train_test_split(100, 0.8, 7);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len(), 80);
        assert_eq!(te1.len(), 20);
        let mut all: Vec<usize> = tr1.iter().chain(te1.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        // A different seed gives a different shuffle.
        let (tr3, _) = train_test_split(100, 0.8, 8);
        assert_ne!(tr1, tr3);
    }

    #[test]
    fn stratified_preserves_class_balance() {
        // 30 of class 0, 10 of class 1.
        let labels: Vec<usize> = std::iter::repeat_n(0, 30)
            .chain(std::iter::repeat_n(1, 10))
            .collect();
        let (train, test) = stratified_split(&labels, 2, 0.8, 3);
        assert_eq!(train.len() + test.len(), 40);
        let train_c1 = train.iter().filter(|&&i| labels[i] == 1).count();
        let test_c1 = test.iter().filter(|&&i| labels[i] == 1).count();
        assert_eq!(train_c1, 8);
        assert_eq!(test_c1, 2);
    }

    #[test]
    fn kfold_covers_everything_disjointly() {
        let folds = kfold_indices(23, 5, 11);
        assert_eq!(folds.len(), 5);
        let mut seen = [false; 23];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 23);
            for &v in val {
                assert!(!seen[v], "index {v} in two validation folds");
                seen[v] = true;
                assert!(!train.contains(&v), "index {v} in both train and val");
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "fewer samples than folds")]
    fn kfold_rejects_tiny_input() {
        let _ = kfold_indices(3, 5, 0);
    }
}
