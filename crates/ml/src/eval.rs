//! Model evaluation: k-fold cross-validation.
//!
//! The paper's protocol (Section VII-A) trains on 80% of the data with
//! 10-fold cross-validation and reports F1.

use serde::{Deserialize, Serialize};
use tvdp_kernel::Pool;

use crate::data::{kfold_indices, Dataset};
use crate::metrics::ConfusionMatrix;
use crate::Classifier;

/// Aggregate result of a cross-validation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvResult {
    /// Macro F1 per fold.
    pub fold_f1: Vec<f64>,
    /// Accuracy per fold.
    pub fold_accuracy: Vec<f64>,
}

impl CvResult {
    /// Mean macro F1 across folds.
    pub fn mean_f1(&self) -> f64 {
        mean(&self.fold_f1)
    }

    /// Mean accuracy across folds.
    pub fn mean_accuracy(&self) -> f64 {
        mean(&self.fold_accuracy)
    }

    /// Sample standard deviation of fold F1.
    pub fn std_f1(&self) -> f64 {
        let m = self.mean_f1();
        let n = self.fold_f1.len();
        if n < 2 {
            return 0.0;
        }
        // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
        (self.fold_f1.iter().map(|&v| (v - m).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs `k`-fold cross-validation: for each fold, trains a fresh classifier
/// from `make_model` on the training part and scores the validation part.
/// Folds run on the global pool; see [`cross_validate_with_pool`].
pub fn cross_validate<C, F>(data: &Dataset, k: usize, seed: u64, make_model: F) -> CvResult
where
    C: Classifier + Send,
    F: Fn() -> C + Sync,
{
    cross_validate_with_pool(data, k, seed, make_model, Pool::global())
}

/// [`cross_validate`] with an explicit worker pool. Every fold is an
/// independent train/score job (fold splits are fixed up front by
/// `kfold_indices`, and each fold builds its own model and RNG state), so
/// per-fold scores are bit-identical for every thread count; fold order in
/// the result always matches the fold index order.
pub fn cross_validate_with_pool<C, F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    make_model: F,
    pool: &Pool,
) -> CvResult
where
    C: Classifier + Send,
    F: Fn() -> C + Sync,
{
    let folds = kfold_indices(data.len(), k, seed);
    let scores: Vec<(f64, f64)> = pool.map(&folds, |_, (train_idx, val_idx)| {
        let train = data.subset(train_idx);
        let val = data.subset(val_idx);
        let mut model = make_model();
        model.fit(&train.features, &train.labels, data.n_classes);
        let preds = model.predict(&val.features);
        let cm = ConfusionMatrix::from_predictions(&val.labels, &preds, data.n_classes);
        (cm.macro_f1(), cm.accuracy())
    });
    let (fold_f1, fold_accuracy) = scores.into_iter().unzip();
    CvResult {
        fold_f1,
        fold_accuracy,
    }
}

/// Trains on `train` and evaluates on `test`, returning the confusion
/// matrix (the paper's final-score protocol after CV model selection).
pub fn train_and_evaluate<C: Classifier>(
    model: &mut C,
    train: &Dataset,
    test: &Dataset,
) -> ConfusionMatrix {
    assert_eq!(train.n_classes, test.n_classes, "class-count mismatch");
    model.fit(&train.features, &train.labels, train.n_classes);
    let preds = model.predict(&test.features);
    ConfusionMatrix::from_predictions(&test.labels, &preds, test.n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnClassifier;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn blob_dataset(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            let cx = c as f32 * 5.0;
            for _ in 0..n_per_class {
                features.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ]);
                labels.push(c);
            }
        }
        Dataset::new(features, labels, 3)
    }

    #[test]
    fn cv_on_separable_data_scores_high() {
        let data = blob_dataset(30, 1);
        let result = cross_validate(&data, 5, 42, || KnnClassifier::new(3));
        assert_eq!(result.fold_f1.len(), 5);
        assert!(result.mean_f1() > 0.9, "mean f1 {}", result.mean_f1());
        assert!(result.mean_accuracy() > 0.9);
    }

    #[test]
    fn cv_deterministic() {
        let data = blob_dataset(20, 2);
        let a = cross_validate(&data, 4, 9, || KnnClassifier::new(3));
        let b = cross_validate(&data, 4, 9, || KnnClassifier::new(3));
        assert_eq!(a.fold_f1, b.fold_f1);
    }

    #[test]
    fn std_f1_zero_for_single_fold_list() {
        let r = CvResult {
            fold_f1: vec![0.8],
            fold_accuracy: vec![0.8],
        };
        assert_eq!(r.std_f1(), 0.0);
    }

    #[test]
    fn train_and_evaluate_returns_test_confusion() {
        let data = blob_dataset(20, 3);
        let (train_idx, test_idx) = crate::data::train_test_split(data.len(), 0.8, 5);
        let train = data.subset(&train_idx);
        let test = data.subset(&test_idx);
        let mut model = KnnClassifier::new(3);
        let cm = train_and_evaluate(&mut model, &train, &test);
        assert_eq!(cm.total() as usize, test.len());
        assert!(cm.accuracy() > 0.9);
    }
}
