//! Random forest: bagged CART trees with feature subsampling.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tvdp_kernel::Pool;

use crate::tree::{DecisionTree, TreeParams};
use crate::{validate_fit_input, Classifier};

/// Golden-ratio increment (splitmix64); decorrelates per-tree bootstrap
/// seeds so every tree's resample is independent of the others and of
/// training order.
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A random forest of [`DecisionTree`]s.
///
/// Each tree trains on a bootstrap resample of the data and examines
/// `sqrt(dim)` random features per split; prediction averages the per-tree
/// leaf distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    n_trees: usize,
    params: TreeParams,
    seed: u64,
    trees: Vec<DecisionTree>,
    n_classes: usize,
    /// Worker count for per-tree training; `None` uses the global pool.
    /// Not part of the model, so excluded from serialization.
    #[serde(skip)]
    pool_threads: Option<usize>,
}

impl RandomForest {
    /// Creates an unfitted forest with `n_trees` trees and default tree
    /// parameters, deterministic under `seed`.
    pub fn new(n_trees: usize, seed: u64) -> Self {
        assert!(n_trees >= 1, "need at least one tree");
        Self {
            n_trees,
            params: TreeParams::default(),
            seed,
            trees: Vec::new(),
            n_classes: 0,
            pool_threads: None,
        }
    }

    /// Overrides the per-tree parameters (the forest still forces feature
    /// subsampling to `sqrt(dim)` unless already set).
    pub fn with_tree_params(mut self, params: TreeParams) -> Self {
        self.params = params;
        self
    }

    /// Trains trees on a pool of `threads` workers instead of the global
    /// pool. Each tree derives its bootstrap RNG from the forest seed and
    /// its own index, so the fitted model is identical for any count.
    pub fn with_pool_threads(mut self, threads: usize) -> Self {
        self.pool_threads = Some(threads);
        self
    }

    /// Number of trained trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize], n_classes: usize) {
        let dim = validate_fit_input(x, y, n_classes);
        self.n_classes = n_classes;
        let mut params = self.params;
        if params.features_per_split.is_none() {
            params.features_per_split = Some(((dim as f64).sqrt().ceil() as usize).max(1));
        }
        let pool = match self.pool_threads {
            Some(t) => Pool::new(t),
            None => *Pool::global(),
        };
        // Each tree seeds its own bootstrap RNG from (forest seed, tree
        // index) — no RNG state is shared across trees, so training is
        // embarrassingly parallel and thread-count independent.
        let seed = self.seed;
        self.trees = pool.map_index(self.n_trees, |t| {
            let n = x.len();
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64 + 1).wrapping_mul(SEED_MIX));
            let mut bx = Vec::with_capacity(n);
            let mut by = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            let mut tree = DecisionTree::with_params(params, seed.wrapping_add(t as u64 + 1));
            tree.fit(&bx, &by, n_classes);
            tree
        });
    }

    fn decision_scores(&self, x: &[f32]) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "classifier not fitted");
        let mut acc = vec![0.0f32; self.n_classes];
        for tree in &self.trees {
            for (a, s) in acc.iter_mut().zip(tree.decision_scores(x)) {
                *a += s;
            }
        }
        for a in &mut acc {
            *a /= self.trees.len() as f32;
        }
        acc
    }

    fn name(&self) -> &'static str {
        "Random Forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..60 {
            let n1: f32 = rng.gen_range(-1.0..1.0);
            let n2: f32 = rng.gen_range(-1.0..1.0);
            x.push(vec![n1, n2, rng.gen_range(-1.0..1.0)]);
            y.push(0);
            x.push(vec![3.0 + n1, 3.0 + n2, rng.gen_range(-1.0..1.0)]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn classifies_blobs() {
        let (x, y) = noisy_blobs(1);
        let mut rf = RandomForest::new(15, 42);
        rf.fit(&x, &y, 2);
        assert_eq!(rf.tree_count(), 15);
        assert_eq!(rf.predict_one(&[0.0, 0.0, 0.0]), 0);
        assert_eq!(rf.predict_one(&[3.0, 3.0, 0.0]), 1);
    }

    #[test]
    fn scores_average_to_probabilities() {
        let (x, y) = noisy_blobs(2);
        let mut rf = RandomForest::new(10, 7);
        rf.fit(&x, &y, 2);
        let s = rf.decision_scores(&[1.5, 1.5, 0.0]);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = noisy_blobs(3);
        let mut a = RandomForest::new(8, 99);
        let mut b = RandomForest::new(8, 99);
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let (x, y) = noisy_blobs(4);
        let mut a = RandomForest::new(3, 1);
        let mut b = RandomForest::new(3, 2);
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        // Scores (not necessarily argmax) should differ on at least one input.
        let differs = x
            .iter()
            .any(|r| a.decision_scores(r) != b.decision_scores(r));
        assert!(differs);
    }

    #[test]
    fn forest_beats_or_matches_stump_on_xor() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let a: f32 = rng.gen_range(0.0..1.0);
            let b: f32 = rng.gen_range(0.0..1.0);
            x.push(vec![a, b]);
            y.push(usize::from((a > 0.5) != (b > 0.5)));
        }
        let mut rf = RandomForest::new(25, 11);
        rf.fit(&x, &y, 2);
        let acc = rf
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.9, "forest accuracy {acc}");
    }
}
