//! k-nearest-neighbour classifier.

use serde::{Deserialize, Serialize};

use crate::{sq_l2, validate_fit_input, Classifier};

/// k-NN with Euclidean distance and distance-weighted voting.
///
/// Stores the training set; prediction scans all samples (the indexing
/// crate's LSH provides a sub-linear alternative for retrieval workloads).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnClassifier {
    k: usize,
    weighted: bool,
    x: Vec<Vec<f32>>,
    y: Vec<usize>,
    n_classes: usize,
}

impl KnnClassifier {
    /// Creates an unfitted classifier with `k` neighbours and uniform votes.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        Self {
            k,
            weighted: false,
            x: Vec::new(),
            y: Vec::new(),
            n_classes: 0,
        }
    }

    /// Enables inverse-distance-weighted voting.
    pub fn weighted(mut self) -> Self {
        self.weighted = true;
        self
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize], n_classes: usize) {
        validate_fit_input(x, y, n_classes);
        self.x = x.to_vec();
        self.y = y.to_vec();
        self.n_classes = n_classes;
    }

    fn decision_scores(&self, x: &[f32]) -> Vec<f32> {
        assert!(self.n_classes > 0, "classifier not fitted");
        // Collect the k nearest by a single pass with a small max-heap
        // emulated as a sorted vec (k is tiny in practice).
        let k = self.k.min(self.x.len());
        let mut nearest: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
        for (row, &label) in self.x.iter().zip(&self.y) {
            let d = sq_l2(row, x);
            if nearest.len() < k {
                nearest.push((d, label));
                nearest.sort_by(|a, b| a.0.total_cmp(&b.0));
            } else if d < nearest[k - 1].0 {
                nearest[k - 1] = (d, label);
                nearest.sort_by(|a, b| a.0.total_cmp(&b.0));
            }
        }
        let mut votes = vec![0.0f32; self.n_classes];
        for &(d, label) in &nearest {
            let w = if self.weighted {
                1.0 / (d.sqrt() + 1e-6)
            } else {
                1.0
            };
            votes[label] += w;
        }
        // Normalize to a vote fraction so scores are in [0, 1].
        // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
        let total: f32 = votes.iter().sum();
        if total > 0.0 {
            for v in &mut votes {
                *v /= total;
            }
        }
        votes
    }

    fn name(&self) -> &'static str {
        "kNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let t = i as f32 * 0.05;
            x.push(vec![t, t]);
            y.push(0);
            x.push(vec![5.0 + t, 5.0 + t]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn separable_blobs_classified() {
        let (x, y) = two_blobs();
        let mut knn = KnnClassifier::new(3);
        knn.fit(&x, &y, 2);
        assert_eq!(knn.predict_one(&[0.1, 0.1]), 0);
        assert_eq!(knn.predict_one(&[5.2, 5.2]), 1);
    }

    #[test]
    fn scores_sum_to_one() {
        let (x, y) = two_blobs();
        let mut knn = KnnClassifier::new(5);
        knn.fit(&x, &y, 2);
        let s = knn.decision_scores(&[2.5, 2.5]);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn k_larger_than_train_set_is_clamped() {
        let x = vec![vec![0.0], vec![10.0]];
        let y = vec![0, 1];
        let mut knn = KnnClassifier::new(50);
        knn.fit(&x, &y, 2);
        // With both neighbours voting, weighted variant must prefer closer.
        let mut w = KnnClassifier::new(50).weighted();
        w.fit(&x, &y, 2);
        assert_eq!(w.predict_one(&[1.0]), 0);
        assert_eq!(w.predict_one(&[9.0]), 1);
        // Unweighted ties are broken to the first class by argmax.
        let _ = knn.predict_one(&[5.0]);
    }

    #[test]
    fn exact_match_dominates_weighted_vote() {
        let x = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![10.0, 10.0]];
        let y = vec![0, 1, 1];
        let mut knn = KnnClassifier::new(3).weighted();
        knn.fit(&x, &y, 2);
        assert_eq!(knn.predict_one(&[0.0, 0.0]), 0);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        let knn = KnnClassifier::new(3);
        let _ = knn.predict_one(&[0.0]);
    }
}
