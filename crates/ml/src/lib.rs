//! Machine-learning substrate for the Translational Visual Data Platform.
//!
//! The paper's analysis layer (Section V and the Section VII case study)
//! trains and compares classic classifiers over image feature vectors using
//! scikit-learn. This crate provides the same algorithm family from
//! scratch, deterministic under explicit seeds:
//!
//! * classifiers: [`knn::KnnClassifier`], [`tree::DecisionTree`],
//!   [`bayes::GaussianNb`], [`forest::RandomForest`], [`svm::LinearSvm`]
//!   (one-vs-rest Pegasos), [`logreg::LogisticRegression`] — the five used
//!   in the paper's Fig. 6 plus logistic regression as an extension,
//! * clustering: [`cluster::KMeans`] (k-means++), used to build the
//!   SIFT-BoW visual dictionary,
//! * preprocessing: [`scale::StandardScaler`], [`scale::L2Normalizer`],
//! * evaluation: [`metrics::ConfusionMatrix`] (precision / recall / F1),
//!   train/test splits and k-fold cross-validation in [`data`] and [`eval`].
//!
//! Every classifier implements the [`Classifier`] trait and can report
//! per-class decision scores, which the edge crate's crowd-based learning
//! loop uses for margin-based sample prioritization.

pub mod bayes;
pub mod cluster;
pub mod data;
pub mod eval;
pub mod forest;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod mlp;
pub mod model_io;
pub mod pipeline;
pub mod scale;
pub mod svm;
pub mod tree;

pub use bayes::GaussianNb;
pub use cluster::KMeans;
pub use data::{kfold_indices, stratified_split, train_test_split, Dataset};
pub use eval::{cross_validate, cross_validate_with_pool, CvResult};
pub use forest::RandomForest;
pub use knn::KnnClassifier;
pub use logreg::LogisticRegression;
pub use metrics::ConfusionMatrix;
pub use mlp::{Mlp, MlpParams};
pub use model_io::SerializableModel;
pub use pipeline::ScaledClassifier;
pub use scale::{L2Normalizer, StandardScaler};
pub use svm::LinearSvm;
pub use tree::DecisionTree;

/// A trained multi-class classifier over dense `f32` feature vectors.
///
/// Implementations must be fitted with [`Classifier::fit`] before
/// prediction; predicting on an unfitted model panics (programming error,
/// not data error).
///
/// ```
/// use tvdp_ml::{Classifier, LinearSvm};
///
/// let x = vec![vec![0.0, 0.0], vec![0.3, 0.1], vec![5.0, 5.0], vec![5.2, 4.9]];
/// let y = vec![0, 0, 1, 1];
/// let mut svm = LinearSvm::new();
/// svm.fit(&x, &y, 2);
/// assert_eq!(svm.predict_one(&[0.1, 0.2]), 0);
/// assert_eq!(svm.predict_one(&[5.0, 5.1]), 1);
/// ```
pub trait Classifier {
    /// Trains on feature rows `x` with labels `y` in `0..n_classes`.
    ///
    /// # Panics
    ///
    /// Panics when `x` and `y` disagree in length, `x` is empty, rows have
    /// inconsistent dimensionality, or a label is `>= n_classes`.
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize], n_classes: usize);

    /// Per-class decision scores for one sample. Higher means more likely.
    /// The winning class is `argmax`. Scores are comparable *within* one
    /// call, not across models.
    fn decision_scores(&self, x: &[f32]) -> Vec<f32>;

    /// Predicted class for one sample.
    fn predict_one(&self, x: &[f32]) -> usize {
        argmax(&self.decision_scores(x))
    }

    /// Predicted classes for a batch.
    fn predict(&self, xs: &[Vec<f32>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Human-readable algorithm name (used in experiment reports).
    fn name(&self) -> &'static str;
}

/// Index of the maximum value (first on ties). Panics on empty input.
pub fn argmax(scores: &[f32]) -> usize {
    assert!(!scores.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

/// Validates a training-set shape shared by all classifiers.
pub(crate) fn validate_fit_input(x: &[Vec<f32>], y: &[usize], n_classes: usize) -> usize {
    assert!(!x.is_empty(), "empty training set");
    assert_eq!(x.len(), y.len(), "feature/label length mismatch");
    assert!(n_classes >= 2, "need at least two classes");
    let dim = x[0].len();
    assert!(dim > 0, "zero-dimensional features");
    for (i, row) in x.iter().enumerate() {
        assert_eq!(
            row.len(),
            dim,
            "row {i} has dimension {} != {dim}",
            row.len()
        );
    }
    for (i, &label) in y.iter().enumerate() {
        assert!(
            label < n_classes,
            "label {label} at row {i} >= n_classes {n_classes}"
        );
    }
    dim
}

// Vector primitives come from the shared kernel crate (the workspace's
// single SIMD-friendly implementation); re-exported under the names this
// crate has always used.
pub use tvdp_kernel::dot;
#[doc(inline)]
pub use tvdp_kernel::l2_sq as sq_l2;

/// Cosine similarity in `[-1, 1]`; zero vectors yield 0.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "argmax of empty")]
    fn argmax_empty_panics() {
        let _ = argmax(&[]);
    }

    #[test]
    fn vector_math() {
        let a = [1.0, 0.0, 2.0];
        let b = [0.0, 1.0, 2.0];
        assert_eq!(sq_l2(&a, &b), 2.0);
        assert_eq!(dot(&a, &b), 4.0);
        let c = cosine(&a, &a);
        assert!((c - 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "feature/label length mismatch")]
    fn validate_rejects_mismatch() {
        validate_fit_input(&[vec![1.0]], &[0, 1], 2);
    }

    #[test]
    #[should_panic(expected = ">= n_classes")]
    fn validate_rejects_bad_label() {
        validate_fit_input(&[vec![1.0], vec![2.0]], &[0, 5], 2);
    }
}
