//! Multinomial logistic regression (softmax, SGD).
//!
//! Not in the paper's Fig. 6 line-up; provided as a platform extension so
//! collaborators can register additional model types (paper Section V,
//! "Devise new ML models").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{dot, validate_fit_input, Classifier};

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogRegParams {
    /// SGD learning rate.
    pub learning_rate: f32,
    /// L2 weight decay.
    pub l2: f32,
    /// Epochs over the training set.
    pub epochs: usize,
    /// RNG seed for sample ordering.
    pub seed: u64,
}

impl Default for LogRegParams {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            l2: 1e-5,
            epochs: 40,
            seed: 0,
        }
    }
}

/// Softmax regression trained by SGD on cross-entropy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    params: LogRegParams,
    /// Per class: weights, last element is the bias.
    weights: Vec<Vec<f32>>,
}

impl LogisticRegression {
    /// Creates an unfitted model with default parameters.
    pub fn new() -> Self {
        Self::with_params(LogRegParams::default())
    }

    /// Creates an unfitted model with explicit parameters.
    pub fn with_params(params: LogRegParams) -> Self {
        assert!(params.learning_rate > 0.0, "learning rate must be positive");
        Self {
            params,
            weights: Vec::new(),
        }
    }

    fn softmax(logits: &[f32]) -> Vec<f32> {
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
        // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
        let sum: f32 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Class probabilities for one sample.
    pub fn predict_proba(&self, x: &[f32]) -> Vec<f32> {
        Self::softmax(&self.decision_scores(x))
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize], n_classes: usize) {
        let dim = validate_fit_input(x, y, n_classes);
        self.weights = vec![vec![0.0f32; dim + 1]; n_classes];
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let lr = self.params.learning_rate;
        let l2 = self.params.l2;
        for _ in 0..self.params.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let logits: Vec<f32> = self
                    .weights
                    .iter()
                    .map(|w| dot(&w[..dim], &x[i]) + w[dim])
                    .collect();
                let probs = Self::softmax(&logits);
                for (c, w) in self.weights.iter_mut().enumerate() {
                    let grad = probs[c] - f32::from(y[i] == c);
                    for (wv, &xv) in w[..dim].iter_mut().zip(&x[i]) {
                        *wv -= lr * (grad * xv + l2 * *wv);
                    }
                    w[dim] -= lr * grad;
                }
            }
        }
    }

    fn decision_scores(&self, x: &[f32]) -> Vec<f32> {
        assert!(!self.weights.is_empty(), "classifier not fitted");
        self.weights
            .iter()
            .map(|w| {
                let dim = w.len() - 1;
                dot(&w[..dim], x) + w[dim]
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "Logistic Regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn separates_blobs_and_yields_probabilities() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..80 {
            x.push(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
            y.push(0);
            x.push(vec![
                4.0 + rng.gen_range(-1.0..1.0),
                4.0 + rng.gen_range(-1.0..1.0),
            ]);
            y.push(1);
        }
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y, 2);
        assert_eq!(lr.predict_one(&[0.0, 0.0]), 0);
        assert_eq!(lr.predict_one(&[4.0, 4.0]), 1);
        let p = lr.predict_proba(&[0.0, 0.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p[0] > 0.9, "p={p:?}");
    }

    #[test]
    fn probabilities_near_half_on_boundary() {
        let x = vec![vec![0.0], vec![2.0]];
        let y = vec![0, 1];
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y, 2);
        let p = lr.predict_proba(&[1.0]);
        assert!((p[0] - 0.5).abs() < 0.2, "p={p:?}");
    }

    #[test]
    fn deterministic_under_seed() {
        let x = vec![
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![5.0, 5.0],
            vec![6.0, 4.0],
        ];
        let y = vec![0, 0, 1, 1];
        let mut a = LogisticRegression::new();
        let mut b = LogisticRegression::new();
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        assert_eq!(a.weights, b.weights);
    }
}
