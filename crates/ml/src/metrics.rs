//! Classification metrics: confusion matrix, precision, recall, F1.
//!
//! The paper reports macro F1 scores (Fig. 6) and per-category F1 (Fig. 7);
//! this module computes both from a confusion matrix.

use serde::{Deserialize, Serialize};

/// A `n_classes x n_classes` confusion matrix; rows are true classes,
/// columns predicted classes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty matrix for `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        Self {
            n_classes,
            counts: vec![0; n_classes * n_classes],
        }
    }

    /// Builds the matrix from parallel truth/prediction slices.
    pub fn from_predictions(truth: &[usize], predicted: &[usize], n_classes: usize) -> Self {
        assert_eq!(truth.len(), predicted.len(), "length mismatch");
        let mut m = Self::new(n_classes);
        for (&t, &p) in truth.iter().zip(predicted) {
            m.record(t, p);
        }
        m
    }

    /// Records one observation.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(
            truth < self.n_classes && predicted < self.n_classes,
            "class out of range"
        );
        self.counts[truth * self.n_classes + predicted] += 1;
    }

    /// Count at (truth, predicted).
    pub fn get(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.n_classes + predicted]
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes).map(|c| self.get(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Precision of one class: TP / (TP + FP); 0 when never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.get(class, class);
        let predicted: u64 = (0..self.n_classes).map(|t| self.get(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of one class: TP / (TP + FN); 0 when the class never occurs.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.get(class, class);
        let actual: u64 = (0..self.n_classes).map(|p| self.get(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 of one class (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of per-class F1 — the measure in the paper's Fig. 6.
    pub fn macro_f1(&self) -> f64 {
        // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
        (0..self.n_classes).map(|c| self.f1(c)).sum::<f64>() / self.n_classes as f64
    }

    /// Micro F1 (equals accuracy for single-label multi-class problems).
    pub fn micro_f1(&self) -> f64 {
        self.accuracy()
    }

    /// Per-class (precision, recall, f1) rows, for experiment reports.
    pub fn per_class(&self) -> Vec<(f64, f64, f64)> {
        (0..self.n_classes)
            .map(|c| (self.precision(c), self.recall(c), self.f1(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 2, 1], &[0, 1, 2, 1], 3);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        for c in 0..3 {
            assert_eq!(m.precision(c), 1.0);
            assert_eq!(m.recall(c), 1.0);
        }
    }

    #[test]
    fn known_confusion() {
        // truth:     0 0 0 0 1 1
        // predicted: 0 0 1 1 1 0
        let m = ConfusionMatrix::from_predictions(&[0, 0, 0, 0, 1, 1], &[0, 0, 1, 1, 1, 0], 2);
        assert_eq!(m.get(0, 0), 2);
        assert_eq!(m.get(0, 1), 2);
        assert_eq!(m.get(1, 0), 1);
        assert_eq!(m.get(1, 1), 1);
        assert!((m.accuracy() - 0.5).abs() < 1e-12);
        // class 0: precision 2/3, recall 2/4.
        assert!((m.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(0) - 0.5).abs() < 1e-12);
        let f1_0 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((m.f1(0) - f1_0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes_yield_zero_not_nan() {
        // Class 2 never occurs and is never predicted.
        let m = ConfusionMatrix::from_predictions(&[0, 1], &[1, 0], 3);
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.f1(2), 0.0);
        assert!(!m.macro_f1().is_nan());
    }

    #[test]
    fn micro_f1_equals_accuracy() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 2, 2, 1], &[0, 2, 2, 1, 1], 3);
        assert_eq!(m.micro_f1(), m.accuracy());
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        let m = ConfusionMatrix::new(2);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.total(), 0);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn record_rejects_out_of_range() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 2);
    }
}
