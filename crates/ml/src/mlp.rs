//! A single-hidden-layer perceptron (ReLU + softmax) trained by SGD.
//!
//! Two roles in TVDP:
//!
//! * as a registered classifier ("devise new ML models", paper Section V),
//! * as the *fine-tuning head* for CNN features: the paper fine-tunes its
//!   Caffe network on the training split before extracting features; we
//!   reproduce that step by training this head on the random-convolution
//!   embedding and exposing [`Mlp::hidden_activations`] as the fine-tuned
//!   feature vector.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{validate_fit_input, Classifier};

/// Hyper-parameters for [`Mlp`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MlpParams {
    /// Hidden-layer width.
    pub hidden: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 weight decay.
    pub l2: f32,
    /// Seed for init and sample order.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        Self {
            hidden: 64,
            epochs: 40,
            learning_rate: 0.01,
            l2: 1e-5,
            seed: 0,
        }
    }
}

/// One-hidden-layer MLP classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    params: MlpParams,
    dim: usize,
    n_classes: usize,
    /// Hidden weights, `[hidden][dim]` flattened; plus per-unit bias.
    w1: Vec<f32>,
    b1: Vec<f32>,
    /// Output weights, `[classes][hidden]` flattened; plus per-class bias.
    w2: Vec<f32>,
    b2: Vec<f32>,
}

impl Mlp {
    /// Creates an unfitted network with default parameters.
    pub fn new() -> Self {
        Self::with_params(MlpParams::default())
    }

    /// Creates an unfitted network with explicit parameters.
    pub fn with_params(params: MlpParams) -> Self {
        assert!(params.hidden >= 1, "need at least one hidden unit");
        assert!(params.learning_rate > 0.0, "learning rate must be positive");
        Self {
            params,
            dim: 0,
            n_classes: 0,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: Vec::new(),
        }
    }

    /// Hidden-layer width.
    pub fn hidden_width(&self) -> usize {
        self.params.hidden
    }

    fn forward_hidden(&self, x: &[f32], hidden: &mut [f32]) {
        for (j, (out, bias)) in hidden.iter_mut().zip(&self.b1).enumerate() {
            let mut acc = *bias;
            let row = &self.w1[j * self.dim..(j + 1) * self.dim];
            for (w, &v) in row.iter().zip(x) {
                acc += w * v;
            }
            *out = acc.max(0.0);
        }
    }

    fn forward_logits(&self, hidden: &[f32], logits: &mut [f32]) {
        let h = self.params.hidden;
        for (c, (out, bias)) in logits.iter_mut().zip(&self.b2).enumerate() {
            let mut acc = *bias;
            let row = &self.w2[c * h..(c + 1) * h];
            for (w, &v) in row.iter().zip(hidden) {
                acc += w * v;
            }
            *out = acc;
        }
    }

    /// ReLU hidden activations for a sample — the fine-tuned feature
    /// vector of length [`Self::hidden_width`].
    pub fn hidden_activations(&self, x: &[f32]) -> Vec<f32> {
        assert!(self.dim > 0, "classifier not fitted");
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        let mut hidden = vec![0.0f32; self.params.hidden];
        self.forward_hidden(x, &mut hidden);
        hidden
    }

    fn softmax_inplace(logits: &mut [f32]) {
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for l in logits.iter_mut() {
            *l = (*l - max).exp();
            // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
            sum += *l;
        }
        for l in logits.iter_mut() {
            *l /= sum;
        }
    }
}

impl Default for Mlp {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for Mlp {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize], n_classes: usize) {
        let dim = validate_fit_input(x, y, n_classes);
        self.dim = dim;
        self.n_classes = n_classes;
        let h = self.params.hidden;
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut gaussian = |scale: f32| {
            let u1: f32 = rng.gen_range(1e-7..1.0f32);
            let u2: f32 = rng.gen_range(0.0..1.0f32);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * scale
        };
        let s1 = (2.0 / dim as f32).sqrt();
        self.w1 = (0..h * dim).map(|_| gaussian(s1)).collect();
        self.b1 = vec![0.0; h];
        let s2 = (2.0 / h as f32).sqrt();
        self.w2 = (0..n_classes * h).map(|_| gaussian(s2)).collect();
        self.b2 = vec![0.0; n_classes];

        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut hidden = vec![0.0f32; h];
        let mut logits = vec![0.0f32; n_classes];
        let lr = self.params.learning_rate;
        let l2 = self.params.l2;
        for _ in 0..self.params.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                self.forward_hidden(&x[i], &mut hidden);
                self.forward_logits(&hidden, &mut logits);
                Self::softmax_inplace(&mut logits);
                // Output-layer gradient: dL/dlogit_c = p_c - [c == y].
                // Hidden gradient accumulates through w2 before we mutate it.
                let mut dhidden = vec![0.0f32; h];
                for (c, &logit) in logits.iter().enumerate() {
                    let g = logit - f32::from(y[i] == c);
                    let row = &mut self.w2[c * h..(c + 1) * h];
                    for j in 0..h {
                        dhidden[j] += g * row[j];
                        row[j] -= lr * (g * hidden[j] + l2 * row[j]);
                    }
                    self.b2[c] -= lr * g;
                }
                for j in 0..h {
                    if hidden[j] <= 0.0 {
                        continue; // ReLU gate
                    }
                    let g = dhidden[j];
                    let row = &mut self.w1[j * self.dim..(j + 1) * self.dim];
                    for (w, &v) in row.iter_mut().zip(&x[i]) {
                        *w -= lr * (g * v + l2 * *w);
                    }
                    self.b1[j] -= lr * g;
                }
            }
        }
    }

    fn decision_scores(&self, x: &[f32]) -> Vec<f32> {
        assert!(self.dim > 0, "classifier not fitted");
        let mut hidden = vec![0.0f32; self.params.hidden];
        self.forward_hidden(x, &mut hidden);
        let mut logits = vec![0.0f32; self.n_classes];
        self.forward_logits(&hidden, &mut logits);
        logits
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(0.0..1.0);
            let b: f32 = rng.gen_range(0.0..1.0);
            x.push(vec![a, b]);
            y.push(usize::from((a > 0.5) != (b > 0.5)));
        }
        (x, y)
    }

    #[test]
    fn learns_xor_unlike_linear_models() {
        let (x, y) = xor_data(300, 1);
        let mut mlp = Mlp::with_params(MlpParams {
            hidden: 16,
            epochs: 120,
            ..Default::default()
        });
        mlp.fit(&x, &y, 2);
        let acc = mlp
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.9, "MLP XOR accuracy {acc}");
    }

    #[test]
    fn hidden_activations_nonnegative_and_sized() {
        let (x, y) = xor_data(100, 2);
        let mut mlp = Mlp::new();
        mlp.fit(&x, &y, 2);
        let hidd = mlp.hidden_activations(&x[0]);
        assert_eq!(hidd.len(), 64);
        assert!(hidd.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = xor_data(80, 3);
        let mut a = Mlp::new();
        let mut b = Mlp::new();
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        assert_eq!(a.predict(&x), b.predict(&x));
        assert_eq!(a.hidden_activations(&x[0]), b.hidden_activations(&x[0]));
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        let mlp = Mlp::new();
        let _ = mlp.predict_one(&[0.0, 0.0]);
    }
}
