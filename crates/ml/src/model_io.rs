//! Serializable trained models — the platform's model exchange format.
//!
//! The paper's API lets edge devices *download* trained models and lets
//! collaborators *upload* models they devised elsewhere (Section V, APIs
//! 6 and 7). [`SerializableModel`] is the exchange format: every built-in
//! algorithm (optionally behind its scaling pipeline) in one serde enum,
//! still usable as a [`Classifier`].

use serde::{Deserialize, Serialize};

use crate::bayes::GaussianNb;
use crate::forest::RandomForest;
use crate::knn::KnnClassifier;
use crate::logreg::LogisticRegression;
use crate::mlp::Mlp;
use crate::pipeline::ScaledClassifier;
use crate::svm::LinearSvm;
use crate::tree::DecisionTree;
use crate::Classifier;

/// A trained model in portable form.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names mirror the wrapped classifiers
pub enum SerializableModel {
    Knn(ScaledClassifier<KnnClassifier>),
    DecisionTree(DecisionTree),
    NaiveBayes(GaussianNb),
    RandomForest(RandomForest),
    Svm(ScaledClassifier<LinearSvm>),
    LogisticRegression(ScaledClassifier<LogisticRegression>),
    Mlp(ScaledClassifier<Mlp>),
}

impl SerializableModel {
    fn inner(&self) -> &dyn Classifier {
        match self {
            SerializableModel::Knn(m) => m,
            SerializableModel::DecisionTree(m) => m,
            SerializableModel::NaiveBayes(m) => m,
            SerializableModel::RandomForest(m) => m,
            SerializableModel::Svm(m) => m,
            SerializableModel::LogisticRegression(m) => m,
            SerializableModel::Mlp(m) => m,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn Classifier {
        match self {
            SerializableModel::Knn(m) => m,
            SerializableModel::DecisionTree(m) => m,
            SerializableModel::NaiveBayes(m) => m,
            SerializableModel::RandomForest(m) => m,
            SerializableModel::Svm(m) => m,
            SerializableModel::LogisticRegression(m) => m,
            SerializableModel::Mlp(m) => m,
        }
    }

    /// Short algorithm tag for provenance records.
    pub fn algorithm_tag(&self) -> &'static str {
        self.inner().name()
    }
}

impl Classifier for SerializableModel {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize], n_classes: usize) {
        self.inner_mut().fit(x, y, n_classes);
    }

    fn decision_scores(&self, x: &[f32]) -> Vec<f32> {
        self.inner().decision_scores(x)
    }

    fn name(&self) -> &'static str {
        self.inner().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let j = (i % 10) as f32 * 0.05;
            x.push(vec![j, j]);
            y.push(0);
            x.push(vec![4.0 + j, 4.0 - j]);
            y.push(1);
        }
        (x, y)
    }

    fn all_variants() -> Vec<SerializableModel> {
        vec![
            SerializableModel::Knn(ScaledClassifier::new(KnnClassifier::new(3))),
            SerializableModel::DecisionTree(DecisionTree::new()),
            SerializableModel::NaiveBayes(GaussianNb::new()),
            SerializableModel::RandomForest(RandomForest::new(5, 1)),
            SerializableModel::Svm(ScaledClassifier::new(LinearSvm::new())),
            SerializableModel::LogisticRegression(ScaledClassifier::new(LogisticRegression::new())),
            SerializableModel::Mlp(ScaledClassifier::new(Mlp::new())),
        ]
    }

    #[test]
    fn every_variant_roundtrips_through_json_with_identical_predictions() {
        let (x, y) = blobs();
        for mut model in all_variants() {
            model.fit(&x, &y, 2);
            let json = serde_json::to_string(&model).expect("serialize");
            let restored: SerializableModel = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(restored.algorithm_tag(), model.algorithm_tag());
            for row in &x {
                assert_eq!(
                    restored.predict_one(row),
                    model.predict_one(row),
                    "{} diverged after roundtrip",
                    model.name()
                );
                // Scores match bit-for-bit (pure weight structures).
                assert_eq!(restored.decision_scores(row), model.decision_scores(row));
            }
        }
    }

    #[test]
    fn variants_classify_blobs() {
        let (x, y) = blobs();
        for mut model in all_variants() {
            model.fit(&x, &y, 2);
            assert_eq!(model.predict_one(&[0.1, 0.1]), 0, "{}", model.name());
            assert_eq!(model.predict_one(&[4.0, 4.0]), 1, "{}", model.name());
        }
    }
}
