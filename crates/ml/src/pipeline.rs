//! Preprocessing + classifier pipelines.
//!
//! Scale-sensitive classifiers (SVM, logistic regression, MLP) need their
//! inputs standardized with statistics fitted on the training data only.
//! [`ScaledClassifier`] bundles a [`StandardScaler`] with any classifier
//! so the platform can persist and apply the pair as one model.

use serde::{Deserialize, Serialize};

use crate::scale::StandardScaler;
use crate::Classifier;

/// A classifier that standardizes its inputs with train-split statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaledClassifier<C> {
    inner: C,
    scaler: Option<StandardScaler>,
}

impl<C: Classifier> ScaledClassifier<C> {
    /// Wraps an unfitted classifier.
    pub fn new(inner: C) -> Self {
        Self {
            inner,
            scaler: None,
        }
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Classifier> Classifier for ScaledClassifier<C> {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize], n_classes: usize) {
        let scaler = StandardScaler::fit(x);
        let scaled = scaler.transform(x);
        self.scaler = Some(scaler);
        self.inner.fit(&scaled, y, n_classes);
    }

    fn decision_scores(&self, x: &[f32]) -> Vec<f32> {
        // tvdp-lint: allow(no_panic, reason = "Classifier contract: fit() precedes decision_scores(); documented on the trait")
        let scaler = self.scaler.as_ref().expect("classifier not fitted");
        let mut row = x.to_vec();
        scaler.transform_row(&mut row);
        self.inner.decision_scores(&row)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svm::LinearSvm;

    /// Two classes separated along a feature whose raw scale is huge —
    /// hard for an unscaled SGD SVM with few epochs.
    fn badly_scaled() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let j = (i % 10) as f32;
            x.push(vec![1e5 + j * 10.0, 0.001 * j]);
            y.push(0);
            x.push(vec![1.2e5 + j * 10.0, 0.001 * j]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn scaling_pipeline_handles_bad_scales() {
        let (x, y) = badly_scaled();
        let mut scaled = ScaledClassifier::new(LinearSvm::new());
        scaled.fit(&x, &y, 2);
        let acc = scaled
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "scaled pipeline accuracy {acc}");
        assert_eq!(scaled.name(), "SVM");
    }

    #[test]
    fn scores_use_train_statistics() {
        let (x, y) = badly_scaled();
        let mut scaled = ScaledClassifier::new(LinearSvm::new());
        scaled.fit(&x, &y, 2);
        // A point near the class-1 centre must classify as 1 even though
        // its raw values dwarf the second feature.
        assert_eq!(scaled.predict_one(&[1.2e5, 0.005]), 1);
        assert_eq!(scaled.predict_one(&[1.0e5, 0.005]), 0);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_pipeline_panics() {
        let scaled = ScaledClassifier::new(LinearSvm::new());
        let _ = scaled.predict_one(&[0.0, 0.0]);
    }
}
