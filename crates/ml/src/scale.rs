//! Feature preprocessing: standardization and L2 normalization.

use serde::{Deserialize, Serialize};

/// Per-feature standardization to zero mean / unit variance.
///
/// SVM and logistic regression are scale-sensitive; the analysis pipelines
/// fit the scaler on training data only and apply it to both splits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl StandardScaler {
    /// Fits the scaler on `data`. Panics on empty input or ragged rows.
    pub fn fit(data: &[Vec<f32>]) -> Self {
        assert!(!data.is_empty(), "empty input");
        let dim = data[0].len();
        assert!(data.iter().all(|r| r.len() == dim), "ragged rows");
        let n = data.len() as f32;
        let mut mean = vec![0.0f32; dim];
        for row in data {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0f32; dim];
        for row in data {
            for (s, (&v, &m)) in std.iter_mut().zip(row.iter().zip(&mean)) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
            if *s < 1e-9 {
                *s = 1.0; // constant feature: leave centred, unscaled
            }
        }
        Self { mean, std }
    }

    /// Transforms one row in place.
    pub fn transform_row(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.mean.len(), "dimension mismatch");
        for ((v, &m), &s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Transforms a copy of the dataset.
    pub fn transform(&self, data: &[Vec<f32>]) -> Vec<Vec<f32>> {
        data.iter()
            .map(|row| {
                let mut r = row.clone();
                self.transform_row(&mut r);
                r
            })
            .collect()
    }
}

/// Scales each row to unit Euclidean norm (zero rows are left unchanged).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct L2Normalizer;

impl L2Normalizer {
    /// Normalizes one row in place.
    pub fn transform_row(row: &mut [f32]) {
        tvdp_kernel::normalize(row);
    }

    /// Normalizes a copy of the dataset.
    pub fn transform(data: &[Vec<f32>]) -> Vec<Vec<f32>> {
        data.iter()
            .map(|row| {
                let mut r = row.clone();
                Self::transform_row(&mut r);
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let data = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let scaler = StandardScaler::fit(&data);
        let t = scaler.transform(&data);
        for d in 0..2 {
            let mean: f32 = t.iter().map(|r| r[d]).sum::<f32>() / 3.0;
            let var: f32 = t.iter().map(|r| (r[d] - mean).powi(2)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-6, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-5, "var {var}");
        }
    }

    #[test]
    fn constant_feature_not_nan() {
        let data = vec![vec![7.0], vec![7.0], vec![7.0]];
        let scaler = StandardScaler::fit(&data);
        let t = scaler.transform(&data);
        assert!(t.iter().all(|r| r[0] == 0.0));
    }

    #[test]
    fn normalizer_scales_rows_to_unit_norm() {
        let data = vec![vec![3.0, 4.0], vec![0.0, 0.0]];
        let t = L2Normalizer::transform(&data);
        let norm: f32 = t[0].iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        assert_eq!(t[1], vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn transform_rejects_wrong_dim() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]);
        let mut row = vec![1.0];
        scaler.transform_row(&mut row);
    }
}
