//! Linear support vector machine (one-vs-rest, Pegasos SGD).
//!
//! The paper's best classifier (Fig. 6/7) is an SVM; this implementation
//! uses the Pegasos primal sub-gradient solver (Shalev-Shwartz et al.) on
//! the hinge loss with L2 regularization, one binary machine per class.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{dot, validate_fit_input, Classifier};

/// Hyper-parameters for [`LinearSvm`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SvmParams {
    /// L2 regularization strength λ.
    pub lambda: f32,
    /// Number of SGD epochs over the training set.
    pub epochs: usize,
    /// RNG seed for sample ordering.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        Self {
            lambda: 1e-5,
            epochs: 200,
            seed: 0,
        }
    }
}

/// One-vs-rest linear SVM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    params: SvmParams,
    /// Per class: weight vector (last element is the bias).
    weights: Vec<Vec<f32>>,
}

impl LinearSvm {
    /// Creates an unfitted SVM with default parameters.
    pub fn new() -> Self {
        Self::with_params(SvmParams::default())
    }

    /// Creates an unfitted SVM with explicit parameters.
    pub fn with_params(params: SvmParams) -> Self {
        assert!(params.lambda > 0.0, "lambda must be positive");
        assert!(params.epochs >= 1, "need at least one epoch");
        Self {
            params,
            weights: Vec::new(),
        }
    }

    /// Trains one binary Pegasos machine: labels +1 for `positive_class`.
    fn train_binary(
        &self,
        x: &[Vec<f32>],
        y: &[usize],
        positive_class: usize,
        seed: u64,
    ) -> Vec<f32> {
        let dim = x[0].len();
        let mut w = vec![0.0f32; dim + 1]; // last slot = bias
        let n = x.len();
        let lambda = self.params.lambda;
        // Class-balanced instance weights: each one-vs-rest subproblem is
        // heavily imbalanced (1 class vs 4), so positive examples get a
        // proportionally larger hinge gradient (sklearn's
        // `class_weight="balanced"`).
        let n_pos = y.iter().filter(|&&l| l == positive_class).count().max(1);
        let w_pos = n as f32 / (2.0 * n_pos as f32);
        let w_neg = n as f32 / (2.0 * (n - n_pos).max(1) as f32);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t: u64 = 1;
        // Averaged Pegasos: the average of the SGD iterates over the
        // second half of training converges far more reliably than the
        // final iterate.
        let total_steps = (self.params.epochs * n) as u64;
        let burn_in = total_steps / 2;
        let mut w_avg = vec![0.0f32; dim + 1];
        let mut averaged: u64 = 0;
        for _ in 0..self.params.epochs {
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                let label: f32 = if y[i] == positive_class { 1.0 } else { -1.0 };
                let eta = 1.0 / (lambda * t as f32);
                let margin = label * (dot(&w[..dim], &x[i]) + w[dim]);
                // w ← (1 − ηλ)w (+ ηy·x when the margin is violated).
                let shrink = 1.0 - eta * lambda;
                for v in &mut w[..dim] {
                    *v *= shrink;
                }
                if margin < 1.0 {
                    let cw = if label > 0.0 { w_pos } else { w_neg };
                    for (wv, &xv) in w[..dim].iter_mut().zip(&x[i]) {
                        *wv += eta * cw * label * xv;
                    }
                    w[dim] += eta * cw * label;
                }
                if t > burn_in {
                    for (a, &v) in w_avg.iter_mut().zip(&w) {
                        *a += v;
                    }
                    averaged += 1;
                }
                t += 1;
            }
        }
        if averaged > 0 {
            for a in &mut w_avg {
                *a /= averaged as f32;
            }
            w_avg
        } else {
            w
        }
    }

    /// Margin (signed distance proxy) of a sample for one class.
    pub fn margin(&self, class: usize, x: &[f32]) -> f32 {
        let w = &self.weights[class];
        let dim = w.len() - 1;
        dot(&w[..dim], x) + w[dim]
    }
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize], n_classes: usize) {
        validate_fit_input(x, y, n_classes);
        self.weights = (0..n_classes)
            .map(|c| self.train_binary(x, y, c, self.params.seed.wrapping_add(c as u64)))
            .collect();
    }

    fn decision_scores(&self, x: &[f32]) -> Vec<f32> {
        assert!(!self.weights.is_empty(), "classifier not fitted");
        // Normalize each one-vs-rest margin by its hyperplane norm so the
        // scores are geometric distances and comparable across the binary
        // machines (uncalibrated raw margins skew the argmax).
        (0..self.weights.len())
            .map(|c| {
                let w = &self.weights[c];
                let dim = w.len() - 1;
                let norm = dot(&w[..dim], &w[..dim]).sqrt().max(1e-12);
                self.margin(c, x) / norm
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(seed: u64, n_per_class: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [[0.0f32, 0.0], [4.0, 0.0], [2.0, 4.0]];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                x.push(vec![
                    center[0] + rng.gen_range(-0.8..0.8),
                    center[1] + rng.gen_range(-0.8..0.8),
                ]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn separates_three_blobs() {
        let (x, y) = linearly_separable(1, 50);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y, 3);
        let acc = svm
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn margins_have_correct_sign_far_from_boundary() {
        let (x, y) = linearly_separable(2, 60);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y, 3);
        // Deep inside class 0's blob, its OvR margin must be positive and
        // the others negative.
        let m0 = svm.margin(0, &[0.0, 0.0]);
        let m1 = svm.margin(1, &[0.0, 0.0]);
        assert!(m0 > 0.0, "m0={m0}");
        assert!(m1 < 0.0, "m1={m1}");
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = linearly_separable(3, 30);
        let mut a = LinearSvm::with_params(SvmParams {
            seed: 9,
            ..Default::default()
        });
        let mut b = LinearSvm::with_params(SvmParams {
            seed: 9,
            ..Default::default()
        });
        a.fit(&x, &y, 3);
        b.fit(&x, &y, 3);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn bias_allows_offset_boundary() {
        // 1-D classes separated at x = 10 — unsolvable without a bias term.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            x.push(vec![8.0 + (i % 10) as f32 * 0.1]);
            y.push(0);
            x.push(vec![12.0 + (i % 10) as f32 * 0.1]);
            y.push(1);
        }
        let mut svm = LinearSvm::with_params(SvmParams {
            epochs: 80,
            ..Default::default()
        });
        svm.fit(&x, &y, 2);
        assert_eq!(svm.predict_one(&[8.5]), 0);
        assert_eq!(svm.predict_one(&[12.5]), 1);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        let svm = LinearSvm::new();
        let _ = svm.predict_one(&[0.0]);
    }
}
