//! CART decision tree with Gini impurity.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{validate_fit_input, Classifier};

/// Hyper-parameters for [`DecisionTree`] (and the trees inside
/// [`crate::forest::RandomForest`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// A node with fewer samples becomes a leaf.
    pub min_samples_split: usize,
    /// Candidate thresholds considered per feature (quantile subsampling
    /// keeps training near `O(n · dim · candidates)`).
    pub max_thresholds: usize,
    /// Number of features examined per split; `None` means all (set by the
    /// random forest to `sqrt(dim)`).
    pub features_per_split: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 4,
            max_thresholds: 24,
            features_per_split: None,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class probability distribution at the leaf.
        dist: Vec<f32>,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART classifier: binary splits chosen by Gini-impurity reduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    params: TreeParams,
    seed: u64,
    root: Option<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Creates an unfitted tree with default parameters.
    pub fn new() -> Self {
        Self::with_params(TreeParams::default(), 0)
    }

    /// Creates an unfitted tree with explicit parameters and RNG seed (the
    /// seed only matters when `features_per_split` subsamples features).
    pub fn with_params(params: TreeParams, seed: u64) -> Self {
        assert!(params.max_depth >= 1, "max_depth must be >= 1");
        assert!(params.max_thresholds >= 1, "max_thresholds must be >= 1");
        Self {
            params,
            seed,
            root: None,
            n_classes: 0,
        }
    }

    /// Number of decision nodes plus leaves (model complexity diagnostic).
    pub fn node_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    fn gini(counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
        1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
    }

    fn leaf_from(indices: &[usize], y: &[usize], n_classes: usize) -> Node {
        let mut dist = vec![0.0f32; n_classes];
        for &i in indices {
            dist[y[i]] += 1.0;
        }
        // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
        let total: f32 = dist.iter().sum();
        if total > 0.0 {
            for d in &mut dist {
                *d /= total;
            }
        }
        Node::Leaf { dist }
    }

    #[allow(clippy::too_many_arguments, clippy::ptr_arg)]
    fn build(
        &self,
        x: &[Vec<f32>],
        y: &[usize],
        indices: &mut Vec<usize>,
        depth: usize,
        n_classes: usize,
        rng: &mut StdRng,
    ) -> Node {
        let mut counts = vec![0usize; n_classes];
        for &i in indices.iter() {
            counts[y[i]] += 1;
        }
        let total = indices.len();
        let parent_gini = Self::gini(&counts, total);
        let pure = counts.contains(&total);
        if depth >= self.params.max_depth || total < self.params.min_samples_split || pure {
            return Self::leaf_from(indices, y, n_classes);
        }

        let dim = x[0].len();
        let mut feature_pool: Vec<usize> = (0..dim).collect();
        let n_features = self.params.features_per_split.unwrap_or(dim).clamp(1, dim);
        if n_features < dim {
            feature_pool.shuffle(rng);
            feature_pool.truncate(n_features);
        }

        let mut best: Option<(usize, f32, f64)> = None; // (feature, threshold, weighted gini)
        let mut values: Vec<f32> = Vec::with_capacity(total);
        for &feature in &feature_pool {
            values.clear();
            values.extend(indices.iter().map(|&i| x[i][feature]));
            values.sort_by(f32::total_cmp);
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            // Quantile-subsampled candidate thresholds (midpoints).
            let candidates = self.params.max_thresholds.min(values.len() - 1);
            for c in 0..candidates {
                let pos = (values.len() - 1) * (c + 1) / (candidates + 1);
                let threshold = (values[pos] + values[pos + 1]) / 2.0;
                let mut left_counts = vec![0usize; n_classes];
                let mut left_total = 0usize;
                for &i in indices.iter() {
                    if x[i][feature] <= threshold {
                        left_counts[y[i]] += 1;
                        left_total += 1;
                    }
                }
                if left_total == 0 || left_total == total {
                    continue;
                }
                let right_counts: Vec<usize> = counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(&a, &b)| a - b)
                    .collect();
                let right_total = total - left_total;
                let weighted = (left_total as f64 * Self::gini(&left_counts, left_total)
                    + right_total as f64 * Self::gini(&right_counts, right_total))
                    / total as f64;
                if best.is_none_or(|(_, _, g)| weighted < g) {
                    best = Some((feature, threshold, weighted));
                }
            }
        }

        let Some((feature, threshold, gain_gini)) = best else {
            return Self::leaf_from(indices, y, n_classes);
        };
        if gain_gini >= parent_gini - 1e-12 {
            // No impurity reduction: stop.
            return Self::leaf_from(indices, y, n_classes);
        }

        let (mut left_idx, mut right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] <= threshold);
        let left = self.build(x, y, &mut left_idx, depth + 1, n_classes, rng);
        let right = self.build(x, y, &mut right_idx, depth + 1, n_classes, rng);
        Node::Split {
            feature,
            threshold,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f32>], y: &[usize], n_classes: usize) {
        validate_fit_input(x, y, n_classes);
        self.n_classes = n_classes;
        let mut indices: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.root = Some(self.build(x, y, &mut indices, 0, n_classes, &mut rng));
    }

    fn decision_scores(&self, x: &[f32]) -> Vec<f32> {
        // tvdp-lint: allow(no_panic, reason = "Classifier contract: fit() precedes decision_scores(); documented on the trait")
        let mut node = self.root.as_ref().expect("classifier not fitted");
        loop {
            match node {
                Node::Leaf { dist } => return dist.clone(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "Decision Tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f32>>, Vec<usize>) {
        // XOR needs at least depth 2 — not linearly separable.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                let a = i as f32 / 8.0;
                let b = j as f32 / 8.0;
                x.push(vec![a, b]);
                y.push(usize::from((a > 0.5) != (b > 0.5)));
            }
        }
        (x, y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new();
        t.fit(&x, &y, 2);
        let preds = t.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(
            correct as f64 / y.len() as f64 > 0.95,
            "accuracy too low: {correct}/{}",
            y.len()
        );
    }

    #[test]
    fn depth_one_stump_cannot_learn_xor() {
        let (x, y) = xor_data();
        let params = TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        };
        let mut t = DecisionTree::with_params(params, 0);
        t.fit(&x, &y, 2);
        let preds = t.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!((correct as f64 / y.len() as f64) < 0.8);
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2]];
        let y = vec![1, 1, 1];
        let mut t = DecisionTree::new();
        t.fit(&x, &y, 2);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_one(&[5.0]), 1);
    }

    #[test]
    fn leaf_distribution_sums_to_one() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new();
        t.fit(&x, &y, 2);
        let s = t.decision_scores(&[0.3, 0.9]);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn deterministic_across_fits() {
        let (x, y) = xor_data();
        let mut a = DecisionTree::new();
        let mut b = DecisionTree::new();
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        assert_eq!(a.predict(&x), b.predict(&x));
        assert_eq!(a.node_count(), b.node_count());
    }

    #[test]
    fn constant_features_give_single_leaf() {
        let x = vec![vec![1.0, 1.0]; 10];
        let y: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let mut t = DecisionTree::new();
        t.fit(&x, &y, 2);
        assert_eq!(t.node_count(), 1, "no split possible on constant features");
    }
}
