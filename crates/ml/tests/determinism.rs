//! Thread-count independence of every pooled training path.
//!
//! The work pool's contract is that parallelism is a latency knob, not a
//! semantics knob: fitting on one worker and on many must produce
//! bit-identical models and scores.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use tvdp_kernel::Pool;
use tvdp_ml::eval::cross_validate_with_pool;
use tvdp_ml::{Classifier, Dataset, KMeans, KnnClassifier, RandomForest};

/// Clustered data big enough (`n * k * dim` well above the parallel
/// cut-over) that the pooled assignment path actually runs.
fn clustered(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let centre = (i % 4) as f32 * 3.0;
            (0..dim)
                .map(|_| centre + rng.gen_range(-0.5..0.5))
                .collect()
        })
        .collect()
}

fn labelled(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
    let x = clustered(n, dim, seed);
    let y = (0..n).map(|i| i % 4).collect();
    (x, y)
}

#[test]
fn kmeans_identical_across_thread_counts() {
    let data = clustered(2048, 8, 11);
    let serial = KMeans::fit_with_pool(&data, 8, 25, 3, &Pool::serial());
    for threads in [2, 4, 7] {
        let pooled = KMeans::fit_with_pool(&data, 8, 25, 3, &Pool::new(threads));
        assert_eq!(serial.centroids(), pooled.centroids(), "{threads} threads");
        assert_eq!(serial.inertia().to_bits(), pooled.inertia().to_bits());
        assert_eq!(serial.iterations(), pooled.iterations());
    }
}

#[test]
fn random_forest_identical_across_thread_counts() {
    let (x, y) = labelled(300, 6, 5);
    let probe = clustered(40, 6, 99);
    let mut serial = RandomForest::new(12, 77).with_pool_threads(1);
    serial.fit(&x, &y, 4);
    for threads in [2, 4, 8] {
        let mut pooled = RandomForest::new(12, 77).with_pool_threads(threads);
        pooled.fit(&x, &y, 4);
        for row in &probe {
            assert_eq!(
                serial.decision_scores(row),
                pooled.decision_scores(row),
                "{threads} threads"
            );
        }
    }
}

#[test]
fn cross_validate_identical_across_thread_counts() {
    let (x, y) = labelled(400, 5, 8);
    let data = Dataset::new(x, y, 4);
    let serial = cross_validate_with_pool(&data, 8, 21, || KnnClassifier::new(3), &Pool::serial());
    for threads in [2, 5] {
        let pooled =
            cross_validate_with_pool(&data, 8, 21, || KnnClassifier::new(3), &Pool::new(threads));
        assert_eq!(serial.fold_f1, pooled.fold_f1, "{threads} threads");
        assert_eq!(serial.fold_accuracy, pooled.fold_accuracy);
    }
}
