//! Property-based tests of ML substrate invariants.

use proptest::prelude::*;
use tvdp_ml::{
    argmax, cosine, ConfusionMatrix, GaussianNb, KnnClassifier, LinearSvm, StandardScaler,
};
use tvdp_ml::{kfold_indices, train_test_split, Classifier};

fn labels_and_preds() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (1usize..100).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..4, n),
            proptest::collection::vec(0usize..4, n),
        )
    })
}

proptest! {
    #[test]
    fn confusion_metrics_in_unit_interval((truth, pred) in labels_and_preds()) {
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 4);
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
        for c in 0..4 {
            prop_assert!((0.0..=1.0).contains(&cm.precision(c)));
            prop_assert!((0.0..=1.0).contains(&cm.recall(c)));
            prop_assert!((0.0..=1.0).contains(&cm.f1(c)));
        }
        prop_assert_eq!(cm.total() as usize, truth.len());
    }

    #[test]
    fn f1_between_min_and_max_of_p_r((truth, pred) in labels_and_preds()) {
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 4);
        for c in 0..4 {
            let p = cm.precision(c);
            let r = cm.recall(c);
            let f = cm.f1(c);
            prop_assert!(f <= p.max(r) + 1e-12);
            prop_assert!(f >= 0.0);
            // Harmonic mean never exceeds arithmetic mean.
            prop_assert!(f <= (p + r) / 2.0 + 1e-12);
        }
    }

    #[test]
    fn split_partitions(n in 2usize..500, frac in 0.1f64..0.9, seed in 0u64..1000) {
        let (train, test) = train_test_split(n, frac, seed);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn kfold_validation_sets_partition(n in 10usize..200, k in 2usize..8, seed in 0u64..100) {
        prop_assume!(n >= k);
        let folds = kfold_indices(n, k, seed);
        let mut all: Vec<usize> = folds.iter().flat_map(|(_, v)| v.iter().copied()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn cosine_bounded(a in proptest::collection::vec(-10.0f32..10.0, 1..16)) {
        let b: Vec<f32> = a.iter().rev().copied().collect();
        let c = cosine(&a, &b);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&c));
        // Self-similarity is 1 for non-zero vectors.
        if a.iter().any(|&v| v != 0.0) {
            prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn scaler_output_is_finite(rows in proptest::collection::vec(
        proptest::collection::vec(-100.0f32..100.0, 4), 2..30)) {
        let scaler = StandardScaler::fit(&rows);
        let t = scaler.transform(&rows);
        prop_assert!(t.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn classifiers_predict_within_label_space(seed in 0u64..50) {
        // Two tight blobs; every classifier must emit labels in range and
        // classify its own training data mostly correctly.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let jitter = ((i * 31 + seed as usize) % 11) as f32 * 0.01;
            x.push(vec![jitter, jitter]);
            y.push(0);
            x.push(vec![5.0 + jitter, 5.0 - jitter]);
            y.push(1);
        }
        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(KnnClassifier::new(3)),
            Box::new(GaussianNb::new()),
            Box::new(LinearSvm::new()),
        ];
        for mut m in models {
            m.fit(&x, &y, 2);
            for row in &x {
                let p = m.predict_one(row);
                prop_assert!(p < 2);
            }
            let scores = m.decision_scores(&x[0]);
            prop_assert_eq!(scores.len(), 2);
            prop_assert_eq!(argmax(&scores), m.predict_one(&x[0]));
        }
    }
}
