//! The index-backed query engine.
//!
//! Visual features live in the store's shared [feature
//! arena](tvdp_kernel::arena): the engine indexes `u32` row handles,
//! inserts run against the live slab under the store's read lock, and
//! queries resolve rows through a lazily refreshed `Arc`-shared
//! [`SlabView`] snapshot — no feature vector is cloned on either path.
//!
//! Conjunctions are planned by selectivity (see
//! [`QueryEngine::execute`]): exact-membership leaves (temporal ranges,
//! keyword filters, annotation labels, spatial boxes, visual
//! thresholds) are evaluated per candidate instead of materialized,
//! and candidate sets travel as one sorted `Vec<ImageId>` narrowed by
//! galloping intersection.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use tvdp_geo::{BBox, GeoPolygon};
use tvdp_index::{
    inverted::tokenize, InvertedIndex, LshConfig, LshIndex, OrientedRTree, RTree, TemporalIndex,
    VisualFirstIndex, VisualRTree,
};
use tvdp_kernel::{l2_sq, l2_sq_asym, GenCell, Pool, RowSource, SlabView, TopK, TotalF32};
use tvdp_storage::{ClassificationId, ImageId, VisualStore};
use tvdp_vision::FeatureKind;

use crate::plan;
use crate::types::{
    Query, QueryError, QueryResult, SpatialQuery, TemporalField, TextualMode, VisualMode,
};

/// Which scan the exact top-k visual path uses for quantizable work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// The planner picks quantized-scan vs tree per leaf from index
    /// stats (the default; see [`crate::plan::quantized_scan_wins`]).
    Auto,
    /// Always use the quantized scan when any codes exist.
    Always,
    /// Never use the quantized scan.
    Never,
}

/// Quantized-scan tuning.
///
/// The quantized path scans `u8` codes with the asymmetric kernel, then
/// re-ranks survivors on the exact `f32` rows. The re-rank set always
/// includes every candidate within the decode-error margin of the k-th
/// approximate distance, so the final top-k is **exact** — bit-identical
/// to the full-precision scan — at any `rerank_depth >= k`; the depth
/// only widens the re-rank set beyond the provable minimum.
#[derive(Debug, Clone, Copy)]
pub struct QuantConfig {
    /// Scan selection policy.
    pub mode: QuantMode,
    /// Minimum number of approximate candidates re-ranked exactly
    /// (clamped up to `k` at query time).
    pub rerank_depth: usize,
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self {
            mode: QuantMode::Auto,
            rerank_depth: 64,
        }
    }
}

/// Which hybrid-index ordering backs exact spatial-visual queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridOrdering {
    /// Spatial-first Visual R*-tree (the default): nodes group by
    /// location, feature balls prune second. Best when the spatial
    /// predicate is sharp.
    SpatialFirst,
    /// Visual-first IVF cells with spatial MBR pruning
    /// ([`tvdp_index::VisualFirstIndex`]): cells group by feature,
    /// MBRs prune second. Best when the spatial predicate is broad and
    /// the visual one sharp. Both orderings are exact.
    VisualFirst,
}

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Which feature family the visual indexes are built over.
    pub visual_kind: FeatureKind,
    /// LSH tuning for the approximate visual path.
    pub lsh: LshConfig,
    /// When `true` (default), visual queries run exactly on the hybrid
    /// index; when `false`, top-k visual queries use the LSH candidate
    /// path (approximate, faster at scale).
    pub exact_visual: bool,
    /// Quantized-scan policy for the exact top-k path.
    pub quant: QuantConfig,
    /// Hybrid-index ordering for exact spatial-visual queries.
    pub ordering: HybridOrdering,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            visual_kind: FeatureKind::Cnn,
            lsh: LshConfig::default(),
            exact_visual: true,
            quant: QuantConfig::default(),
            ordering: HybridOrdering::SpatialFirst,
        }
    }
}

/// Either hybrid-index ordering behind one exact query surface. Both
/// variants return identical result sets (up to distance ties); the
/// ordering only changes which pruning channel leads.
enum HybridIndex {
    SpatialFirst(VisualRTree<ImageId>),
    VisualFirst(VisualFirstIndex<ImageId>),
}

impl HybridIndex {
    fn new(ordering: HybridOrdering, dim: usize) -> Self {
        match ordering {
            HybridOrdering::SpatialFirst => HybridIndex::SpatialFirst(VisualRTree::new(dim)),
            HybridOrdering::VisualFirst => HybridIndex::VisualFirst(VisualFirstIndex::new(dim)),
        }
    }

    fn dim(&self) -> usize {
        match self {
            HybridIndex::SpatialFirst(t) => t.dim(),
            HybridIndex::VisualFirst(v) => v.dim(),
        }
    }

    fn insert(&mut self, rows: &impl RowSource, bbox: BBox, row: u32, id: ImageId) {
        match self {
            HybridIndex::SpatialFirst(t) => t.insert(rows, bbox, row, id),
            HybridIndex::VisualFirst(v) => v.insert(rows, bbox, row, id),
        }
    }

    fn knn_visual(
        &self,
        rows: &impl RowSource,
        region: &BBox,
        query: &[f32],
        k: usize,
    ) -> Vec<(f32, ImageId)> {
        match self {
            HybridIndex::SpatialFirst(t) => t
                .knn_visual(rows, region, query, k)
                .into_iter()
                .map(|(d, id)| (d, *id))
                .collect(),
            HybridIndex::VisualFirst(v) => v
                .knn_visual(rows, region, query, k)
                .into_iter()
                .map(|(d, id)| (d, *id))
                .collect(),
        }
    }

    fn range_visual(
        &self,
        rows: &impl RowSource,
        region: &BBox,
        query: &[f32],
        max_dist: f32,
    ) -> Vec<(f32, ImageId)> {
        match self {
            HybridIndex::SpatialFirst(t) => t
                .range_visual(rows, region, query, max_dist)
                .into_iter()
                .map(|(d, id)| (d, *id))
                .collect(),
            HybridIndex::VisualFirst(v) => v
                .range_visual(rows, region, query, max_dist)
                .into_iter()
                .map(|(d, id)| (d, *id))
                .collect(),
        }
    }

    fn range_visual_sq(
        &self,
        rows: &impl RowSource,
        region: &BBox,
        query: &[f32],
        max_dist_sq: f32,
    ) -> Vec<(f32, ImageId)> {
        match self {
            HybridIndex::SpatialFirst(t) => t
                .range_visual_sq(rows, region, query, max_dist_sq)
                .into_iter()
                .map(|(d, id)| (d, *id))
                .collect(),
            HybridIndex::VisualFirst(v) => v
                .range_visual_sq(rows, region, query, max_dist_sq)
                .into_iter()
                .map(|(d, id)| (d, *id))
                .collect(),
        }
    }
}

/// The whole-planet region used when a visual query has no spatial
/// constraint.
fn world() -> BBox {
    BBox::new(-90.0, -180.0, 90.0, 180.0)
}

/// A conjunction leaf evaluated per candidate image (an exact
/// membership predicate) instead of being materialized. Top-k-like
/// leaves can never take this form: their result sets depend on the
/// whole corpus, not on one image at a time.
enum Filter<'q> {
    Temporal {
        field: TemporalField,
        from: i64,
        to: i64,
    },
    Textual {
        terms: Vec<String>,
        all: bool,
    },
    Categorical {
        scheme: ClassificationId,
        label: usize,
        min_confidence: f32,
    },
    Range(&'q BBox),
    Within(&'q GeoPolygon),
    VisualThreshold {
        example: &'q [f32],
        max_dist: f32,
    },
}

/// An index-backed executor over a [`VisualStore`] snapshot.
///
/// Built once from the store; images ingested afterwards are indexed via
/// [`QueryEngine::index_image`].
pub struct QueryEngine {
    store: Arc<VisualStore>,
    config: EngineConfig,
    scene_tree: RTree<ImageId>,
    fov_tree: OrientedRTree<ImageId>,
    hybrid: Option<HybridIndex>,
    /// Flat list of every visually indexed entry `(row, id, doc)` in
    /// insertion order — the quantized scan's candidate stream.
    visual_entries: Vec<(u32, ImageId, usize)>,
    lsh: Option<LshIndex>,
    lsh_ids: Vec<ImageId>,
    text: InvertedIndex,
    captured: TemporalIndex,
    uploaded: TemporalIndex,
    /// Dense doc handle -> image id (text/temporal indexes).
    docs: Vec<ImageId>,
    /// Image id -> doc handle (candidate-side lookups; ordered, L2).
    doc_of: BTreeMap<ImageId, usize>,
    /// Per-doc capture/upload timestamps and scene boxes, recorded at
    /// index time so per-candidate predicates never take the store lock.
    captured_at: Vec<i64>,
    uploaded_at: Vec<i64>,
    scenes: Vec<BBox>,
    /// Arena row of each visually indexed image (ordered, L2).
    rows_by_id: BTreeMap<ImageId, u32>,
    /// Dimensionality of the indexed feature family (fixed by the
    /// first indexed feature).
    visual_dim: Option<usize>,
    /// One past the highest arena row the visual indexes reference;
    /// the cached view must cover at least this many rows.
    rows_hi: u32,
    /// Lazily refreshed arena snapshot shared by every visual query,
    /// published as an immutable generation: readers never block on a
    /// refresh and a refresh never blocks readers.
    view_cache: GenCell<SlabView>,
    /// Union of all indexed scene boxes (spatial selectivity model).
    extent: Option<BBox>,
    /// Ordered set (lint rule L2): never leaks hash order into results.
    indexed: BTreeSet<ImageId>,
}

impl QueryEngine {
    /// Builds the engine, indexing every image currently in `store`.
    pub fn build(store: Arc<VisualStore>, config: EngineConfig) -> Self {
        let mut engine = Self::build_empty(Arc::clone(&store), config);
        for id in store.image_ids() {
            engine.index_image(id);
        }
        engine
    }

    /// Builds an engine indexing only the given image ids (ids absent
    /// from the store are ignored). This is how a shard seals a segment:
    /// a small immutable engine over exactly the rows the segment owns,
    /// sharing the store's feature arena zero-copy like [`QueryEngine::build`].
    pub fn build_over(store: Arc<VisualStore>, config: EngineConfig, ids: &[ImageId]) -> Self {
        let mut engine = Self::build_empty(store, config);
        for &id in ids {
            engine.index_image(id);
        }
        engine
    }

    fn build_empty(store: Arc<VisualStore>, config: EngineConfig) -> Self {
        Self {
            store,
            config,
            scene_tree: RTree::new(),
            fov_tree: OrientedRTree::new(),
            hybrid: None,
            visual_entries: Vec::new(),
            lsh: None,
            lsh_ids: Vec::new(),
            text: InvertedIndex::new(),
            captured: TemporalIndex::new(),
            uploaded: TemporalIndex::new(),
            docs: Vec::new(),
            doc_of: BTreeMap::new(),
            captured_at: Vec::new(),
            uploaded_at: Vec::new(),
            scenes: Vec::new(),
            rows_by_id: BTreeMap::new(),
            visual_dim: None,
            rows_hi: 0,
            view_cache: GenCell::new(Arc::new(SlabView::empty(1))),
            extent: None,
            indexed: BTreeSet::new(),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &VisualStore {
        &self.store
    }

    /// Number of indexed images.
    pub fn len(&self) -> usize {
        self.indexed.len()
    }

    /// Whether nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.indexed.is_empty()
    }

    /// Indexes one image from the store into every applicable index.
    /// Idempotent per image id; unknown ids are ignored.
    pub fn index_image(&mut self, id: ImageId) {
        if self.indexed.contains(&id) {
            return;
        }
        let Some(record) = self.store.image(id) else {
            return;
        };
        self.indexed.insert(id);
        self.scene_tree.insert(record.scene_location, id);
        if let Some(fov) = record.meta.fov {
            self.fov_tree.insert(fov, id);
        }
        let doc = self.docs.len();
        self.docs.push(id);
        self.doc_of.insert(id, doc);
        self.text
            .index_document(doc, &record.meta.keywords.join(" "));
        self.captured.insert(record.meta.captured_at, doc);
        self.uploaded.insert(record.meta.uploaded_at, doc);
        self.captured_at.push(record.meta.captured_at);
        self.uploaded_at.push(record.meta.uploaded_at);
        self.scenes.push(record.scene_location);
        self.extent = Some(match self.extent {
            None => record.scene_location,
            Some(e) => e.union(&record.scene_location),
        });
        let kind = self.config.visual_kind;
        if let Some(handle) = self.store.feature_handle(id, kind) {
            if handle.dim > 0 {
                let dim = handle.dim as usize;
                let store = Arc::clone(&self.store);
                let config_lsh = self.config.lsh;
                let ordering = self.config.ordering;
                let hybrid = self
                    .hybrid
                    .get_or_insert_with(|| HybridIndex::new(ordering, dim));
                let lsh = self
                    .lsh
                    .get_or_insert_with(|| LshIndex::new(dim, config_lsh));
                let scene = record.scene_location;
                // Zero-copy insert: both indexes read the feature row
                // straight out of the live slab, under the store's read
                // lock, and keep only the `u32` row handle.
                let _ = store.with_slab(kind, dim, |slab| {
                    hybrid.insert(slab, scene, handle.row, id);
                    lsh.insert(slab.row(handle.row), handle.row);
                });
                self.lsh_ids.push(id);
                self.visual_entries.push((handle.row, id, doc));
                self.rows_by_id.insert(id, handle.row);
                self.visual_dim = Some(dim);
                self.rows_hi = self.rows_hi.max(handle.row.saturating_add(1));
            }
        }
    }

    /// The arena snapshot every visual query path reads rows from.
    /// Refreshed only when an indexed row is not yet covered, so
    /// steady-state queries share one `Arc` and allocate nothing.
    fn visual_view(&self) -> Arc<SlabView> {
        let needed = self.rows_hi as usize;
        let view = self.view_cache.load();
        if view.rows() >= needed {
            return view;
        }
        let dim = self.visual_dim.unwrap_or(1);
        let fresh = Arc::new(self.store.slab_view(self.config.visual_kind, dim));
        // Racing refreshes may publish in either order; snapshots only
        // ever grow and indexes never reference uncovered rows, so
        // whichever generation wins cannot change any query result.
        self.view_cache.store(Arc::clone(&fresh));
        fresh
    }

    /// Validates a query tree against the engine's configuration
    /// without executing it.
    fn validate(&self, query: &Query) -> Result<(), QueryError> {
        match query {
            Query::Visual { kind, .. } if *kind != self.config.visual_kind => {
                Err(QueryError::KindMismatch {
                    indexed: self.config.visual_kind,
                    queried: *kind,
                })
            }
            Query::Spatial(SpatialQuery::Range(region))
            | Query::Spatial(SpatialQuery::Directed { region, .. }) => {
                region.validate().map_err(QueryError::Geo)
            }
            Query::And(subs) | Query::Or(subs) => subs.iter().try_for_each(|q| self.validate(q)),
            _ => Ok(()),
        }
    }

    /// Executes a query, rejecting invalid ones with a typed error: a
    /// visual leaf anywhere in the tree whose feature family differs
    /// from the indexed one yields [`QueryError::KindMismatch`] instead
    /// of silently wrong (or silently dropped) results.
    pub fn try_execute(&self, query: &Query) -> Result<Vec<QueryResult>, QueryError> {
        self.validate(query)?;
        Ok(self.run(query))
    }

    /// Executes a query.
    ///
    /// This is the panicking convenience wrapper over
    /// [`QueryEngine::try_execute`]; use that method to handle invalid
    /// queries gracefully.
    ///
    /// # Panics
    ///
    /// Panics when a visual leaf names a feature family other than the
    /// indexed one (caller error).
    pub fn execute(&self, query: &Query) -> Vec<QueryResult> {
        match self.try_execute(query) {
            Ok(results) => results,
            // tvdp-lint: allow(no_panic, reason = "documented panicking wrapper; try_execute is the fallible API")
            Err(e) => panic!("{e}"),
        }
    }

    /// Dispatch after validation. Recursive planner paths (and the
    /// sharded scatter executor) call this directly so a tree is only
    /// validated once.
    pub(crate) fn run(&self, query: &Query) -> Vec<QueryResult> {
        match query {
            Query::Spatial(sq) => self.execute_spatial(sq),
            Query::Visual { example, mode, .. } => self.execute_visual(example, *mode, None),
            Query::Categorical {
                scheme,
                label,
                min_confidence,
            } => {
                let mut ids: Vec<ImageId> = self
                    .store
                    .annotations_with_label(*scheme, *label)
                    .into_iter()
                    .filter(|a| a.confidence >= *min_confidence)
                    .map(|a| a.image)
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids.into_iter()
                    .map(|id| QueryResult::new(id, 0.0))
                    .collect()
            }
            Query::Textual { text, mode } => self.execute_textual(text, *mode),
            Query::Temporal { field, from, to } => {
                let idx = match field {
                    TemporalField::Captured => &self.captured,
                    TemporalField::Uploaded => &self.uploaded,
                };
                idx.range(*from, *to)
                    .into_iter()
                    .map(|doc| QueryResult::new(self.docs[doc], 0.0))
                    .collect()
            }
            Query::And(subs) => self.execute_and(subs),
            Query::Or(subs) => self.execute_or(subs),
        }
    }

    /// Executes a batch of independent queries, fanning them out across
    /// the given pool. Results arrive in input order and are identical to
    /// calling [`QueryEngine::execute`] per query — the engine is
    /// read-only during execution, so the queries share every index.
    pub fn execute_batch_with_pool(&self, queries: &[Query], pool: &Pool) -> Vec<Vec<QueryResult>> {
        pool.map(queries, |_, q| self.execute(q))
    }

    /// [`QueryEngine::execute_batch_with_pool`] on the global
    /// (one-worker-per-CPU) pool.
    pub fn execute_batch(&self, queries: &[Query]) -> Vec<Vec<QueryResult>> {
        self.execute_batch_with_pool(queries, Pool::global())
    }

    /// Document frequency of a (lowercased) term in this engine's text
    /// index — one addend of a partitioned corpus's global df.
    pub(crate) fn term_df(&self, term: &str) -> usize {
        self.text.doc_frequency(term)
    }

    /// Ranked textual retrieval scored against corpus-global statistics
    /// (`n_docs` documents, per-term document frequencies `df`), mapped
    /// to image ids. The sharded executor's phase-2 scoring: identical
    /// floats to one big index holding the whole corpus (see
    /// [`tvdp_index::InvertedIndex::search_ranked_with_stats`]).
    pub(crate) fn ranked_with_stats(
        &self,
        text: &str,
        k: usize,
        n_docs: usize,
        df: &BTreeMap<String, usize>,
    ) -> Vec<(f64, ImageId)> {
        self.text
            .search_ranked_with_stats(text, k, n_docs, |term, local| {
                df.get(term).copied().unwrap_or(local)
            })
            .into_iter()
            .map(|(score, doc)| (score, self.docs[doc]))
            .collect()
    }

    /// Visual search optionally restricted to a region — the engine's
    /// hybrid fast path, exposed to the sharded executor so a
    /// spatial+visual conjunction scatters as one index traversal per
    /// segment.
    pub(crate) fn run_visual(
        &self,
        example: &[f32],
        mode: VisualMode,
        region: Option<&BBox>,
    ) -> Vec<QueryResult> {
        self.execute_visual(example, mode, region)
    }

    /// All images whose indexed feature lies within squared distance
    /// `max_dist_sq` of `example`, as `(squared_distance, id)` sorted
    /// ascending. The sqrt-free thresholding path (near-duplicate
    /// detection); no spatial constraint.
    pub fn visual_within_sq(&self, example: &[f32], max_dist_sq: f32) -> Vec<(f32, ImageId)> {
        let Some(hybrid) = &self.hybrid else {
            return Vec::new();
        };
        let view = self.visual_view();
        hybrid.range_visual_sq(&*view, &world(), example, max_dist_sq)
    }

    /// Disjunction: union of the branches, keeping each image's best
    /// (lowest) score; output ordered by score then id. Branch results
    /// are folded over one sorted pairs vector — the stable sort keeps
    /// branch order within an image id, so the min-fold visits scores
    /// in the same order a per-image map would.
    fn execute_or(&self, subs: &[Query]) -> Vec<QueryResult> {
        let mut pairs: Vec<(ImageId, f64)> = Vec::new();
        for q in subs {
            pairs.extend(self.run(q).into_iter().map(|r| (r.image, r.score)));
        }
        pairs.sort_by_key(|&(id, _)| id);
        let mut out: Vec<QueryResult> = Vec::new();
        for (id, s) in pairs {
            match out.last_mut() {
                Some(last) if last.image == id => last.score = last.score.min(s),
                _ => out.push(QueryResult::new(id, s)),
            }
        }
        out.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.image.cmp(&b.image)));
        out
    }

    fn execute_spatial(&self, sq: &SpatialQuery) -> Vec<QueryResult> {
        match sq {
            SpatialQuery::Range(bbox) => self
                .scene_tree
                .range(bbox)
                .into_iter()
                .map(|id| QueryResult::new(*id, 0.0))
                .collect(),
            SpatialQuery::Nearest { point, k } => self
                .scene_tree
                .knn(point, *k)
                .into_iter()
                .map(|(d, id)| QueryResult::new(*id, d))
                .collect(),
            SpatialQuery::Within(polygon) => {
                // Index pre-filter on the polygon's bounding box, then the
                // exact polygon-rectangle test.
                self.scene_tree
                    .range(&polygon.bbox())
                    .into_iter()
                    .filter(|id| {
                        self.store
                            .image(**id)
                            .is_some_and(|record| polygon.intersects_bbox(&record.scene_location))
                    })
                    .map(|id| QueryResult::new(*id, 0.0))
                    .collect()
            }
            SpatialQuery::Covering(p) => {
                // FOV-backed visibility plus degenerate matches from
                // images without direction metadata.
                let mut ids: Vec<ImageId> = self
                    .fov_tree
                    .covering_point(p, None)
                    .into_iter()
                    .map(|(_, id)| *id)
                    .collect();
                for id in self.scene_tree.containing(p) {
                    if self.store.image(*id).is_some_and(|r| r.meta.fov.is_none()) {
                        ids.push(*id);
                    }
                }
                ids.sort_unstable();
                ids.dedup();
                ids.into_iter()
                    .map(|id| QueryResult::new(id, 0.0))
                    .collect()
            }
            SpatialQuery::Directed { region, directions } => self
                .fov_tree
                .range_directed(region, directions)
                .into_iter()
                .map(|(_, id)| QueryResult::new(*id, 0.0))
                .collect(),
        }
    }

    /// Visual query, optionally restricted to a spatial region (the
    /// hybrid spatial-visual plan). Feature rows are read from the
    /// shared arena snapshot; nothing is cloned per query.
    fn execute_visual(
        &self,
        example: &[f32],
        mode: VisualMode,
        region: Option<&BBox>,
    ) -> Vec<QueryResult> {
        let Some(hybrid) = &self.hybrid else {
            return Vec::new();
        };
        let view = self.visual_view();
        let region = region.copied().unwrap_or_else(world);
        match mode {
            VisualMode::Threshold(max_dist) => hybrid
                .range_visual(&*view, &region, example, max_dist)
                .into_iter()
                .map(|(d, id)| QueryResult::new(id, f64::from(d)))
                .collect(),
            VisualMode::TopK(k) => {
                if self.config.exact_visual {
                    if self.use_quantized_scan(&view, &region, example, k) {
                        self.quantized_topk(&view, &region, example, k)
                    } else {
                        hybrid
                            .knn_visual(&*view, &region, example, k)
                            .into_iter()
                            .map(|(d, id)| QueryResult::new(id, f64::from(d)))
                            .collect()
                    }
                } else {
                    // Approximate: LSH candidates, exact re-rank on the
                    // arena rows, then spatial post-filter. Oversampling
                    // is configurable (LshConfig::candidate_multiple).
                    let Some(lsh) = self.lsh.as_ref() else {
                        return Vec::new();
                    };
                    lsh.knn(&*view, example, self.config.lsh.oversampled_fetch(k))
                        .into_iter()
                        .map(|(d, handle)| (d, self.lsh_ids[handle]))
                        .filter(|(_, id)| {
                            self.doc_of
                                .get(id)
                                .is_some_and(|&doc| self.scenes[doc].intersects(&region))
                        })
                        .take(k)
                        .map(|(d, id)| QueryResult::new(id, f64::from(d)))
                        .collect()
                }
            }
        }
    }

    /// Whether the exact top-k leaf should run as a quantized flat scan
    /// instead of the hybrid-index traversal. Both paths return the same
    /// results; this is purely a cost decision (except `Always`/`Never`,
    /// which pin the choice for tests and benchmarks).
    fn use_quantized_scan(
        &self,
        view: &SlabView,
        region: &BBox,
        example: &[f32],
        k: usize,
    ) -> bool {
        if self.visual_dim != Some(example.len()) || self.visual_entries.is_empty() {
            return false;
        }
        match self.config.quant.mode {
            QuantMode::Never => false,
            QuantMode::Always => view.quant_rows() > 0,
            QuantMode::Auto => {
                let quant_rows = view.quant_rows() as u32;
                if quant_rows == 0 {
                    return false;
                }
                // Chunks freeze in row order, so exactly the rows below
                // `quant_rows` carry codes.
                let covered = self
                    .visual_entries
                    .iter()
                    .filter(|&&(row, _, _)| row < quant_rows)
                    .count();
                let entries = self.visual_entries.len();
                plan::quantized_scan_wins(&plan::VisualLeafStats {
                    entries,
                    est_candidates: self.spatial_fraction(region) * entries as f64,
                    dim: example.len(),
                    quant_coverage: covered as f64 / entries as f64,
                    rerank_depth: self.config.quant.rerank_depth.max(k),
                })
            }
        }
    }

    /// Exact top-k via the quantized flat scan: pass 1 ranks every
    /// region-intersecting entry by asymmetric (f32-query vs u8-code)
    /// distance, pass 2 re-ranks the survivors on the full `f32` rows.
    ///
    /// Exactness: let `t̂` be the k-th smallest approximate distance and
    /// `eps` the worst decode error any trained chunk certified at
    /// freeze. For every row, `|d̂ - d| <= eps` in the triangle-inequality
    /// sense, so any entry whose true distance makes top-k satisfies
    /// `d̂ <= t̂ + 2·eps`. Re-ranking everything under
    /// `max(t̂ + 2·eps, d̂_depth)` therefore reproduces the full-precision
    /// top-k bit-identically at any `rerank_depth >= k` — the configured
    /// depth only widens the re-rank set beyond the provable minimum.
    /// Rows not yet quantized (live tail chunk) contribute their exact
    /// distance in pass 1, which the margin trivially covers.
    fn quantized_topk(
        &self,
        view: &SlabView,
        region: &BBox,
        example: &[f32],
        k: usize,
    ) -> Vec<QueryResult> {
        if k == 0 {
            return Vec::new();
        }
        // Pass 1: approximate squared distances over the candidate set
        // (same `scene.intersects(region)` predicate the tree applies).
        let mut approx: Vec<(f32, u32, ImageId)> = Vec::new();
        for &(row, id, doc) in &self.visual_entries {
            if !self.scenes[doc].intersects(region) {
                continue;
            }
            let d_sq = match view.quant_row(row) {
                Some((codes, params)) => l2_sq_asym(example, codes, params),
                None => l2_sq(view.row(row), example),
            };
            approx.push((d_sq, row, id));
        }
        let depth = self.config.quant.rerank_depth.max(k).min(approx.len());
        // Approximate ranking; id tiebreak keeps the cutoff deterministic.
        let mut sel = TopK::new(depth);
        for &(d_sq, _, id) in &approx {
            sel.push((TotalF32(d_sq), id));
        }
        let ranked = sel.into_sorted_vec();
        let cutoff_sq = match ranked.get(k - 1) {
            None => f32::INFINITY, // fewer candidates than k: re-rank all
            Some(&(TotalF32(t_hat_sq), _)) => {
                let d_depth = ranked.last().map_or(0.0, |&(TotalF32(d), _)| d).sqrt();
                let cutoff = (t_hat_sq.sqrt() + 2.0 * view.max_quant_eps()).max(d_depth);
                cutoff * cutoff
            }
        };
        // Pass 2: exact re-rank of every entry inside the error margin.
        let mut exact = TopK::new(k);
        for &(d_sq, row, id) in &approx {
            if d_sq <= cutoff_sq {
                exact.push((TotalF32(l2_sq(view.row(row), example)), id));
            }
        }
        exact
            .into_sorted_vec()
            .into_iter()
            .map(|(TotalF32(d_sq), id)| QueryResult::new(id, f64::from(d_sq.sqrt())))
            .collect()
    }

    fn execute_textual(&self, text: &str, mode: TextualMode) -> Vec<QueryResult> {
        match mode {
            TextualMode::All => self
                .text
                .search_and(text)
                .into_iter()
                .map(|doc| QueryResult::new(self.docs[doc], 0.0))
                .collect(),
            TextualMode::Any => self
                .text
                .search_or(text)
                .into_iter()
                .map(|doc| QueryResult::new(self.docs[doc], 0.0))
                .collect(),
            TextualMode::Ranked(k) => self
                .text
                .search_ranked(text, k)
                .into_iter()
                .map(|(score, doc)| QueryResult::new(self.docs[doc], score))
                .collect(),
        }
    }

    /// Classifies a conjunction leaf as a per-candidate membership
    /// predicate, returning it with a rough unit cost per test (used to
    /// order the filter chain cheapest-first). `None` means the leaf
    /// must be materialized: top-k-like modes (visual top-k, nearest,
    /// ranked text), coverage/direction queries, and nested trees.
    fn pushdown<'q>(&self, q: &'q Query) -> Option<(Filter<'q>, u32)> {
        match q {
            Query::Temporal { field, from, to } => Some((
                Filter::Temporal {
                    field: *field,
                    from: *from,
                    to: *to,
                },
                1,
            )),
            Query::Spatial(SpatialQuery::Range(b)) => Some((Filter::Range(b), 2)),
            Query::Textual { text, mode } => match mode {
                TextualMode::All => Some((
                    Filter::Textual {
                        terms: tokenize(text),
                        all: true,
                    },
                    3,
                )),
                TextualMode::Any => Some((
                    Filter::Textual {
                        terms: tokenize(text),
                        all: false,
                    },
                    3,
                )),
                TextualMode::Ranked(_) => None,
            },
            Query::Spatial(SpatialQuery::Within(p)) => Some((Filter::Within(p), 4)),
            Query::Categorical {
                scheme,
                label,
                min_confidence,
            } => Some((
                Filter::Categorical {
                    scheme: *scheme,
                    label: *label,
                    min_confidence: *min_confidence,
                },
                5,
            )),
            Query::Visual {
                example,
                mode: VisualMode::Threshold(t),
                ..
            } if self
                .hybrid
                .as_ref()
                .is_some_and(|h| h.dim() == example.len()) =>
            {
                Some((
                    Filter::VisualThreshold {
                        example,
                        max_dist: *t,
                    },
                    8,
                ))
            }
            _ => None,
        }
    }

    /// Whether candidate `id` satisfies a pushed-down predicate.
    /// Exactly the membership test of the corresponding materialized
    /// leaf: doc-side lookups use the values recorded at index time,
    /// and the visual threshold reruns the same `l2_sq` kernel on the
    /// same arena row the hybrid tree would visit.
    fn filter_matches(&self, f: &Filter, id: ImageId, view: Option<&SlabView>) -> bool {
        match f {
            Filter::Temporal { field, from, to } => self.doc_of.get(&id).is_some_and(|&doc| {
                let t = match field {
                    TemporalField::Captured => self.captured_at[doc],
                    TemporalField::Uploaded => self.uploaded_at[doc],
                };
                t >= *from && t <= *to
            }),
            Filter::Textual { terms, all } => self.doc_of.get(&id).is_some_and(|&doc| {
                if *all {
                    self.text.doc_matches_all(doc, terms)
                } else {
                    self.text.doc_matches_any(doc, terms)
                }
            }),
            Filter::Categorical {
                scheme,
                label,
                min_confidence,
            } => self
                .store
                .has_annotation(id, *scheme, *label, *min_confidence),
            Filter::Range(b) => self
                .doc_of
                .get(&id)
                .is_some_and(|&doc| self.scenes[doc].intersects(b)),
            Filter::Within(p) => self.doc_of.get(&id).is_some_and(|&doc| {
                let scene = &self.scenes[doc];
                scene.intersects(&p.bbox()) && p.intersects_bbox(scene)
            }),
            Filter::VisualThreshold { example, max_dist } => self
                .rows_by_id
                .get(&id)
                .zip(view)
                .is_some_and(|(&row, v)| l2_sq(v.row(row), example) <= max_dist * max_dist),
        }
    }

    /// The score a pushed-down leaf would have reported for `id` had it
    /// been materialized: `0.0` for pure filters, the feature distance
    /// for a visual threshold.
    fn filter_score(&self, f: &Filter, id: ImageId, view: Option<&SlabView>) -> f64 {
        match f {
            Filter::VisualThreshold { example, .. } => {
                self.rows_by_id.get(&id).zip(view).map_or(0.0, |(&row, v)| {
                    f64::from(l2_sq(v.row(row), example).sqrt())
                })
            }
            _ => 0.0,
        }
    }

    /// Planner cardinality estimate for `q` over this segment — the
    /// same summary statistics the conjunction planner orders work by,
    /// exposed so the admission controller can price a query in work
    /// units before running it. A pure function of the segment's
    /// indexes: deterministic across runs, pool widths, and shard
    /// counts.
    pub fn estimated_cardinality(&self, q: &Query) -> f64 {
        self.estimate(q)
    }

    /// Estimated result cardinality of a leaf, from per-index summary
    /// statistics: temporal range width over the indexed span, term
    /// posting-list lengths, incremental annotation label counts, and
    /// query-box area against the union of indexed scene boxes. Used to
    /// pick the cheapest driver leaf of a conjunction; estimates order
    /// work, they never change results.
    fn estimate(&self, q: &Query) -> f64 {
        let n = self.docs.len() as f64;
        match q {
            Query::Temporal { field, from, to } => {
                let idx = match field {
                    TemporalField::Captured => &self.captured,
                    TemporalField::Uploaded => &self.uploaded,
                };
                match idx.span() {
                    None => 0.0,
                    Some((lo, hi)) => {
                        let span = (hi - lo) as f64 + 1.0;
                        let overlap =
                            ((*to).min(hi) as f64 - (*from).max(lo) as f64 + 1.0).max(0.0);
                        n * (overlap / span).clamp(0.0, 1.0)
                    }
                }
            }
            Query::Textual { text, mode } => {
                let terms = tokenize(text);
                match mode {
                    TextualMode::All => terms
                        .iter()
                        .map(|t| self.text.doc_frequency(t))
                        .min()
                        .unwrap_or(0) as f64,
                    TextualMode::Any => (terms
                        .iter()
                        .map(|t| self.text.doc_frequency(t))
                        .sum::<usize>() as f64)
                        .min(n),
                    TextualMode::Ranked(k) => (*k as f64).min(n),
                }
            }
            Query::Categorical { scheme, label, .. } => {
                self.store.label_count(*scheme, *label) as f64
            }
            Query::Spatial(SpatialQuery::Range(b)) => self.spatial_fraction(b) * n,
            Query::Spatial(SpatialQuery::Within(p)) => self.spatial_fraction(&p.bbox()) * n,
            Query::Spatial(SpatialQuery::Nearest { k, .. }) => (*k as f64).min(n),
            Query::Spatial(_) => n,
            Query::Visual {
                mode: VisualMode::TopK(k),
                ..
            } => (*k as f64).min(n),
            Query::Visual { .. } => n,
            Query::And(subs) => subs.iter().map(|s| self.estimate(s)).fold(n, f64::min),
            // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
            Query::Or(subs) => subs.iter().map(|s| self.estimate(s)).sum::<f64>().min(n),
        }
    }

    /// Fraction of the indexed spatial extent a query box covers
    /// (clamped to `[0, 1]`; degenerate extents count as full overlap
    /// when they intersect at all).
    fn spatial_fraction(&self, q: &BBox) -> f64 {
        match &self.extent {
            None => 0.0,
            Some(extent) => match extent.intersection(q) {
                None => 0.0,
                Some(overlap) => {
                    let total = extent.area_deg2();
                    if total <= 0.0 {
                        1.0
                    } else {
                        (overlap.area_deg2() / total).clamp(0.0, 1.0)
                    }
                }
            },
        }
    }

    /// Conjunction planner.
    ///
    /// The spatial-range + visual pattern runs on the hybrid index in
    /// one traversal, with every remaining leaf applied to the (small)
    /// visual candidate list — predicates per candidate, anything
    /// top-k-like via one sorted-id intersection.
    ///
    /// The general plan materializes only what it must: leaves with
    /// whole-corpus semantics execute on their indexes and intersect as
    /// sorted id vectors (galloping, smallest first), while every
    /// exact-membership leaf is pushed down as a per-candidate filter,
    /// cheapest first. When nothing requires materialization, the leaf
    /// with the lowest selectivity estimate is materialized as the
    /// candidate driver. Scores keep the engine's documented semantics:
    /// each surviving image reports the score of the first sub-query,
    /// output ordered by (score, id).
    fn execute_and(&self, subs: &[Query]) -> Vec<QueryResult> {
        if subs.is_empty() {
            return Vec::new();
        }
        // Hybrid fast path: exactly one spatial range + one visual leaf
        // (any extra filters applied afterwards). Validation has already
        // pinned every visual leaf to the indexed family, so counting
        // all visual leaves here is what guarantees the post-filter
        // below never drops one silently: a second visual leaf forces
        // the general plan instead.
        let ranges: Vec<&BBox> = subs
            .iter()
            .filter_map(|q| match q {
                Query::Spatial(SpatialQuery::Range(b)) => Some(b),
                _ => None,
            })
            .collect();
        let visuals: Vec<(&Vec<f32>, VisualMode)> = subs
            .iter()
            .filter_map(|q| match q {
                Query::Visual { example, mode, .. } => Some((example, *mode)),
                _ => None,
            })
            .collect();
        if ranges.len() == 1 && visuals.len() == 1 {
            let (example, mode) = visuals[0];
            let mut results = self.execute_visual(example, mode, Some(ranges[0]));
            // Stream the remaining predicates over the visual candidates.
            let rest = subs.iter().filter(|q| {
                !matches!(
                    q,
                    Query::Spatial(SpatialQuery::Range(_)) | Query::Visual { .. }
                )
            });
            let mut filters: Vec<(Filter, u32, usize)> = Vec::new();
            let mut materialize: Vec<&Query> = Vec::new();
            for (i, q) in rest.enumerate() {
                match self.pushdown(q) {
                    Some((f, cost)) => filters.push((f, cost, i)),
                    None => materialize.push(q),
                }
            }
            filters.sort_by_key(|&(_, cost, i)| (cost, i));
            for (f, _, _) in &filters {
                if results.is_empty() {
                    return results;
                }
                // No visual leaf can appear in `rest`, so no view is
                // ever needed here.
                results.retain(|r| self.filter_matches(f, r.image, None));
            }
            for q in materialize {
                if results.is_empty() {
                    return results;
                }
                let ids = plan::sorted_ids(&self.run(q));
                results.retain(|r| plan::contains_sorted(&ids, r.image));
            }
            return results;
        }

        // General plan: split into per-candidate predicates and
        // must-materialize legs.
        let mut filters: Vec<(Filter, u32, usize)> = Vec::new();
        let mut mat_idx: Vec<usize> = Vec::new();
        for (i, q) in subs.iter().enumerate() {
            match self.pushdown(q) {
                Some((f, cost)) => filters.push((f, cost, i)),
                None => mat_idx.push(i),
            }
        }
        let view = filters
            .iter()
            .any(|(f, ..)| matches!(f, Filter::VisualThreshold { .. }))
            .then(|| self.visual_view());

        let mut materialized: Vec<(usize, Vec<QueryResult>)> = mat_idx
            .into_iter()
            .map(|i| (i, self.run(&subs[i])))
            .collect();

        let mut candidates: Vec<ImageId>;
        if materialized.is_empty() {
            // Every leaf is a predicate: materialize the one with the
            // smallest estimated cardinality as the candidate driver.
            let mut driver = 0usize;
            let mut best = f64::INFINITY;
            for (pos, &(_, _, i)) in filters.iter().enumerate() {
                let est = self.estimate(&subs[i]);
                if est < best {
                    best = est;
                    driver = pos;
                }
            }
            let (_, _, driver_sub) = filters.remove(driver);
            candidates = plan::sorted_ids(&self.run(&subs[driver_sub]));
        } else {
            // Intersect actual result sets, smallest first, galloping
            // through the larger lists.
            materialized.sort_by_key(|&(i, ref r)| (r.len(), i));
            candidates = plan::sorted_ids(&materialized[0].1);
            for (_, r) in &materialized[1..] {
                if candidates.is_empty() {
                    break;
                }
                plan::intersect_sorted(&mut candidates, &plan::sorted_ids(r));
            }
        }

        // Narrow by the remaining predicates, cheapest per test first.
        filters.sort_by_key(|&(_, cost, i)| (cost, i));
        for (f, _, _) in &filters {
            if candidates.is_empty() {
                break;
            }
            candidates.retain(|&id| self.filter_matches(f, id, view.as_deref()));
        }
        if candidates.is_empty() {
            return Vec::new();
        }

        // Every survivor belongs to the first sub-query's result set;
        // its score comes from there (0.0 / distance for predicates).
        let first_scores: Option<Vec<(ImageId, f64)>> = materialized
            .iter()
            .find(|(i, _)| *i == 0)
            .map(|(_, results)| {
                let mut table: Vec<(ImageId, f64)> =
                    results.iter().map(|r| (r.image, r.score)).collect();
                table.sort_by_key(|&(id, _)| id);
                table
            });
        let first_filter = first_scores.is_none().then(|| self.pushdown(&subs[0]));
        let mut out: Vec<QueryResult> = candidates
            .into_iter()
            .map(|id| {
                let score = match (&first_scores, &first_filter) {
                    (Some(table), _) => table
                        .binary_search_by_key(&id, |&(i, _)| i)
                        .map_or(0.0, |pos| table[pos].1),
                    (None, Some(Some((f, _)))) => self.filter_score(f, id, view.as_deref()),
                    _ => 0.0,
                };
                QueryResult::new(id, score)
            })
            .collect();
        out.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.image.cmp(&b.image)));
        out
    }
}
