//! The index-backed query engine.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use tvdp_geo::BBox;
use tvdp_index::{
    InvertedIndex, LshConfig, LshIndex, OrientedRTree, RTree, TemporalIndex, VisualRTree,
};
use tvdp_kernel::Pool;
use tvdp_storage::{ImageId, VisualStore};
use tvdp_vision::FeatureKind;

use crate::types::{Query, QueryResult, SpatialQuery, TemporalField, TextualMode, VisualMode};

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Which feature family the visual indexes are built over.
    pub visual_kind: FeatureKind,
    /// LSH tuning for the approximate visual path.
    pub lsh: LshConfig,
    /// When `true` (default), visual queries run exactly on the hybrid
    /// Visual R*-tree; when `false`, top-k visual queries use the LSH
    /// candidate path (approximate, faster at scale).
    pub exact_visual: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            visual_kind: FeatureKind::Cnn,
            lsh: LshConfig::default(),
            exact_visual: true,
        }
    }
}

/// The whole-planet region used when a visual query has no spatial
/// constraint.
fn world() -> BBox {
    BBox::new(-90.0, -180.0, 90.0, 180.0)
}

/// An index-backed executor over a [`VisualStore`] snapshot.
///
/// Built once from the store; images ingested afterwards are indexed via
/// [`QueryEngine::index_image`].
pub struct QueryEngine {
    store: Arc<VisualStore>,
    config: EngineConfig,
    scene_tree: RTree<ImageId>,
    fov_tree: OrientedRTree<ImageId>,
    hybrid: Option<VisualRTree<ImageId>>,
    lsh: Option<LshIndex>,
    lsh_ids: Vec<ImageId>,
    text: InvertedIndex,
    captured: TemporalIndex,
    uploaded: TemporalIndex,
    /// Dense doc handle -> image id (text/temporal indexes).
    docs: Vec<ImageId>,
    /// Ordered set (lint rule L2): never leaks hash order into results.
    indexed: BTreeSet<ImageId>,
}

impl QueryEngine {
    /// Builds the engine, indexing every image currently in `store`.
    pub fn build(store: Arc<VisualStore>, config: EngineConfig) -> Self {
        let mut engine = Self {
            store: Arc::clone(&store),
            config,
            scene_tree: RTree::new(),
            fov_tree: OrientedRTree::new(),
            hybrid: None,
            lsh: None,
            lsh_ids: Vec::new(),
            text: InvertedIndex::new(),
            captured: TemporalIndex::new(),
            uploaded: TemporalIndex::new(),
            docs: Vec::new(),
            indexed: BTreeSet::new(),
        };
        for id in store.image_ids() {
            engine.index_image(id);
        }
        engine
    }

    /// The underlying store.
    pub fn store(&self) -> &VisualStore {
        &self.store
    }

    /// Number of indexed images.
    pub fn len(&self) -> usize {
        self.indexed.len()
    }

    /// Whether nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.indexed.is_empty()
    }

    /// Indexes one image from the store into every applicable index.
    /// Idempotent per image id; unknown ids are ignored.
    pub fn index_image(&mut self, id: ImageId) {
        if self.indexed.contains(&id) {
            return;
        }
        let Some(record) = self.store.image(id) else {
            return;
        };
        self.indexed.insert(id);
        self.scene_tree.insert(record.scene_location, id);
        if let Some(fov) = record.meta.fov {
            self.fov_tree.insert(fov, id);
        }
        let doc = self.docs.len();
        self.docs.push(id);
        self.text
            .index_document(doc, &record.meta.keywords.join(" "));
        self.captured.insert(record.meta.captured_at, doc);
        self.uploaded.insert(record.meta.uploaded_at, doc);
        if let Some(feature) = self.store.feature(id, self.config.visual_kind) {
            let dim = feature.len();
            let hybrid = self.hybrid.get_or_insert_with(|| VisualRTree::new(dim));
            hybrid.insert(record.scene_location, feature.clone(), id);
            let lsh = self
                .lsh
                .get_or_insert_with(|| LshIndex::new(dim, self.config.lsh));
            lsh.insert(feature);
            self.lsh_ids.push(id);
        }
    }

    /// Executes a query.
    ///
    /// # Panics
    ///
    /// Panics when a visual example's dimensionality does not match the
    /// indexed features (caller error).
    pub fn execute(&self, query: &Query) -> Vec<QueryResult> {
        match query {
            Query::Spatial(sq) => self.execute_spatial(sq),
            Query::Visual {
                example,
                kind,
                mode,
            } => {
                assert_eq!(
                    *kind, self.config.visual_kind,
                    "engine indexes {:?}, query uses {:?}",
                    self.config.visual_kind, kind
                );
                self.execute_visual(example, *mode, None)
            }
            Query::Categorical {
                scheme,
                label,
                min_confidence,
            } => {
                let mut ids: Vec<ImageId> = self
                    .store
                    .annotations_with_label(*scheme, *label)
                    .into_iter()
                    .filter(|a| a.confidence >= *min_confidence)
                    .map(|a| a.image)
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids.into_iter()
                    .map(|id| QueryResult::new(id, 0.0))
                    .collect()
            }
            Query::Textual { text, mode } => self.execute_textual(text, *mode),
            Query::Temporal { field, from, to } => {
                let idx = match field {
                    TemporalField::Captured => &self.captured,
                    TemporalField::Uploaded => &self.uploaded,
                };
                idx.range(*from, *to)
                    .into_iter()
                    .map(|doc| QueryResult::new(self.docs[doc], 0.0))
                    .collect()
            }
            Query::And(subs) => self.execute_and(subs),
            Query::Or(subs) => self.execute_or(subs),
        }
    }

    /// Executes a batch of independent queries, fanning them out across
    /// the given pool. Results arrive in input order and are identical to
    /// calling [`QueryEngine::execute`] per query — the engine is
    /// read-only during execution, so the queries share every index.
    pub fn execute_batch_with_pool(&self, queries: &[Query], pool: &Pool) -> Vec<Vec<QueryResult>> {
        pool.map(queries, |_, q| self.execute(q))
    }

    /// [`QueryEngine::execute_batch_with_pool`] on the global
    /// (one-worker-per-CPU) pool.
    pub fn execute_batch(&self, queries: &[Query]) -> Vec<Vec<QueryResult>> {
        self.execute_batch_with_pool(queries, Pool::global())
    }

    /// All images whose indexed feature lies within squared distance
    /// `max_dist_sq` of `example`, as `(squared_distance, id)` sorted
    /// ascending. The sqrt-free thresholding path (near-duplicate
    /// detection); no spatial constraint.
    pub fn visual_within_sq(&self, example: &[f32], max_dist_sq: f32) -> Vec<(f32, ImageId)> {
        let Some(hybrid) = &self.hybrid else {
            return Vec::new();
        };
        hybrid
            .range_visual_sq(&world(), example, max_dist_sq)
            .into_iter()
            .map(|(d_sq, id)| (d_sq, *id))
            .collect()
    }

    /// Disjunction: union of the branches, keeping each image's best
    /// (lowest) score; output ordered by score then id.
    fn execute_or(&self, subs: &[Query]) -> Vec<QueryResult> {
        let mut best: BTreeMap<ImageId, f64> = BTreeMap::new();
        for q in subs {
            for r in self.execute(q) {
                best.entry(r.image)
                    .and_modify(|s| *s = s.min(r.score))
                    .or_insert(r.score);
            }
        }
        let mut out: Vec<QueryResult> = best
            .into_iter()
            .map(|(id, s)| QueryResult::new(id, s))
            .collect();
        out.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.image.cmp(&b.image)));
        out
    }

    fn execute_spatial(&self, sq: &SpatialQuery) -> Vec<QueryResult> {
        match sq {
            SpatialQuery::Range(bbox) => self
                .scene_tree
                .range(bbox)
                .into_iter()
                .map(|id| QueryResult::new(*id, 0.0))
                .collect(),
            SpatialQuery::Nearest { point, k } => self
                .scene_tree
                .knn(point, *k)
                .into_iter()
                .map(|(d, id)| QueryResult::new(*id, d))
                .collect(),
            SpatialQuery::Within(polygon) => {
                // Index pre-filter on the polygon's bounding box, then the
                // exact polygon-rectangle test.
                self.scene_tree
                    .range(&polygon.bbox())
                    .into_iter()
                    .filter(|id| {
                        self.store
                            .image(**id)
                            .is_some_and(|record| polygon.intersects_bbox(&record.scene_location))
                    })
                    .map(|id| QueryResult::new(*id, 0.0))
                    .collect()
            }
            SpatialQuery::Covering(p) => {
                // FOV-backed visibility plus degenerate matches from
                // images without direction metadata.
                let mut ids: Vec<ImageId> = self
                    .fov_tree
                    .covering_point(p, None)
                    .into_iter()
                    .map(|(_, id)| *id)
                    .collect();
                for id in self.scene_tree.containing(p) {
                    if self.store.image(*id).is_some_and(|r| r.meta.fov.is_none()) {
                        ids.push(*id);
                    }
                }
                ids.sort_unstable();
                ids.dedup();
                ids.into_iter()
                    .map(|id| QueryResult::new(id, 0.0))
                    .collect()
            }
            SpatialQuery::Directed { region, directions } => self
                .fov_tree
                .range_directed(region, directions)
                .into_iter()
                .map(|(_, id)| QueryResult::new(*id, 0.0))
                .collect(),
        }
    }

    /// Visual query, optionally restricted to a spatial region (the
    /// hybrid spatial-visual plan).
    fn execute_visual(
        &self,
        example: &[f32],
        mode: VisualMode,
        region: Option<&BBox>,
    ) -> Vec<QueryResult> {
        let Some(hybrid) = &self.hybrid else {
            return Vec::new();
        };
        let region = region.copied().unwrap_or_else(world);
        match mode {
            VisualMode::Threshold(max_dist) => hybrid
                .range_visual(&region, example, max_dist)
                .into_iter()
                .map(|(d, id)| QueryResult::new(*id, f64::from(d)))
                .collect(),
            VisualMode::TopK(k) => {
                if self.config.exact_visual {
                    hybrid
                        .knn_visual(&region, example, k)
                        .into_iter()
                        .map(|(d, id)| QueryResult::new(*id, f64::from(d)))
                        .collect()
                } else {
                    // Approximate: LSH candidates, exact re-rank, then
                    // spatial post-filter.
                    let Some(lsh) = self.lsh.as_ref() else {
                        return Vec::new();
                    };
                    lsh.knn(example, k * 4)
                        .into_iter()
                        .map(|(d, handle)| (d, self.lsh_ids[handle]))
                        .filter(|(_, id)| {
                            self.store
                                .image(*id)
                                .is_some_and(|r| r.scene_location.intersects(&region))
                        })
                        .take(k)
                        .map(|(d, id)| QueryResult::new(id, f64::from(d)))
                        .collect()
                }
            }
        }
    }

    fn execute_textual(&self, text: &str, mode: TextualMode) -> Vec<QueryResult> {
        match mode {
            TextualMode::All => self
                .text
                .search_and(text)
                .into_iter()
                .map(|doc| QueryResult::new(self.docs[doc], 0.0))
                .collect(),
            TextualMode::Any => self
                .text
                .search_or(text)
                .into_iter()
                .map(|doc| QueryResult::new(self.docs[doc], 0.0))
                .collect(),
            TextualMode::Ranked(k) => self
                .text
                .search_ranked(text, k)
                .into_iter()
                .map(|(score, doc)| QueryResult::new(self.docs[doc], score))
                .collect(),
        }
    }

    /// Conjunction planner. The spatial-range + visual pattern runs on
    /// the hybrid index in one traversal; everything else evaluates the
    /// sub-queries independently and intersects, keeping the score of the
    /// first scored component.
    fn execute_and(&self, subs: &[Query]) -> Vec<QueryResult> {
        if subs.is_empty() {
            return Vec::new();
        }
        // Hybrid fast path: exactly one spatial range + one visual leaf
        // (any extra filters applied afterwards).
        let ranges: Vec<&BBox> = subs
            .iter()
            .filter_map(|q| match q {
                Query::Spatial(SpatialQuery::Range(b)) => Some(b),
                _ => None,
            })
            .collect();
        let visuals: Vec<(&Vec<f32>, VisualMode)> = subs
            .iter()
            .filter_map(|q| match q {
                // Only visual leaves of the indexed feature family take
                // the hybrid path; other kinds fall through to the
                // general plan (where the standalone assert fires).
                Query::Visual {
                    example,
                    kind,
                    mode,
                } if *kind == self.config.visual_kind => Some((example, *mode)),
                _ => None,
            })
            .collect();
        if ranges.len() == 1 && visuals.len() == 1 {
            let (example, mode) = visuals[0];
            let mut results = self.execute_visual(example, mode, Some(ranges[0]));
            // Apply the remaining predicates as post-filters.
            let rest: Vec<&Query> = subs
                .iter()
                .filter(|q| {
                    !matches!(
                        q,
                        Query::Spatial(SpatialQuery::Range(_)) | Query::Visual { .. }
                    )
                })
                .collect();
            if !rest.is_empty() {
                let mut allowed: Option<BTreeSet<ImageId>> = None;
                for q in rest {
                    let ids: BTreeSet<ImageId> =
                        self.execute(q).into_iter().map(|r| r.image).collect();
                    allowed = Some(match allowed {
                        None => ids,
                        Some(prev) => prev.intersection(&ids).copied().collect(),
                    });
                }
                if let Some(allowed) = allowed {
                    results.retain(|r| allowed.contains(&r.image));
                }
            }
            return results;
        }

        // General plan: evaluate all, intersect.
        let mut scored: BTreeMap<ImageId, f64> = BTreeMap::new();
        let mut allowed: Option<BTreeSet<ImageId>> = None;
        for q in subs {
            let results = self.execute(q);
            let ids: BTreeSet<ImageId> = results.iter().map(|r| r.image).collect();
            for r in &results {
                scored.entry(r.image).or_insert(r.score);
            }
            allowed = Some(match allowed {
                None => ids,
                Some(prev) => prev.intersection(&ids).copied().collect(),
            });
        }
        let mut out: Vec<QueryResult> = allowed
            .unwrap_or_default()
            .into_iter()
            .map(|id| QueryResult::new(id, scored.get(&id).copied().unwrap_or(0.0)))
            .collect();
        out.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.image.cmp(&b.image)));
        out
    }
}
