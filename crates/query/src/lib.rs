//! Query layer for the Translational Visual Data Platform.
//!
//! Exposes the five query families of the paper's access layer (Section
//! IV-C) plus hybrid combinations:
//!
//! * **Spatial** — range / k-nearest / point-coverage / direction-
//!   constrained queries over scene locations and FOVs,
//! * **Visual** — example-image similarity (top-k or threshold) over
//!   stored feature vectors,
//! * **Categorical** — annotation-label filters,
//! * **Textual** — keyword search over manual keywords,
//! * **Temporal** — capture/upload time ranges,
//! * **Hybrid** — conjunctions, with a planner that routes
//!   spatial+visual conjunctions to the hybrid Visual R*-tree instead of
//!   chaining single-modal indexes.
//!
//! [`QueryEngine`] serves queries from the indexing substrate;
//! [`linear::LinearExecutor`] is the brute-force reference the tests and
//! benchmarks compare against.

pub mod engine;
pub mod linear;
pub mod localize;
pub mod plan;
pub mod sharded;
pub mod types;

pub use engine::{EngineConfig, HybridOrdering, QuantConfig, QuantMode, QueryEngine};
pub use linear::LinearExecutor;
pub use localize::{localize, LocalizationEstimate};
pub use sharded::{ShardedEngine, DEFAULT_SEAL_CAP};
pub use types::{
    Query, QueryError, QueryResult, SpatialQuery, TemporalField, TextualMode, VisualMode,
};
