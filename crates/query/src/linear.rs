//! Brute-force reference executor.
//!
//! Evaluates the same [`Query`] language as [`crate::QueryEngine`] by
//! scanning every image. Used to verify the index-backed engine and as
//! the baseline in the index benchmarks.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

use tvdp_geo::BBox;
use tvdp_kernel::{l2_sq, TopK, TotalF32};
use tvdp_storage::{ImageId, ImageRecord, VisualStore};

use crate::types::{Query, QueryResult, SpatialQuery, TemporalField, TextualMode, VisualMode};

/// Linear-scan executor over a store.
pub struct LinearExecutor {
    store: Arc<VisualStore>,
}

impl LinearExecutor {
    /// Creates the executor.
    pub fn new(store: Arc<VisualStore>) -> Self {
        Self { store }
    }

    fn records(&self) -> Vec<ImageRecord> {
        let mut out = Vec::with_capacity(self.store.len());
        self.store.for_each_image(|r| out.push(r.clone()));
        out
    }

    /// Executes a query by scanning.
    pub fn execute(&self, query: &Query) -> Vec<QueryResult> {
        match query {
            Query::Spatial(sq) => self.spatial(sq),
            Query::Visual {
                example,
                kind,
                mode,
            } => self.visual(example, *kind, *mode, None),
            Query::Categorical {
                scheme,
                label,
                min_confidence,
            } => {
                let mut ids: Vec<ImageId> = self
                    .store
                    .annotations_with_label(*scheme, *label)
                    .into_iter()
                    .filter(|a| a.confidence >= *min_confidence)
                    .map(|a| a.image)
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids.into_iter()
                    .map(|id| QueryResult::new(id, 0.0))
                    .collect()
            }
            Query::Textual { text, mode } => self.textual(text, *mode),
            Query::Temporal { field, from, to } => self
                .records()
                .into_iter()
                .filter(|r| {
                    let t = match field {
                        TemporalField::Captured => r.meta.captured_at,
                        TemporalField::Uploaded => r.meta.uploaded_at,
                    };
                    t >= *from && t <= *to
                })
                .map(|r| QueryResult::new(r.id, 0.0))
                .collect(),
            Query::And(subs) => self.and(subs),
            Query::Or(subs) => self.or(subs),
        }
    }

    fn or(&self, subs: &[Query]) -> Vec<QueryResult> {
        let mut best: BTreeMap<ImageId, f64> = BTreeMap::new();
        for q in subs {
            for r in self.execute(q) {
                best.entry(r.image)
                    .and_modify(|s| *s = s.min(r.score))
                    .or_insert(r.score);
            }
        }
        let mut out: Vec<QueryResult> = best
            .into_iter()
            .map(|(id, s)| QueryResult::new(id, s))
            .collect();
        out.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.image.cmp(&b.image)));
        out
    }

    fn spatial(&self, sq: &SpatialQuery) -> Vec<QueryResult> {
        let records = self.records();
        match sq {
            SpatialQuery::Range(bbox) => records
                .into_iter()
                .filter(|r| r.scene_location.intersects(bbox))
                .map(|r| QueryResult::new(r.id, 0.0))
                .collect(),
            SpatialQuery::Nearest { point, k } => {
                let mut scored: Vec<(f64, ImageId)> = records
                    .into_iter()
                    .map(|r| (r.scene_location.min_distance_m(point), r.id))
                    .collect();
                scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                scored.truncate(*k);
                scored
                    .into_iter()
                    .map(|(d, id)| QueryResult::new(id, d))
                    .collect()
            }
            SpatialQuery::Within(polygon) => records
                .into_iter()
                .filter(|r| polygon.intersects_bbox(&r.scene_location))
                .map(|r| QueryResult::new(r.id, 0.0))
                .collect(),
            SpatialQuery::Covering(p) => records
                .into_iter()
                .filter(|r| match &r.meta.fov {
                    Some(fov) => fov.contains(p),
                    None => r.scene_location.contains(p),
                })
                .map(|r| QueryResult::new(r.id, 0.0))
                .collect(),
            SpatialQuery::Directed { region, directions } => records
                .into_iter()
                .filter(|r| match &r.meta.fov {
                    Some(fov) => {
                        fov.scene_location().intersects(region)
                            && fov.direction_range().overlaps(directions)
                    }
                    None => false,
                })
                .map(|r| QueryResult::new(r.id, 0.0))
                .collect(),
        }
    }

    fn visual(
        &self,
        example: &[f32],
        kind: tvdp_vision::FeatureKind,
        mode: VisualMode,
        region: Option<&BBox>,
    ) -> Vec<QueryResult> {
        // Rank and threshold on squared distances (same order, no sqrt
        // per record); take the root only for the reported scores.
        // Features are borrowed from the arena (`feature_ref`), not
        // cloned, and top-k selection goes through a bounded heap.
        let distances = self
            .records()
            .into_iter()
            .filter(|r| region.is_none_or(|b| r.scene_location.intersects(b)))
            .filter_map(|r| {
                self.store
                    .feature_ref(r.id, kind)
                    .map(|f| (l2_sq(&f, example), r.id))
            });
        let scored: Vec<(f32, ImageId)> = match mode {
            VisualMode::TopK(k) => {
                let mut top = TopK::new(k);
                top.extend(distances.map(|(d_sq, id)| (TotalF32(d_sq), id)));
                top.into_sorted_vec()
                    .into_iter()
                    .map(|(TotalF32(d_sq), id)| (d_sq, id))
                    .collect()
            }
            VisualMode::Threshold(t) => {
                let mut hits: Vec<(f32, ImageId)> =
                    distances.filter(|(d_sq, _)| *d_sq <= t * t).collect();
                hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                hits
            }
        };
        scored
            .into_iter()
            .map(|(d_sq, id)| QueryResult::new(id, f64::from(d_sq.sqrt())))
            .collect()
    }

    fn textual(&self, text: &str, mode: TextualMode) -> Vec<QueryResult> {
        let terms = tvdp_index::inverted::tokenize(text);
        let match_doc = |keywords: &[String]| -> bool {
            let toks: HashSet<String> = keywords
                .iter()
                .flat_map(|k| tvdp_index::inverted::tokenize(k))
                .collect();
            match mode {
                TextualMode::All => terms.iter().all(|t| toks.contains(t)),
                _ => terms.iter().any(|t| toks.contains(t)),
            }
        };
        match mode {
            TextualMode::Ranked(k) => {
                // Brute-force tf-idf over the whole corpus.
                let mut idx = tvdp_index::InvertedIndex::new();
                let records = self.records();
                for (doc, r) in records.iter().enumerate() {
                    idx.index_document(doc, &r.meta.keywords.join(" "));
                }
                idx.search_ranked(text, k)
                    .into_iter()
                    .map(|(s, doc)| QueryResult::new(records[doc].id, s))
                    .collect()
            }
            _ => self
                .records()
                .into_iter()
                .filter(|r| !terms.is_empty() && match_doc(&r.meta.keywords))
                .map(|r| QueryResult::new(r.id, 0.0))
                .collect(),
        }
    }

    fn and(&self, subs: &[Query]) -> Vec<QueryResult> {
        if subs.is_empty() {
            return Vec::new();
        }
        // Mirror the engine's hybrid semantics: one range + one visual
        // leaf means "visual search restricted to the region".
        let ranges: Vec<&BBox> = subs
            .iter()
            .filter_map(|q| match q {
                Query::Spatial(SpatialQuery::Range(b)) => Some(b),
                _ => None,
            })
            .collect();
        let visuals: Vec<(&Vec<f32>, tvdp_vision::FeatureKind, VisualMode)> = subs
            .iter()
            .filter_map(|q| match q {
                Query::Visual {
                    example,
                    kind,
                    mode,
                } => Some((example, *kind, *mode)),
                _ => None,
            })
            .collect();
        if ranges.len() == 1 && visuals.len() == 1 {
            let (example, kind, mode) = visuals[0];
            let mut results = self.visual(example, kind, mode, Some(ranges[0]));
            let rest: Vec<&Query> = subs
                .iter()
                .filter(|q| {
                    !matches!(
                        q,
                        Query::Spatial(SpatialQuery::Range(_)) | Query::Visual { .. }
                    )
                })
                .collect();
            if !rest.is_empty() {
                let mut allowed: Option<BTreeSet<ImageId>> = None;
                for q in rest {
                    let ids: BTreeSet<ImageId> =
                        self.execute(q).into_iter().map(|r| r.image).collect();
                    allowed = Some(match allowed {
                        None => ids,
                        Some(prev) => prev.intersection(&ids).copied().collect(),
                    });
                }
                if let Some(allowed) = allowed {
                    results.retain(|r| allowed.contains(&r.image));
                }
            }
            return results;
        }

        let mut scored: BTreeMap<ImageId, f64> = BTreeMap::new();
        let mut allowed: Option<BTreeSet<ImageId>> = None;
        for q in subs {
            let results = self.execute(q);
            let ids: BTreeSet<ImageId> = results.iter().map(|r| r.image).collect();
            for r in &results {
                scored.entry(r.image).or_insert(r.score);
            }
            allowed = Some(match allowed {
                None => ids,
                Some(prev) => prev.intersection(&ids).copied().collect(),
            });
        }
        let mut out: Vec<QueryResult> = allowed
            .unwrap_or_default()
            .into_iter()
            .map(|id| QueryResult::new(id, scored.get(&id).copied().unwrap_or(0.0)))
            .collect();
        out.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.image.cmp(&b.image)));
        out
    }
}
