//! Data-centric image scene localization (paper ref [23]).
//!
//! An image arriving *without* usable spatial metadata can still be
//! localized: find the visually most similar geo-tagged images in the
//! store and fuse their scene locations. Alfarrarjeh et al.'s
//! data-centric approach weights neighbours by visual similarity; the
//! fused estimate is the weighted geometric medoid of the committee plus
//! a bounding region covering the neighbours.

use std::sync::Arc;

use tvdp_geo::{BBox, GeoPoint};
use tvdp_storage::{ImageId, VisualStore};
use tvdp_vision::FeatureKind;

use crate::engine::QueryEngine;
use crate::types::{Query, VisualMode};

/// A scene-location estimate for an un-geo-tagged image.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizationEstimate {
    /// Robust centre of the neighbour committee: the similarity-weighted
    /// geometric medoid (the neighbour minimizing the weighted sum of
    /// distances to the others), which shrugs off minority outlier votes
    /// that would drag a plain weighted mean.
    pub center: GeoPoint,
    /// Bounding box covering the neighbours that dominate the estimate.
    pub region: BBox,
    /// Neighbours used, most similar first: `(image, feature distance)`.
    pub neighbours: Vec<(ImageId, f64)>,
    /// Heuristic confidence in `[0, 1]`: high when the neighbours agree
    /// spatially, low when they scatter.
    pub confidence: f64,
}

/// Localizes an image by its feature vector against the engine's visual
/// index. Returns `None` when fewer than two geo-tagged neighbours are
/// available.
///
/// `k` controls how many visual neighbours vote (the reference approach
/// uses a small committee; 5–15 works well).
pub fn localize(
    engine: &QueryEngine,
    store: &Arc<VisualStore>,
    features: &[f32],
    kind: FeatureKind,
    k: usize,
) -> Option<LocalizationEstimate> {
    assert!(k >= 2, "need at least two neighbours to localize");
    let results = engine.execute(&Query::Visual {
        example: features.to_vec(),
        kind,
        mode: VisualMode::TopK(k),
    });
    if results.len() < 2 {
        return None;
    }
    // Inverse-distance similarity weights.
    let mut weights = Vec::with_capacity(results.len());
    let mut neighbours = Vec::with_capacity(results.len());
    let mut points = Vec::with_capacity(results.len());
    for r in &results {
        let record = store.image(r.image)?;
        points.push(record.scene_location.center());
        weights.push(1.0 / (r.score + 1e-6));
        neighbours.push((r.image, r.score));
    }
    // Weighted geometric medoid: robust against a minority of visually
    // similar but far-away neighbours.
    let mut best = 0;
    let mut best_cost = f64::INFINITY;
    for (i, p) in points.iter().enumerate() {
        let cost: f64 = points
            .iter()
            .zip(&weights)
            .map(|(q, w)| w * p.fast_distance_m(q))
            // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
            .sum();
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }
    let center = points[best];
    let region = BBox::from_points(&points)?;
    // Confidence: how tightly the committee clusters. 150 m spread ⇒ ~0.5.
    let spread_m: f64 = points
        .iter()
        .map(|p| center.fast_distance_m(p))
        // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
        .sum::<f64>()
        / points.len() as f64;
    let confidence = 1.0 / (1.0 + spread_m / 150.0);
    Some(LocalizationEstimate {
        center,
        region,
        neighbours,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvdp_storage::{ImageMeta, ImageOrigin, UserId};

    const DIM: usize = 4;

    /// Two visual clusters at two distinct city blocks.
    fn build() -> (Arc<VisualStore>, QueryEngine) {
        let store = Arc::new(VisualStore::new());
        for i in 0..30 {
            let cluster = i % 2;
            let base = GeoPoint::new(34.0 + cluster as f64 * 0.02, -118.3);
            let gps = base.destination((i * 37 % 360) as f64, 30.0);
            let meta = ImageMeta {
                uploader: UserId(0),
                gps,
                fov: None,
                captured_at: i as i64,
                uploaded_at: i as i64 + 1,
                keywords: vec![],
            };
            let id = store.add_image(meta, ImageOrigin::Original, None).unwrap();
            let f: Vec<f32> = (0..DIM)
                .map(|d| cluster as f32 * 3.0 + (d as f32) * 0.01 + (i as f32) * 1e-3)
                .collect();
            store.put_feature(id, FeatureKind::Cnn, f).unwrap();
        }
        let engine = QueryEngine::build(Arc::clone(&store), Default::default());
        (store, engine)
    }

    #[test]
    fn localizes_to_the_matching_cluster() {
        let (store, engine) = build();
        // A query that looks like cluster 1.
        let probe: Vec<f32> = (0..DIM).map(|d| 3.0 + d as f32 * 0.01).collect();
        let est = localize(&engine, &store, &probe, FeatureKind::Cnn, 8).unwrap();
        // Cluster 1 sits at lat 34.02.
        assert!(
            (est.center.lat - 34.02).abs() < 0.005,
            "estimate landed at {:?}",
            est.center
        );
        assert!(est.region.contains(&est.center));
        assert_eq!(est.neighbours.len(), 8);
        assert!(
            est.confidence > 0.5,
            "tight cluster should be confident: {}",
            est.confidence
        );
        // Neighbours sorted by similarity.
        for w in est.neighbours.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn scattered_neighbours_lower_confidence() {
        let (store, engine) = build();
        // Asking for every stored image as a neighbour forces votes from
        // both blocks ~2 km apart.
        let probe: Vec<f32> = (0..DIM).map(|_| 1.5).collect();
        let est = localize(&engine, &store, &probe, FeatureKind::Cnn, 30).unwrap();
        let tight: Vec<f32> = (0..DIM).map(|d| 3.0 + d as f32 * 0.01).collect();
        let tight_est = localize(&engine, &store, &tight, FeatureKind::Cnn, 8).unwrap();
        assert!(
            est.confidence < tight_est.confidence,
            "scattered {} !< tight {}",
            est.confidence,
            tight_est.confidence
        );
    }

    #[test]
    fn empty_store_returns_none() {
        let store = Arc::new(VisualStore::new());
        let engine = QueryEngine::build(Arc::clone(&store), Default::default());
        assert!(localize(&engine, &store, &[0.0; DIM], FeatureKind::Cnn, 5).is_none());
    }
}
