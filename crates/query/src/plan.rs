//! Streaming set primitives for the conjunction planner.
//!
//! The planner carries conjunction candidates as a single sorted
//! `Vec<ImageId>` and narrows it in place. Intersection with another
//! sorted id list uses *galloping* (exponential probe + binary search)
//! so the cost is `O(|small| · log |large|)` rather than the
//! `O(|a| + |b|)` of a merge or the allocation churn of `BTreeSet`
//! intersection — exactly the regime hybrid queries live in, where a
//! selective leaf yields few candidates and the other legs are broad.

use tvdp_storage::ImageId;

use crate::types::QueryResult;

/// Per-leaf statistics the exact top-k planner inspects when choosing
/// between the hybrid-index traversal and the quantized flat scan.
#[derive(Debug, Clone, Copy)]
pub struct VisualLeafStats {
    /// Visually indexed entries in the segment.
    pub entries: usize,
    /// Estimated entries surviving the spatial predicate (from the
    /// engine's extent-overlap selectivity model).
    pub est_candidates: f64,
    /// Feature dimensionality.
    pub dim: usize,
    /// Fraction of entries with trained `u8` codes (frozen chunks).
    pub quant_coverage: f64,
    /// Re-rank width already clamped to `max(rerank_depth, k)`.
    pub rerank_depth: usize,
}

/// Whether the quantized flat scan is expected to beat the hybrid-index
/// traversal for one exact top-k leaf.
///
/// Cost model in bytes touched: the quantized scan reads every entry's
/// codes (`dim` bytes each, plus ~16 bytes of per-entry bookkeeping)
/// and re-ranks `rerank_depth` full `f32` rows; the tree traversal
/// reads roughly one full `f32` row plus ~64 bytes of node structure
/// per *surviving* candidate. A broad spatial predicate therefore
/// favors the scan (4x less bandwidth per entry), while a sharp one
/// favors the tree (it never visits pruned entries at all). Low code
/// coverage disqualifies the scan: uncoded rows fall back to full
/// `f32` reads, eroding the bandwidth win.
pub fn quantized_scan_wins(stats: &VisualLeafStats) -> bool {
    if stats.entries == 0 || stats.quant_coverage < 0.5 {
        return false;
    }
    let dim = stats.dim as f64;
    let scan_cost = stats.entries as f64 * (dim + 16.0) + stats.rerank_depth as f64 * 4.0 * dim;
    let tree_cost = stats.est_candidates * (4.0 * dim + 64.0);
    scan_cost < tree_cost
}

/// The ids of `results`, sorted ascending. Result rows never repeat an
/// image (every executor dedups per leaf), so no `dedup` pass is
/// needed.
pub(crate) fn sorted_ids(results: &[QueryResult]) -> Vec<ImageId> {
    let mut ids: Vec<ImageId> = results.iter().map(|r| r.image).collect();
    ids.sort_unstable();
    ids
}

/// Narrows sorted `cands` to the elements also present in sorted
/// `other`, galloping through `other` with a cursor that only moves
/// forward.
pub(crate) fn intersect_sorted(cands: &mut Vec<ImageId>, other: &[ImageId]) {
    let mut cursor = 0usize;
    cands.retain(|&id| {
        if cursor >= other.len() {
            return false;
        }
        if other[cursor] < id {
            // Exponential probe: double the step until we overshoot,
            // then binary-search the last uncovered window.
            // Invariant: other[lo] < id.
            let mut step = 1usize;
            let mut lo = cursor;
            loop {
                let probe = lo.saturating_add(step).min(other.len());
                if probe == other.len() || other[probe - 1] >= id {
                    // First element >= id (if any) lies in (lo, probe).
                    cursor = lo + 1 + other[lo + 1..probe].partition_point(|&x| x < id);
                    break;
                }
                lo = probe - 1;
                step <<= 1;
            }
        }
        cursor < other.len() && other[cursor] == id
    });
}

/// Binary membership test in a sorted id list (for candidate streams
/// that must keep a non-id order, e.g. distance-ranked visual results).
pub(crate) fn contains_sorted(sorted: &[ImageId], id: ImageId) -> bool {
    sorted.binary_search(&id).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u64]) -> Vec<ImageId> {
        raw.iter().map(|&v| ImageId(v)).collect()
    }

    #[test]
    fn intersect_matches_naive_on_random_sets() {
        // Deterministic LCG-driven random sorted sets of varied shapes.
        let mut state = 0x9e37_79b9u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for trial in 0..200 {
            let na = (next(60) + 1) as usize;
            let nb = (next(600) + 1) as usize;
            let mut a: Vec<u64> = (0..na).map(|_| next(500)).collect();
            let mut b: Vec<u64> = (0..nb).map(|_| next(500)).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let expected: Vec<ImageId> = a
                .iter()
                .filter(|x| b.binary_search(x).is_ok())
                .map(|&v| ImageId(v))
                .collect();
            let mut got = ids(&a);
            intersect_sorted(&mut got, &ids(&b));
            assert_eq!(got, expected, "trial {trial} a={a:?} b={b:?}");
        }
    }

    #[test]
    fn intersect_edge_cases() {
        let mut empty = ids(&[]);
        intersect_sorted(&mut empty, &ids(&[1, 2, 3]));
        assert!(empty.is_empty());

        let mut full = ids(&[1, 2, 3]);
        intersect_sorted(&mut full, &ids(&[]));
        assert!(full.is_empty());

        let mut same = ids(&[1, 5, 9]);
        intersect_sorted(&mut same, &ids(&[1, 5, 9]));
        assert_eq!(same, ids(&[1, 5, 9]));

        // `other` far larger than the candidate list: galloping must
        // skip across the gaps.
        let big: Vec<u64> = (0..10_000).map(|i| i * 2).collect();
        let mut cands = ids(&[0, 3, 4444, 19_998, 20_001]);
        intersect_sorted(&mut cands, &ids(&big));
        assert_eq!(cands, ids(&[0, 4444, 19_998]));

        // Candidate beyond the end of `other`.
        let mut tail = ids(&[7, 50]);
        intersect_sorted(&mut tail, &ids(&[1, 7]));
        assert_eq!(tail, ids(&[7]));
    }

    #[test]
    fn contains_sorted_is_membership() {
        let set = ids(&[2, 4, 8]);
        assert!(contains_sorted(&set, ImageId(4)));
        assert!(!contains_sorted(&set, ImageId(5)));
        assert!(!contains_sorted(&set, ImageId(9)));
    }
}
