//! Sharded scatter/gather execution with lock-free snapshot reads.
//!
//! A [`ShardedEngine`] partitions the corpus across N *shards*, each
//! backed by its own [`VisualStore`] (and therefore its own feature
//! arena). Inside a shard, indexed images live in two places:
//!
//! * **sealed segments** — immutable [`QueryEngine`]s built over a
//!   fixed id set ([`QueryEngine::build_over`]), and
//! * a **tail** — the ids ingested since the last seal, evaluated by
//!   a small linear executor with bit-identical scoring.
//!
//! Every mutation republishes the shard's `(segments, tail)` pair as an
//! immutable *generation* through a [`GenCell`], so queries never block
//! on ingest: a query loads each shard's current generation exactly
//! once up front (one consistent snapshot for the whole tree) and runs
//! against frozen state while writers keep appending behind it.
//!
//! Queries **scatter** over every segment and tail — fanned out on a
//! [`tvdp_kernel::Pool`] — and **gather** with deterministic merges:
//!
//! * score-0 filter leaves concatenate and sort by image id (shards
//!   partition the id space, so no dedup is needed),
//! * top-k leaves (visual top-k, spatial nearest) take per-partition
//!   top-k lists and re-rank globally by `(score, id)`,
//! * ranked text runs in two phases: gather corpus-global document
//!   frequencies first, then score each partition against the global
//!   statistics ([`tvdp_index::ranked_term_contribution`] is a pure
//!   function of those numbers, so the floats are bit-identical to one
//!   big index),
//! * conjunctions keep the planner's hybrid fast path — one spatial
//!   range plus one visual leaf scatters as a single restricted index
//!   traversal per segment.
//!
//! Merge order never depends on shard count or worker count: the same
//! corpus sharded 1 way or N ways, queried on 1 thread or M, yields
//! byte-identical results (the approximate LSH path is the documented
//! exception — it is thread-invariant but not shard-count-invariant,
//! since each segment hashes its own candidate set).

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parking_lot::Mutex;
use tvdp_geo::BBox;
use tvdp_index::inverted::{ranked_term_contribution, tokenize};
use tvdp_kernel::{l2_sq, GenCell, Pool, TopK, TotalF64};
use tvdp_storage::{ImageId, ImageRecord, VisualStore};

use crate::engine::{EngineConfig, QueryEngine};
use crate::types::{
    Query, QueryError, QueryResult, SpatialQuery, TemporalField, TextualMode, VisualMode,
};

/// Default number of pending images a shard accumulates before sealing
/// them into an immutable segment. The cap trades the two read costs
/// against each other: tail rows are scanned linearly by every query,
/// sealed segments answer through log-scale indexes — so a smaller cap
/// bounds the linear part tighter at the price of more segments per
/// scatter. 128 sits at the measured knee for mixed workloads.
pub const DEFAULT_SEAL_CAP: usize = 128;

/// One shard's published generation: sealed segments plus the pending
/// tail. Immutable from the moment it is stored in the shard's
/// [`GenCell`].
#[derive(Default)]
struct ShardGen {
    segments: Vec<Arc<QueryEngine>>,
    tail: Arc<Vec<ImageId>>,
}

/// Writer-side state, guarded by the shard's ingest mutex. Only
/// same-shard writers contend on it; readers go through the published
/// generation and never touch this lock.
#[derive(Default)]
struct WriterState {
    segments: Vec<Arc<QueryEngine>>,
    /// Pending ids, kept sorted ascending so segment document order
    /// (and therefore ranked-text tie-breaking) is id order regardless
    /// of ingest interleaving.
    pending: Vec<ImageId>,
    /// Everything ever indexed into this shard (idempotency guard).
    indexed: BTreeSet<ImageId>,
}

struct Shard {
    store: Arc<VisualStore>,
    writer: Mutex<WriterState>,
    published: GenCell<ShardGen>,
}

/// A per-query snapshot: every shard's store and generation, loaded
/// once so the whole query tree sees one consistent corpus.
struct Snapshot {
    shards: Vec<ShardView>,
}

struct ShardView {
    store: Arc<VisualStore>,
    gen: Arc<ShardGen>,
}

/// A unit of scatter work: one sealed segment, or one shard's tail.
enum Unit<'a> {
    Seg(&'a QueryEngine),
    Tail(&'a ShardView),
}

impl Unit<'_> {
    /// Rows a scan of this unit touches — the input to the modeled
    /// per-unit cost.
    fn rows(&self) -> usize {
        match self {
            Unit::Seg(engine) => engine.len(),
            Unit::Tail(sv) => sv.gen.tail.len(),
        }
    }
}

/// Modeled virtual cost of scanning one scatter unit, in
/// virtual-clock milliseconds: a fixed dispatch charge plus a
/// per-row term. The constants only shape *when* a deadline trips,
/// never result bytes, but they must stay a pure function of the
/// unit so expiry decisions are identical across pool widths.
fn unit_cost_ms(rows: usize) -> i64 {
    1 + (rows as i64) / 4096
}

/// Virtual-clock deadline accounting for one query execution.
///
/// All charging happens on the coordinating thread, in the
/// deterministic unit order of [`units_of`], *before* any real pool
/// work is dispatched — so whether a query trips its deadline is a
/// pure function of `(snapshot, query, now, deadline)`, byte-identical
/// across pool widths.
struct DeadlineCtx {
    deadline_ms: i64,
    clock_ms: Cell<i64>,
}

impl DeadlineCtx {
    fn charge(&self, cost_ms: i64) {
        self.clock_ms.set(self.clock_ms.get() + cost_ms);
    }

    /// Errors once the modeled clock has passed the deadline.
    fn check(&self) -> Result<(), QueryError> {
        if self.clock_ms.get() > self.deadline_ms {
            Err(QueryError::DeadlineExceeded {
                deadline_ms: self.deadline_ms,
                now_ms: self.clock_ms.get(),
            })
        } else {
            Ok(())
        }
    }

    /// Charges every unit of an upcoming scatter, checking at each
    /// segment-scan boundary, so an over-deadline scatter aborts
    /// before any pool time is burned.
    fn walk_units(&self, units: &[Unit<'_>]) -> Result<(), QueryError> {
        for unit in units {
            self.charge(unit_cost_ms(unit.rows()));
            self.check()?;
        }
        Ok(())
    }
}

/// Scatter/gather query executor over spatially sharded stores.
///
/// Readers are lock-free: [`ShardedEngine::try_execute`] loads each
/// shard's published generation (an `Arc` clone) and never blocks on
/// concurrent [`ShardedEngine::index_image`] calls. Writers contend
/// only with writers of the same shard.
pub struct ShardedEngine {
    shards: Vec<Shard>,
    config: EngineConfig,
    seal_cap: usize,
}

impl ShardedEngine {
    /// Builds a sharded engine over the given stores (one shard per
    /// store), indexing every image currently present, with the
    /// default segment seal threshold.
    ///
    /// # Panics
    ///
    /// Panics when `stores` is empty.
    pub fn build(stores: Vec<Arc<VisualStore>>, config: EngineConfig) -> Self {
        Self::with_seal_cap(stores, config, DEFAULT_SEAL_CAP)
    }

    /// [`ShardedEngine::build`] with an explicit seal threshold
    /// (clamped to at least 1). Small caps seal aggressively — useful
    /// in tests to force multi-segment shards.
    ///
    /// # Panics
    ///
    /// Panics when `stores` is empty.
    pub fn with_seal_cap(
        stores: Vec<Arc<VisualStore>>,
        config: EngineConfig,
        seal_cap: usize,
    ) -> Self {
        assert!(
            !stores.is_empty(),
            "a sharded engine needs at least one shard"
        );
        let shards = stores
            .into_iter()
            .map(|store| Shard {
                store,
                writer: Mutex::new(WriterState::default()),
                published: GenCell::new(Arc::new(ShardGen::default())),
            })
            .collect();
        let engine = Self {
            shards,
            config,
            seal_cap: seal_cap.max(1),
        };
        for shard in 0..engine.shards.len() {
            for id in engine.shards[shard].store.image_ids() {
                engine.index_image(shard, id);
            }
        }
        engine
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total indexed images across all published generations.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let g = s.published.load();
                g.segments.iter().map(|e| e.len()).sum::<usize>() + g.tail.len()
            })
            .sum()
    }

    /// Whether nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indexes one image of `shard`'s store, publishing a new
    /// generation. Idempotent per id; ids absent from the shard's store
    /// are ignored. When the pending tail reaches the seal threshold it
    /// is frozen into an immutable segment first.
    ///
    /// Concurrent callers targeting *different* shards do not contend;
    /// in-flight queries keep the generation they loaded.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn index_image(&self, shard: usize, id: ImageId) {
        let s = &self.shards[shard];
        if s.store.image(id).is_none() {
            return;
        }
        let mut w = s.writer.lock();
        if !w.indexed.insert(id) {
            return;
        }
        let pos = w.pending.partition_point(|&p| p < id);
        w.pending.insert(pos, id);
        if w.pending.len() >= self.seal_cap {
            let segment = Arc::new(QueryEngine::build_over(
                Arc::clone(&s.store),
                self.config.clone(),
                &w.pending,
            ));
            w.segments.push(segment);
            w.pending.clear();
        }
        s.published.store(Arc::new(ShardGen {
            segments: w.segments.clone(),
            tail: Arc::new(w.pending.clone()),
        }));
    }

    /// Validates a query tree against the sharded configuration
    /// (mirrors [`QueryEngine::try_execute`]'s checks).
    fn validate(&self, query: &Query) -> Result<(), QueryError> {
        match query {
            Query::Visual { kind, .. } if *kind != self.config.visual_kind => {
                Err(QueryError::KindMismatch {
                    indexed: self.config.visual_kind,
                    queried: *kind,
                })
            }
            Query::Spatial(SpatialQuery::Range(region))
            | Query::Spatial(SpatialQuery::Directed { region, .. }) => {
                region.validate().map_err(QueryError::Geo)
            }
            Query::And(subs) | Query::Or(subs) => subs.iter().try_for_each(|q| self.validate(q)),
            _ => Ok(()),
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            shards: self
                .shards
                .iter()
                .map(|s| ShardView {
                    store: Arc::clone(&s.store),
                    gen: s.published.load(),
                })
                .collect(),
        }
    }

    /// Executes a query: scatter across every shard's published
    /// generation on the global pool, gather deterministically. A
    /// visual leaf naming a feature family other than the indexed one
    /// is rejected with [`QueryError::KindMismatch`].
    pub fn try_execute(&self, query: &Query) -> Result<Vec<QueryResult>, QueryError> {
        self.try_execute_with_pool(query, Pool::global())
    }

    /// [`ShardedEngine::try_execute`] scattering on the given pool.
    pub fn try_execute_with_pool(
        &self,
        query: &Query,
        pool: &Pool,
    ) -> Result<Vec<QueryResult>, QueryError> {
        self.validate(query)?;
        let snap = self.snapshot();
        self.run_on(&snap, query, pool, None)
    }

    /// [`ShardedEngine::try_execute_with_pool`] under a virtual-clock
    /// deadline: execution is charged against a modeled clock starting
    /// at `now_ms`, checked at scatter/gather and segment-scan
    /// boundaries, and aborted with [`QueryError::DeadlineExceeded`]
    /// once the clock passes `deadline_ms`. The trip decision is a pure
    /// function of the snapshot and the query — identical across pool
    /// widths — and a query that completes returns exactly the bytes
    /// the undeadlined path would.
    pub fn try_execute_with_deadline(
        &self,
        query: &Query,
        pool: &Pool,
        now_ms: i64,
        deadline_ms: i64,
    ) -> Result<Vec<QueryResult>, QueryError> {
        self.validate(query)?;
        let snap = self.snapshot();
        let dl = DeadlineCtx {
            deadline_ms,
            clock_ms: Cell::new(now_ms),
        };
        self.run_on(&snap, query, pool, Some(&dl))
    }

    /// Prices `query` in admission work units against the current
    /// published generations: one unit per scatter unit dispatched,
    /// plus the planner's estimated per-segment result cardinality and
    /// the tail rows a linear scan must touch. Deterministic — a pure
    /// function of the published snapshot — and read-only.
    pub fn estimate_query_units(&self, query: &Query) -> u64 {
        let snap = self.snapshot();
        let mut units = 1u64;
        for sv in &snap.shards {
            for seg in &sv.gen.segments {
                let est = seg.estimated_cardinality(query);
                units += 1 + est.max(0.0).min(seg.len() as f64) as u64;
            }
            units += sv.gen.tail.len() as u64;
        }
        units
    }

    /// Executes a batch of independent queries, fanning the *queries*
    /// out across the pool (each query then scatters serially, bounding
    /// total thread count). All queries see one snapshot; results are
    /// in input order and identical to per-query execution.
    pub fn try_execute_batch_with_pool(
        &self,
        queries: &[Query],
        pool: &Pool,
    ) -> Result<Vec<Vec<QueryResult>>, QueryError> {
        for q in queries {
            self.validate(q)?;
        }
        let snap = self.snapshot();
        pool.map(queries, |_, q| {
            let serial = Pool::serial();
            self.run_on(&snap, q, &serial, None)
        })
        .into_iter()
        .collect()
    }

    /// All images within squared feature distance `max_dist_sq` of
    /// `example`, as `(squared_distance, id)` sorted ascending — the
    /// sharded counterpart of [`QueryEngine::visual_within_sq`].
    pub fn visual_within_sq(&self, example: &[f32], max_dist_sq: f32) -> Vec<(f32, ImageId)> {
        let snap = self.snapshot();
        let kind = self.config.visual_kind;
        let mut out: Vec<(f32, ImageId)> = Vec::new();
        for sv in &snap.shards {
            for seg in &sv.gen.segments {
                out.extend(seg.visual_within_sq(example, max_dist_sq));
            }
            for &id in sv.gen.tail.iter() {
                if let Some(feature) = sv.store.feature_ref(id, kind) {
                    let d_sq = l2_sq(&feature, example);
                    if d_sq <= max_dist_sq {
                        out.push((d_sq, id));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// Post-validation dispatch over one snapshot. `dl` carries the
    /// optional deadline accounting; `None` never errors.
    fn run_on(
        &self,
        snap: &Snapshot,
        query: &Query,
        pool: &Pool,
        dl: Option<&DeadlineCtx>,
    ) -> Result<Vec<QueryResult>, QueryError> {
        if let Some(dl) = dl {
            dl.check()?;
        }
        match query {
            Query::And(subs) => self.and_on(snap, subs, pool, dl),
            Query::Or(subs) => self.or_on(snap, subs, pool, dl),
            Query::Categorical {
                scheme,
                label,
                min_confidence,
            } => {
                if let Some(dl) = dl {
                    // One dispatch charge per shard-store scan.
                    dl.charge(snap.shards.len() as i64);
                    dl.check()?;
                }
                // Annotations are store-level state, not index state:
                // scan each shard's store directly (segments must never
                // see a categorical leaf — each would report the whole
                // shard).
                let mut ids: Vec<ImageId> = snap
                    .shards
                    .iter()
                    .flat_map(|sv| {
                        sv.store
                            .annotations_with_label(*scheme, *label)
                            .into_iter()
                            .filter(|a| a.confidence >= *min_confidence)
                            .map(|a| a.image)
                    })
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                Ok(ids
                    .into_iter()
                    .map(|id| QueryResult::new(id, 0.0))
                    .collect())
            }
            Query::Textual {
                text,
                mode: TextualMode::Ranked(k),
            } => self.ranked_on(snap, text, *k, pool, dl),
            leaf => self.scatter_leaf(snap, leaf, pool, dl),
        }
    }

    /// Scatters a single-modal leaf over every segment and tail, then
    /// merges with the leaf's deterministic gather rule.
    fn scatter_leaf(
        &self,
        snap: &Snapshot,
        leaf: &Query,
        pool: &Pool,
        dl: Option<&DeadlineCtx>,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let units = units_of(snap);
        if let Some(dl) = dl {
            dl.walk_units(&units)?;
        }
        let partials = pool.map(&units, |_, unit| match unit {
            Unit::Seg(engine) => engine.run(leaf),
            Unit::Tail(sv) => self.tail_leaf(sv, leaf),
        });
        let mut all: Vec<QueryResult> = partials.into_iter().flatten().collect();
        match leaf {
            Query::Spatial(SpatialQuery::Nearest { k, .. }) => {
                sort_ranked(&mut all);
                all.truncate(*k);
            }
            Query::Visual {
                mode: VisualMode::TopK(k),
                ..
            } => {
                sort_ranked(&mut all);
                all.truncate(*k);
            }
            Query::Visual {
                mode: VisualMode::Threshold(_),
                ..
            } => sort_ranked(&mut all),
            // Score-0 filters: partitions are disjoint, so the union is
            // just a sort by id.
            _ => all.sort_by_key(|r| r.image),
        }
        Ok(all)
    }

    /// Evaluates a single-modal leaf over one shard's pending tail with
    /// the reference (linear-scan) semantics — bit-identical scores to
    /// the indexed paths. Each arm is a single pass over the tail under
    /// one store read-lock acquisition; records are visited by
    /// reference, never cloned (queries hit every pending row, so this
    /// is the hot loop that keeps tail reads O(rows) instead of
    /// O(rows × record size)).
    fn tail_leaf(&self, sv: &ShardView, leaf: &Query) -> Vec<QueryResult> {
        let mut out = Vec::new();
        match leaf {
            Query::Temporal { field, from, to } => with_tail(sv, |r| {
                let t = match field {
                    TemporalField::Captured => r.meta.captured_at,
                    TemporalField::Uploaded => r.meta.uploaded_at,
                };
                if t >= *from && t <= *to {
                    out.push(QueryResult::new(r.id, 0.0));
                }
            }),
            Query::Textual { text, mode } => {
                let terms = tokenize(text);
                if terms.is_empty() {
                    return out;
                }
                with_tail(sv, |r| {
                    let has = |term: &String| {
                        r.meta
                            .keywords
                            .iter()
                            .any(|k| tokens_of(k).any(|t| token_eq(t, term)))
                    };
                    let hit = match mode {
                        TextualMode::All => terms.iter().all(has),
                        _ => terms.iter().any(has),
                    };
                    if hit {
                        out.push(QueryResult::new(r.id, 0.0));
                    }
                });
            }
            Query::Spatial(sq) => match sq {
                SpatialQuery::Range(bbox) => with_tail(sv, |r| {
                    if r.scene_location.intersects(bbox) {
                        out.push(QueryResult::new(r.id, 0.0));
                    }
                }),
                SpatialQuery::Nearest { point, k } => {
                    let mut scored: Vec<(f64, ImageId)> = Vec::new();
                    with_tail(sv, |r| {
                        scored.push((r.scene_location.min_distance_m(point), r.id));
                    });
                    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    scored.truncate(*k);
                    out.extend(scored.into_iter().map(|(d, id)| QueryResult::new(id, d)));
                }
                SpatialQuery::Within(polygon) => with_tail(sv, |r| {
                    if polygon.intersects_bbox(&r.scene_location) {
                        out.push(QueryResult::new(r.id, 0.0));
                    }
                }),
                SpatialQuery::Covering(p) => with_tail(sv, |r| {
                    let hit = match &r.meta.fov {
                        Some(fov) => fov.contains(p),
                        None => r.scene_location.contains(p),
                    };
                    if hit {
                        out.push(QueryResult::new(r.id, 0.0));
                    }
                }),
                SpatialQuery::Directed { region, directions } => with_tail(sv, |r| {
                    let hit = match &r.meta.fov {
                        Some(fov) => {
                            fov.scene_location().intersects(region)
                                && fov.direction_range().overlaps(directions)
                        }
                        None => false,
                    };
                    if hit {
                        out.push(QueryResult::new(r.id, 0.0));
                    }
                }),
            },
            Query::Visual { example, mode, .. } => {
                out = self.tail_visual(sv, example, *mode, None);
            }
            // And/Or/Categorical/Ranked are handled before scatter.
            _ => {}
        }
        out
    }

    /// Visual scan of a tail, optionally region-restricted: one pass
    /// over `(record, feature)` pairs under a single store read-lock
    /// acquisition, features read in place from the arena. Squared
    /// distances for ranking and thresholding, square roots only for
    /// reported scores — exactly the reference executor's arithmetic.
    fn tail_visual(
        &self,
        sv: &ShardView,
        example: &[f32],
        mode: VisualMode,
        region: Option<&BBox>,
    ) -> Vec<QueryResult> {
        let kind = self.config.visual_kind;
        let scored: Vec<(f32, ImageId)> = match mode {
            VisualMode::TopK(k) => {
                let mut top = TopK::new(k);
                sv.store.with_image_features(&sv.gen.tail, kind, |r, f| {
                    if region.is_none_or(|b| r.scene_location.intersects(b)) {
                        top.push((tvdp_kernel::TotalF32(l2_sq(f, example)), r.id));
                    }
                });
                top.into_sorted_vec()
                    .into_iter()
                    .map(|(tvdp_kernel::TotalF32(d_sq), id)| (d_sq, id))
                    .collect()
            }
            VisualMode::Threshold(t) => {
                let mut hits: Vec<(f32, ImageId)> = Vec::new();
                sv.store.with_image_features(&sv.gen.tail, kind, |r, f| {
                    if region.is_none_or(|b| r.scene_location.intersects(b)) {
                        let d_sq = l2_sq(f, example);
                        if d_sq <= t * t {
                            hits.push((d_sq, r.id));
                        }
                    }
                });
                hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                hits
            }
        };
        scored
            .into_iter()
            .map(|(d_sq, id)| QueryResult::new(id, f64::from(d_sq.sqrt())))
            .collect()
    }

    /// Two-phase distributed tf-idf. Phase 1 gathers corpus-global
    /// statistics (total document count, per-term document
    /// frequencies); phase 2 scores every partition against those
    /// numbers, so each document's score is bit-identical to a single
    /// index over the whole corpus. Gather re-ranks by
    /// `(descending score, ascending id)` and truncates to `k`.
    fn ranked_on(
        &self,
        snap: &Snapshot,
        text: &str,
        k: usize,
        pool: &Pool,
        dl: Option<&DeadlineCtx>,
    ) -> Result<Vec<QueryResult>, QueryError> {
        if let Some(dl) = dl {
            // Both phases walk every unit; charge the full scatter up
            // front so an over-deadline ranked query aborts before the
            // statistics gather starts.
            dl.walk_units(&units_of(snap))?;
        }
        let terms = tokenize(text);
        /// One tail row's ranked-text statistics: `tf[i]` is the term
        /// frequency of `terms[i]` (duplicate query terms get duplicate
        /// slots, same as the reference scorer's term loop).
        struct TailDoc {
            id: ImageId,
            tf: Vec<u32>,
            len: u32,
        }
        let mut tail_docs: Vec<TailDoc> = Vec::new();
        for sv in &snap.shards {
            with_tail(sv, |r| {
                let mut len = 0u32;
                let mut tf = vec![0u32; terms.len()];
                for k in &r.meta.keywords {
                    for tok in tokens_of(k) {
                        len += 1;
                        for (i, term) in terms.iter().enumerate() {
                            if token_eq(tok, term) {
                                tf[i] += 1;
                            }
                        }
                    }
                }
                tail_docs.push(TailDoc { id: r.id, tf, len });
            });
        }
        let n_total: usize = snap
            .shards
            .iter()
            .map(|sv| sv.gen.segments.iter().map(|e| e.len()).sum::<usize>())
            .sum::<usize>()
            + tail_docs.len();
        let mut df: BTreeMap<String, usize> = BTreeMap::new();
        for (i, term) in terms.iter().enumerate() {
            if df.contains_key(term) {
                continue;
            }
            let mut n = 0usize;
            for sv in &snap.shards {
                for seg in &sv.gen.segments {
                    n += seg.term_df(term);
                }
            }
            n += tail_docs.iter().filter(|d| d.tf[i] > 0).count();
            df.insert(term.clone(), n);
        }
        if let Some(dl) = dl {
            // Gather boundary between the statistics and scoring phases.
            dl.check()?;
        }

        let segments: Vec<&QueryEngine> = snap
            .shards
            .iter()
            .flat_map(|sv| sv.gen.segments.iter().map(|a| &**a))
            .collect();
        let mut candidates: Vec<(f64, ImageId)> = pool
            .map(&segments, |_, seg| {
                seg.ranked_with_stats(text, k, n_total, &df)
            })
            .into_iter()
            .flatten()
            .collect();
        for doc in &tail_docs {
            let mut score = 0.0f64;
            let mut matched = false;
            // Accumulate in query-term order (duplicates included),
            // matching the reference index's float summation order.
            for (i, term) in terms.iter().enumerate() {
                let tf = doc.tf[i];
                if tf == 0 {
                    continue;
                }
                matched = true;
                // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
                score += ranked_term_contribution(tf, doc.len, n_total, df[term]);
            }
            if matched {
                candidates.push((score, doc.id));
            }
        }

        let mut top = TopK::new(k);
        top.extend(
            candidates
                .into_iter()
                .map(|(s, id)| (Reverse(TotalF64(s)), id)),
        );
        Ok(top
            .into_sorted_vec()
            .into_iter()
            .map(|(Reverse(TotalF64(s)), id)| QueryResult::new(id, s))
            .collect())
    }

    /// Disjunction: union keeping each image's best (lowest) score,
    /// ordered by `(score, id)` — the engine's documented semantics.
    fn or_on(
        &self,
        snap: &Snapshot,
        subs: &[Query],
        pool: &Pool,
        dl: Option<&DeadlineCtx>,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let mut pairs: Vec<(ImageId, f64)> = Vec::new();
        for q in subs {
            pairs.extend(
                self.run_on(snap, q, pool, dl)?
                    .into_iter()
                    .map(|r| (r.image, r.score)),
            );
        }
        pairs.sort_by_key(|&(id, _)| id);
        let mut out: Vec<QueryResult> = Vec::new();
        for (id, s) in pairs {
            match out.last_mut() {
                Some(last) if last.image == id => last.score = last.score.min(s),
                _ => out.push(QueryResult::new(id, s)),
            }
        }
        sort_ranked(&mut out);
        Ok(out)
    }

    /// Conjunction. The hybrid fast path — exactly one spatial range
    /// plus one visual leaf — scatters as a single region-restricted
    /// visual traversal per segment (with any extra legs intersected
    /// afterwards); everything else materializes each leg globally and
    /// intersects, scoring survivors from the first leg.
    fn and_on(
        &self,
        snap: &Snapshot,
        subs: &[Query],
        pool: &Pool,
        dl: Option<&DeadlineCtx>,
    ) -> Result<Vec<QueryResult>, QueryError> {
        if subs.is_empty() {
            return Ok(Vec::new());
        }
        let ranges: Vec<&BBox> = subs
            .iter()
            .filter_map(|q| match q {
                Query::Spatial(SpatialQuery::Range(b)) => Some(b),
                _ => None,
            })
            .collect();
        let visuals: Vec<(&Vec<f32>, VisualMode)> = subs
            .iter()
            .filter_map(|q| match q {
                Query::Visual { example, mode, .. } => Some((example, *mode)),
                _ => None,
            })
            .collect();
        if ranges.len() == 1 && visuals.len() == 1 {
            let (example, mode) = visuals[0];
            let region = ranges[0];
            let units = units_of(snap);
            if let Some(dl) = dl {
                dl.walk_units(&units)?;
            }
            let partials = pool.map(&units, |_, unit| match unit {
                Unit::Seg(engine) => engine.run_visual(example, mode, Some(region)),
                Unit::Tail(sv) => self.tail_visual(sv, example, mode, Some(region)),
            });
            let mut results: Vec<QueryResult> = partials.into_iter().flatten().collect();
            sort_ranked(&mut results);
            if let VisualMode::TopK(k) = mode {
                results.truncate(k);
            }
            let rest = subs.iter().filter(|q| {
                !matches!(
                    q,
                    Query::Spatial(SpatialQuery::Range(_)) | Query::Visual { .. }
                )
            });
            for q in rest {
                if results.is_empty() {
                    return Ok(results);
                }
                let ids: BTreeSet<ImageId> = self
                    .run_on(snap, q, pool, dl)?
                    .into_iter()
                    .map(|r| r.image)
                    .collect();
                results.retain(|r| ids.contains(&r.image));
            }
            return Ok(results);
        }

        let mut first_scores: Vec<(ImageId, f64)> = Vec::new();
        let mut allowed: Option<BTreeSet<ImageId>> = None;
        for (i, q) in subs.iter().enumerate() {
            let results = self.run_on(snap, q, pool, dl)?;
            if i == 0 {
                first_scores = results.iter().map(|r| (r.image, r.score)).collect();
                first_scores.sort_by_key(|&(id, _)| id);
            }
            let ids: BTreeSet<ImageId> = results.into_iter().map(|r| r.image).collect();
            allowed = Some(match allowed {
                None => ids,
                Some(prev) => prev.intersection(&ids).copied().collect(),
            });
        }
        let mut out: Vec<QueryResult> = allowed
            .unwrap_or_default()
            .into_iter()
            .map(|id| {
                let score = first_scores
                    .binary_search_by_key(&id, |&(i, _)| i)
                    .map_or(0.0, |pos| first_scores[pos].1);
                QueryResult::new(id, score)
            })
            .collect();
        sort_ranked(&mut out);
        Ok(out)
    }
}

/// Flattens a snapshot into scatter units in deterministic order:
/// shard 0's segments then tail, shard 1's, … Empty tails are skipped.
fn units_of(snap: &Snapshot) -> Vec<Unit<'_>> {
    let mut units = Vec::new();
    for sv in &snap.shards {
        for seg in &sv.gen.segments {
            units.push(Unit::Seg(seg));
        }
        if !sv.gen.tail.is_empty() {
            units.push(Unit::Tail(sv));
        }
    }
    units
}

/// Runs `f` over one shard's tail records (ascending id order) under a
/// single store read-lock acquisition. `f` must not call back into the
/// store.
fn with_tail(sv: &ShardView, f: impl FnMut(&ImageRecord)) {
    sv.store.with_images(&sv.gen.tail, f);
}

/// Splits `text` at the same boundaries as
/// [`tvdp_index::inverted::tokenize`], but borrows instead of
/// allocating — tail scans run this per record per query.
fn tokens_of(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
}

/// Whether `token` lowercases to the (already lowercased) query `term`
/// — allocation-free equivalent of `tokenize(token).contains(term)`
/// for a single token. Non-ASCII tokens fall back to the exact
/// `str::to_lowercase` the index tokenizer uses.
fn token_eq(token: &str, term: &str) -> bool {
    if token.is_ascii() && term.is_ascii() {
        token.eq_ignore_ascii_case(term)
    } else {
        token.to_lowercase() == *term
    }
}

/// Orders results by `(score, id)` — the scored-merge gather rule.
fn sort_ranked(results: &mut [QueryResult]) {
    results.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.image.cmp(&b.image)));
}
