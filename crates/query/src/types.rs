//! Query and result types.

use serde::{Deserialize, Serialize};
use tvdp_geo::{AngularRange, BBox, GeoPoint, GeoPolygon};
use tvdp_storage::{ClassificationId, ImageId};
use tvdp_vision::FeatureKind;

/// Spatial sub-queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SpatialQuery {
    /// Images whose scene location intersects the box.
    Range(BBox),
    /// The `k` images whose scene location is nearest to the point.
    Nearest {
        /// Query point.
        point: GeoPoint,
        /// Result count.
        k: usize,
    },
    /// Images whose FOV actually sees the point.
    Covering(GeoPoint),
    /// Images whose scene location intersects a district polygon.
    Within(GeoPolygon),
    /// Images in a region looking along certain compass directions.
    Directed {
        /// Spatial region.
        region: BBox,
        /// Allowed viewing directions.
        directions: AngularRange,
    },
}

/// Visual similarity modes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VisualMode {
    /// The `k` most similar images.
    TopK(usize),
    /// All images within a feature-distance threshold.
    Threshold(f32),
}

/// Textual retrieval modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TextualMode {
    /// Every query term must match.
    All,
    /// Any query term may match.
    Any,
    /// tf-idf ranked, top `k`.
    Ranked(usize),
}

/// Which timestamp a temporal filter applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemporalField {
    /// Capture time.
    Captured,
    /// Upload time.
    Uploaded,
}

/// A TVDP query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Query {
    /// Spatial search.
    Spatial(SpatialQuery),
    /// Example-based visual similarity search.
    Visual {
        /// Example feature vector.
        example: Vec<f32>,
        /// Which feature family the example belongs to.
        kind: FeatureKind,
        /// Top-k or threshold.
        mode: VisualMode,
    },
    /// Annotation-label search.
    Categorical {
        /// Classification scheme.
        scheme: ClassificationId,
        /// Label index within the scheme.
        label: usize,
        /// Keep annotations at or above this confidence.
        min_confidence: f32,
    },
    /// Keyword search over manual keywords.
    Textual {
        /// Query text.
        text: String,
        /// Retrieval mode.
        mode: TextualMode,
    },
    /// Timestamp range filter (inclusive).
    Temporal {
        /// Which timestamp.
        field: TemporalField,
        /// Range start, Unix seconds.
        from: i64,
        /// Range end, Unix seconds.
        to: i64,
    },
    /// Conjunction: images satisfying every sub-query (hybrid queries such
    /// as spatial-visual and spatial-textual).
    And(Vec<Query>),
    /// Disjunction: images satisfying any sub-query; each image keeps its
    /// best (lowest) score among the branches that matched it.
    Or(Vec<Query>),
}

/// Errors a query can be rejected with before execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryError {
    /// A visual leaf asked for a feature family the engine does not
    /// index: the engine builds its visual indexes over exactly one
    /// [`FeatureKind`] (see `EngineConfig::visual_kind`), and silently
    /// answering from a different family would return wrong distances.
    KindMismatch {
        /// The feature family the engine's visual indexes cover.
        indexed: FeatureKind,
        /// The feature family the query asked for.
        queried: FeatureKind,
    },
    /// A spatial leaf carried a malformed region — most importantly a
    /// rectangle wrapping the antimeridian, which the planner would
    /// otherwise treat as a near-empty box and silently drop matches
    /// (see [`tvdp_geo::GeoError::AntimeridianSpan`]).
    Geo(tvdp_geo::GeoError),
    /// The query's virtual-clock deadline passed before execution
    /// finished. The engine checks at scatter/gather and segment-scan
    /// boundaries and aborts instead of burning pool time on an answer
    /// nobody is waiting for; the caller sees how far past the deadline
    /// the modeled clock had run.
    DeadlineExceeded {
        /// The deadline the request carried (virtual-clock ms).
        deadline_ms: i64,
        /// The modeled clock when the engine gave up (virtual-clock ms).
        now_ms: i64,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::KindMismatch { indexed, queried } => write!(
                f,
                "visual kind mismatch: engine indexes {indexed:?}, query uses {queried:?}"
            ),
            QueryError::Geo(e) => write!(f, "invalid spatial region: {e}"),
            QueryError::DeadlineExceeded {
                deadline_ms,
                now_ms,
            } => write!(
                f,
                "deadline exceeded: virtual clock at {now_ms} ms passed the {deadline_ms} ms deadline"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<tvdp_geo::GeoError> for QueryError {
    fn from(e: tvdp_geo::GeoError) -> Self {
        QueryError::Geo(e)
    }
}

/// A scored result row. Score semantics depend on the query: feature
/// distance for visual queries (lower = better), metres for nearest
/// queries, tf-idf score for ranked text (higher = better), `0.0` for
/// pure filters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Matching image.
    pub image: ImageId,
    /// Query-dependent score.
    pub score: f64,
}

impl QueryResult {
    /// Convenience constructor.
    pub fn new(image: ImageId, score: f64) -> Self {
        Self { image, score }
    }
}

/// Extracts just the ids, preserving order.
pub fn result_ids(results: &[QueryResult]) -> Vec<ImageId> {
    results.iter().map(|r| r.image).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_serde_roundtrip() {
        let q = Query::And(vec![
            Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.1, -118.2))),
            Query::Visual {
                example: vec![0.1, 0.2],
                kind: FeatureKind::Cnn,
                mode: VisualMode::TopK(5),
            },
            Query::Textual {
                text: "tent".into(),
                mode: TextualMode::All,
            },
        ]);
        let json = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&json).unwrap();
        match back {
            Query::And(subs) => assert_eq!(subs.len(), 3),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn result_ids_preserve_order() {
        let rs = vec![
            QueryResult::new(ImageId(3), 0.1),
            QueryResult::new(ImageId(1), 0.2),
        ];
        assert_eq!(result_ids(&rs), vec![ImageId(3), ImageId(1)]);
    }
}
