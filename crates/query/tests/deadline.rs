//! Deadline propagation through the sharded engine: a query that fits
//! its virtual-clock budget returns byte-identical results to the
//! undeadlined path, one that does not trips a typed
//! [`QueryError::DeadlineExceeded`] — and whether it trips is a pure
//! function of the snapshot and query, identical across pool widths.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tvdp_geo::{BBox, GeoPoint};
use tvdp_kernel::Pool;
use tvdp_query::{
    EngineConfig, Query, QueryError, ShardedEngine, SpatialQuery, TemporalField, TextualMode,
    VisualMode,
};
use tvdp_storage::{ImageMeta, ImageOrigin, UserId, VisualStore};
use tvdp_vision::FeatureKind;

const DIM: usize = 8;

fn build_store(n: usize, seed: u64) -> Arc<VisualStore> {
    let store = VisualStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    const WORDS: [&str; 4] = ["street", "tent", "trash", "corner"];
    for i in 0..n {
        let gps = GeoPoint::new(
            34.0 + rng.gen_range(0.0..0.05),
            -118.3 + rng.gen_range(0.0..0.05),
        );
        let captured = 1_000 + rng.gen_range(0..10_000);
        let meta = ImageMeta {
            uploader: UserId(0),
            gps,
            fov: None,
            captured_at: captured,
            uploaded_at: captured + 10,
            keywords: vec![WORDS[i % WORDS.len()].to_string()],
        };
        let id = store.add_image(meta, ImageOrigin::Original, None).unwrap();
        let feature: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
        store.put_feature(id, FeatureKind::Cnn, feature).unwrap();
    }
    Arc::new(store)
}

fn engine(shards: usize, per_shard: usize) -> ShardedEngine {
    let stores = (0..shards)
        .map(|s| build_store(per_shard, 42 + s as u64))
        .collect();
    // A small seal cap forces multiple segments per shard, so the
    // deadline walk crosses real segment-scan boundaries.
    ShardedEngine::with_seal_cap(stores, EngineConfig::default(), 32)
}

fn workload() -> Vec<Query> {
    let example: Vec<f32> = (0..DIM).map(|d| d as f32 * 0.1).collect();
    vec![
        Query::Visual {
            example: example.clone(),
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(10),
        },
        Query::Textual {
            text: "street trash".into(),
            mode: TextualMode::Ranked(15),
        },
        Query::Temporal {
            field: TemporalField::Captured,
            from: 2_000,
            to: 9_000,
        },
        Query::And(vec![
            Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.05, -118.25))),
            Query::Visual {
                example,
                kind: FeatureKind::Cnn,
                mode: VisualMode::TopK(5),
            },
        ]),
    ]
}

#[test]
fn generous_deadline_matches_undeadlined_results_exactly() {
    let eng = engine(3, 100);
    let pool = Pool::new(4);
    for q in workload() {
        let plain = eng.try_execute_with_pool(&q, &pool).unwrap();
        let deadlined = eng
            .try_execute_with_deadline(&q, &pool, 1_000, i64::MAX)
            .unwrap();
        assert_eq!(plain, deadlined, "query {q:?}");
    }
}

#[test]
fn already_expired_deadline_fails_before_any_scatter() {
    let eng = engine(2, 50);
    let pool = Pool::serial();
    for q in workload() {
        let err = eng
            .try_execute_with_deadline(&q, &pool, 5_000, 4_999)
            .unwrap_err();
        assert!(
            matches!(
                err,
                QueryError::DeadlineExceeded {
                    deadline_ms: 4_999,
                    ..
                }
            ),
            "query {q:?} returned {err:?}"
        );
    }
}

#[test]
fn deadline_trip_is_identical_across_pool_widths() {
    let eng = engine(3, 200);
    let serial = Pool::serial();
    let wide = Pool::new(8);
    // Sweep budgets from "nothing fits" to "everything fits"; at every
    // budget the serial and 8-wide pools must agree exactly — same
    // trip/no-trip decision, same error payload, same result bytes.
    for budget in 0..40 {
        let deadline = 1_000 + budget;
        for q in workload() {
            let a = eng.try_execute_with_deadline(&q, &serial, 1_000, deadline);
            let b = eng.try_execute_with_deadline(&q, &wide, 1_000, deadline);
            assert_eq!(a, b, "budget {budget} ms, query {q:?}");
        }
    }
}

#[test]
fn tight_budget_trips_and_reports_the_modeled_clock() {
    let eng = engine(4, 150);
    let pool = Pool::serial();
    // Each scatter unit charges at least 1 virtual ms; 4 shards of 150
    // rows sealed at 32 give ~20 units, so a 2 ms budget cannot fit a
    // full scatter.
    let err = eng
        .try_execute_with_deadline(&workload()[0], &pool, 0, 2)
        .unwrap_err();
    match err {
        QueryError::DeadlineExceeded {
            deadline_ms,
            now_ms,
        } => {
            assert_eq!(deadline_ms, 2);
            assert!(now_ms > deadline_ms, "clock must have passed the deadline");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn estimate_units_is_deterministic_and_scales_with_corpus() {
    let small = engine(1, 40);
    let big = engine(4, 200);
    for q in workload() {
        let a = small.estimate_query_units(&q);
        let b = small.estimate_query_units(&q);
        assert_eq!(a, b, "estimate must be a pure function of the snapshot");
        assert!(a >= 1, "every query costs at least one unit");
        assert!(
            big.estimate_query_units(&q) > a,
            "a 20x corpus must price higher: {q:?}"
        );
    }
}
