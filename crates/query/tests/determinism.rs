//! Lint rule L2 end-to-end: a mixed hybrid + LSH + inverted-index
//! workload must produce byte-identical serialized results no matter how
//! many pool threads execute it.
//!
//! The comparison serializes every result row with `Debug` formatting
//! (exact decimal rendering of `f64` scores), so any nondeterminism —
//! hash-order iteration, thread-dependent reduction order, floating-point
//! reassociation — shows up as a byte difference.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tvdp_geo::{BBox, Fov, GeoPoint};
use tvdp_kernel::Pool;
use tvdp_query::{
    EngineConfig, Query, QueryEngine, QueryResult, ShardedEngine, SpatialQuery, TemporalField,
    TextualMode, VisualMode,
};
use tvdp_storage::{AnnotationSource, ImageMeta, ImageOrigin, UserId, VisualStore};
use tvdp_vision::FeatureKind;

const DIM: usize = 8;

fn build_store(n: usize, seed: u64) -> Arc<VisualStore> {
    let store = VisualStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let cls = store
        .register_scheme("cleanliness", vec!["clean".into(), "dirty".into()])
        .unwrap();
    const WORDS: [&str; 6] = ["street", "tent", "trash", "corner", "downtown", "alley"];
    for i in 0..n {
        let lat = 34.0 + rng.gen_range(0.0..0.05);
        let lon = -118.3 + rng.gen_range(0.0..0.05);
        let gps = GeoPoint::new(lat, lon);
        let fov = rng.gen_bool(0.8).then(|| {
            Fov::new(
                gps,
                rng.gen_range(0.0..360.0),
                rng.gen_range(40.0..80.0),
                rng.gen_range(50.0..150.0),
            )
        });
        let captured = 1_000 + rng.gen_range(0..10_000);
        let n_words = rng.gen_range(1..4);
        let keywords: Vec<String> = (0..n_words)
            .map(|_| WORDS[rng.gen_range(0..WORDS.len())].to_string())
            .collect();
        let meta = ImageMeta {
            uploader: UserId(rng.gen_range(0..5)),
            gps,
            fov,
            captured_at: captured,
            uploaded_at: captured + rng.gen_range(1..500),
            keywords,
        };
        let id = store.add_image(meta, ImageOrigin::Original, None).unwrap();
        let class = i % 2;
        let feature: Vec<f32> = (0..DIM)
            .map(|_| class as f32 * 2.0 + rng.gen_range(-0.3..0.3))
            .collect();
        store.put_feature(id, FeatureKind::Cnn, feature).unwrap();
        store
            .annotate(
                id,
                cls,
                class,
                rng.gen_range(0.5..1.0),
                AnnotationSource::Human(UserId(0)),
                None,
            )
            .unwrap();
    }
    Arc::new(store)
}

/// The mixed workload: exact hybrid visual, textual (boolean + ranked),
/// spatial, temporal, and conjunctive/disjunctive combinations.
fn workload() -> Vec<Query> {
    let example: Vec<f32> = (0..DIM)
        .map(|d| if d % 2 == 0 { 0.1 } else { 1.9 })
        .collect();
    vec![
        Query::Visual {
            example: example.clone(),
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(10),
        },
        Query::Visual {
            example: example.clone(),
            kind: FeatureKind::Cnn,
            mode: VisualMode::Threshold(1.5),
        },
        Query::Textual {
            text: "street trash".into(),
            mode: TextualMode::Any,
        },
        Query::Textual {
            text: "downtown tent".into(),
            mode: TextualMode::Ranked(15),
        },
        Query::Spatial(SpatialQuery::Range(BBox::new(
            34.01, -118.29, 34.04, -118.26,
        ))),
        Query::Temporal {
            field: TemporalField::Captured,
            from: 2_000,
            to: 9_000,
        },
        Query::And(vec![
            Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.05, -118.25))),
            Query::Textual {
                text: "street".into(),
                mode: TextualMode::All,
            },
        ]),
        Query::Or(vec![
            Query::Textual {
                text: "alley".into(),
                mode: TextualMode::Any,
            },
            Query::Visual {
                example,
                kind: FeatureKind::Cnn,
                mode: VisualMode::TopK(5),
            },
        ]),
    ]
}

/// Serializes one batch result to bytes. `Debug` prints `f64` scores with
/// exact round-trip precision, so this is a faithful byte-level witness.
fn serialize(results: &[Vec<QueryResult>]) -> Vec<u8> {
    let mut out = Vec::new();
    for (qi, rows) in results.iter().enumerate() {
        out.extend_from_slice(format!("query {qi}:\n").as_bytes());
        for r in rows {
            out.extend_from_slice(format!("  {} {:?}\n", r.image.raw(), r.score).as_bytes());
        }
    }
    out
}

fn run_with_threads(config: &EngineConfig, threads: usize) -> Vec<u8> {
    let store = build_store(300, 42);
    let engine = QueryEngine::build(Arc::clone(&store), config.clone());
    let pool = Pool::new(threads);
    let results = engine.execute_batch_with_pool(&workload(), &pool);
    serialize(&results)
}

#[test]
fn exact_engine_is_thread_count_invariant() {
    let config = EngineConfig::default();
    let serial = run_with_threads(&config, 1);
    let pooled = run_with_threads(&config, 8);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, pooled,
        "exact hybrid workload differs between 1 and 8 pool threads"
    );
}

#[test]
fn lsh_engine_is_thread_count_invariant() {
    let config = EngineConfig {
        exact_visual: false,
        ..EngineConfig::default()
    };
    let serial = run_with_threads(&config, 1);
    let pooled = run_with_threads(&config, 8);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, pooled,
        "LSH workload differs between 1 and 8 pool threads"
    );
}

#[test]
fn rebuilt_engine_reproduces_identical_bytes() {
    // Same store seed, fresh engine + pool: the whole pipeline (ingest,
    // index build, batch execution) must be a pure function of the seed.
    let config = EngineConfig::default();
    let a = run_with_threads(&config, 4);
    let b = run_with_threads(&config, 4);
    assert_eq!(a, b, "identical builds produced different bytes");
}

// ---------------------------------------------------------------------
// Shard axis: partitioning the corpus must not change a single byte.
// ---------------------------------------------------------------------

/// Test-local geo-grid router (FNV-1a over 0.01°-pitch cells) — the
/// query crate cannot depend on the platform's `GeoShardRouter`.
fn shard_for(gps: &GeoPoint, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let cx = (gps.lat / 0.01).floor() as i64;
    let cy = (gps.lon / 0.01).floor() as i64;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cx.to_le_bytes().into_iter().chain(cy.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Splits `source` across `shards` fresh stores, preserving global ids
/// so the sharded corpus is the same logical corpus.
fn shard_stores(source: &VisualStore, shards: usize) -> Vec<Arc<VisualStore>> {
    let stores: Vec<VisualStore> = (0..shards).map(|_| VisualStore::new()).collect();
    let scheme = source
        .scheme_by_name("cleanliness")
        .expect("reference scheme");
    for s in &stores {
        s.register_scheme_at(scheme.id, scheme.name.clone(), scheme.labels.clone())
            .unwrap();
    }
    for id in source.image_ids() {
        let rec = source.image(id).expect("listed id");
        let s = &stores[shard_for(&rec.meta.gps, shards)];
        s.add_image_at(id, rec.meta.clone(), rec.origin.clone(), None)
            .unwrap();
        let feature = source.feature(id, FeatureKind::Cnn).expect("cnn feature");
        s.put_feature(id, FeatureKind::Cnn, feature).unwrap();
        for a in source.annotations_of(id) {
            s.annotate_at(
                a.id,
                a.image,
                a.classification,
                a.label,
                a.confidence,
                a.source,
                a.region,
            )
            .unwrap();
        }
    }
    stores.into_iter().map(Arc::new).collect()
}

fn run_sharded(shards: usize, threads: usize) -> Vec<u8> {
    let store = build_store(300, 42);
    // A small seal cap forces multiple sealed segments plus a live tail
    // in every shard, exercising both scatter paths.
    let engine =
        ShardedEngine::with_seal_cap(shard_stores(&store, shards), EngineConfig::default(), 32);
    let pool = Pool::new(threads);
    let results = engine
        .try_execute_batch_with_pool(&workload(), &pool)
        .expect("cnn-only workload");
    serialize(&results)
}

#[test]
fn sharded_engine_is_shard_and_thread_count_invariant() {
    let reference = run_sharded(1, 1);
    assert!(!reference.is_empty());
    for (shards, threads) in [(1, 8), (3, 1), (3, 8), (8, 1), (8, 8)] {
        assert_eq!(
            run_sharded(shards, threads),
            reference,
            "{shards} shards x {threads} threads diverged from 1 shard x 1 thread"
        );
    }
}
