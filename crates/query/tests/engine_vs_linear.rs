//! The index-backed engine must agree with the linear-scan reference on
//! every query family.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tvdp_geo::{AngularRange, BBox, Fov, GeoPoint};
use tvdp_query::types::result_ids;
use tvdp_query::{
    LinearExecutor, Query, QueryEngine, QueryResult, SpatialQuery, TemporalField, TextualMode,
    VisualMode,
};
use tvdp_storage::{AnnotationSource, ImageMeta, ImageOrigin, UserId, VisualStore};
use tvdp_vision::FeatureKind;

const DIM: usize = 8;

fn build_store(n: usize, seed: u64) -> Arc<VisualStore> {
    let store = VisualStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let cls = store
        .register_scheme(
            "cleanliness",
            vec!["clean".into(), "dirty".into(), "encampment".into()],
        )
        .unwrap();
    const WORDS: [&str; 6] = ["street", "tent", "trash", "corner", "downtown", "alley"];
    for i in 0..n {
        let lat = 34.0 + rng.gen_range(0.0..0.05);
        let lon = -118.3 + rng.gen_range(0.0..0.05);
        let gps = GeoPoint::new(lat, lon);
        let fov = if rng.gen_bool(0.8) {
            Some(Fov::new(
                gps,
                rng.gen_range(0.0..360.0),
                rng.gen_range(40.0..80.0),
                rng.gen_range(50.0..150.0),
            ))
        } else {
            None
        };
        let captured = 1_000 + rng.gen_range(0..10_000);
        let n_words = rng.gen_range(1..4);
        let keywords: Vec<String> = (0..n_words)
            .map(|_| WORDS[rng.gen_range(0..WORDS.len())].to_string())
            .collect();
        let meta = ImageMeta {
            uploader: UserId(rng.gen_range(0..5)),
            gps,
            fov,
            captured_at: captured,
            uploaded_at: captured + rng.gen_range(1..500),
            keywords,
        };
        let id = store.add_image(meta, ImageOrigin::Original, None).unwrap();
        // Clustered features: class c centred at 2c.
        let class = i % 3;
        let feature: Vec<f32> = (0..DIM)
            .map(|_| class as f32 * 2.0 + rng.gen_range(-0.3..0.3))
            .collect();
        store.put_feature(id, FeatureKind::Cnn, feature).unwrap();
        store
            .annotate(
                id,
                cls,
                class,
                rng.gen_range(0.5..1.0),
                AnnotationSource::Human(UserId(0)),
                None,
            )
            .unwrap();
    }
    Arc::new(store)
}

fn sorted_ids(results: &[QueryResult]) -> Vec<u64> {
    let mut ids: Vec<u64> = results.iter().map(|r| r.image.raw()).collect();
    ids.sort_unstable();
    ids
}

fn check_agreement(query: &Query, n: usize, seed: u64) {
    let store = build_store(n, seed);
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let linear = LinearExecutor::new(store);
    let e = engine.execute(query);
    let l = linear.execute(query);
    assert_eq!(sorted_ids(&e), sorted_ids(&l), "mismatch on {query:?}");
}

#[test]
fn spatial_range_agrees() {
    let q = Query::Spatial(SpatialQuery::Range(BBox::new(
        34.01, -118.29, 34.03, -118.27,
    )));
    check_agreement(&q, 150, 1);
}

#[test]
fn spatial_covering_agrees() {
    let q = Query::Spatial(SpatialQuery::Covering(GeoPoint::new(34.02, -118.28)));
    check_agreement(&q, 200, 2);
}

#[test]
fn spatial_directed_agrees() {
    let q = Query::Spatial(SpatialQuery::Directed {
        region: BBox::new(34.0, -118.3, 34.05, -118.25),
        directions: AngularRange::centered(90.0, 60.0),
    });
    check_agreement(&q, 150, 3);
}

#[test]
fn spatial_nearest_matches_distances() {
    let store = build_store(120, 4);
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let linear = LinearExecutor::new(store);
    let q = Query::Spatial(SpatialQuery::Nearest {
        point: GeoPoint::new(34.025, -118.275),
        k: 7,
    });
    let e = engine.execute(&q);
    let l = linear.execute(&q);
    assert_eq!(e.len(), 7);
    for (a, b) in e.iter().zip(&l) {
        assert!(
            (a.score - b.score).abs() < 1e-6,
            "{} vs {}",
            a.score,
            b.score
        );
    }
}

#[test]
fn visual_threshold_agrees() {
    let q = Query::Visual {
        example: vec![2.0; DIM],
        kind: FeatureKind::Cnn,
        mode: VisualMode::Threshold(1.5),
    };
    check_agreement(&q, 150, 5);
}

#[test]
fn visual_topk_matches_distances() {
    let store = build_store(150, 6);
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let linear = LinearExecutor::new(store);
    let q = Query::Visual {
        example: vec![0.0; DIM],
        kind: FeatureKind::Cnn,
        mode: VisualMode::TopK(10),
    };
    let e = engine.execute(&q);
    let l = linear.execute(&q);
    assert_eq!(e.len(), 10);
    for (a, b) in e.iter().zip(&l) {
        assert!(
            (a.score - b.score).abs() < 1e-5,
            "{} vs {}",
            a.score,
            b.score
        );
    }
}

#[test]
fn categorical_agrees() {
    let store = build_store(100, 7);
    let scheme = store.scheme_by_name("cleanliness").unwrap().id;
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let linear = LinearExecutor::new(store);
    let q = Query::Categorical {
        scheme,
        label: 2,
        min_confidence: 0.7,
    };
    assert_eq!(
        sorted_ids(&engine.execute(&q)),
        sorted_ids(&linear.execute(&q))
    );
    assert!(!engine.execute(&q).is_empty());
}

#[test]
fn textual_modes_agree() {
    for mode in [TextualMode::All, TextualMode::Any] {
        let q = Query::Textual {
            text: "tent street".into(),
            mode,
        };
        check_agreement(&q, 150, 8);
    }
    // Ranked mode: same membership at large k.
    let store = build_store(150, 8);
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let linear = LinearExecutor::new(store);
    let q = Query::Textual {
        text: "tent".into(),
        mode: TextualMode::Ranked(1000),
    };
    assert_eq!(
        sorted_ids(&engine.execute(&q)),
        sorted_ids(&linear.execute(&q))
    );
}

#[test]
fn temporal_agrees_for_both_fields() {
    for field in [TemporalField::Captured, TemporalField::Uploaded] {
        let q = Query::Temporal {
            field,
            from: 3_000,
            to: 7_000,
        };
        check_agreement(&q, 150, 9);
    }
}

#[test]
fn hybrid_spatial_visual_agrees() {
    let q = Query::And(vec![
        Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.03, -118.26))),
        Query::Visual {
            example: vec![2.0; DIM],
            kind: FeatureKind::Cnn,
            mode: VisualMode::Threshold(1.2),
        },
    ]);
    check_agreement(&q, 200, 10);
}

#[test]
fn hybrid_spatial_textual_agrees() {
    let q = Query::And(vec![
        Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.04, -118.25))),
        Query::Textual {
            text: "trash".into(),
            mode: TextualMode::Any,
        },
    ]);
    check_agreement(&q, 200, 11);
}

#[test]
fn triple_hybrid_agrees() {
    let q = Query::And(vec![
        Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.05, -118.25))),
        Query::Visual {
            example: vec![4.0; DIM],
            kind: FeatureKind::Cnn,
            mode: VisualMode::Threshold(1.5),
        },
        Query::Temporal {
            field: TemporalField::Captured,
            from: 1_000,
            to: 9_000,
        },
    ]);
    check_agreement(&q, 200, 12);
}

#[test]
fn empty_and_returns_nothing() {
    let store = build_store(20, 13);
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    assert!(engine.execute(&Query::And(vec![])).is_empty());
}

#[test]
fn approximate_visual_path_has_high_recall() {
    let store = build_store(300, 14);
    let exact = QueryEngine::build(Arc::clone(&store), Default::default());
    // Bucket width tuned to the test data's nearest-neighbour distances,
    // as E2LSH deployments do.
    let approx = QueryEngine::build(
        Arc::clone(&store),
        tvdp_query::engine::EngineConfig {
            exact_visual: false,
            lsh: tvdp_index::LshConfig {
                bucket_width: 2.0,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let q = Query::Visual {
        example: vec![2.0; DIM],
        kind: FeatureKind::Cnn,
        mode: VisualMode::TopK(10),
    };
    let exact_ids: Vec<_> = result_ids(&exact.execute(&q));
    let approx_ids: Vec<_> = result_ids(&approx.execute(&q));
    let hit = exact_ids
        .iter()
        .filter(|id| approx_ids.contains(id))
        .count();
    assert!(hit >= 8, "LSH recall too low: {hit}/10");
}

#[test]
fn incremental_indexing_picks_up_new_images() {
    let store = build_store(50, 15);
    let mut engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let before = engine.len();
    let gps = GeoPoint::new(34.02, -118.28);
    let id = store
        .add_image(
            ImageMeta {
                uploader: UserId(1),
                gps,
                fov: None,
                captured_at: 5_000,
                uploaded_at: 5_100,
                keywords: vec!["uniquekeyword".into()],
            },
            ImageOrigin::Original,
            None,
        )
        .unwrap();
    store
        .put_feature(id, FeatureKind::Cnn, vec![9.0; DIM])
        .unwrap();
    engine.index_image(id);
    assert_eq!(engine.len(), before + 1);
    let hits = engine.execute(&Query::Textual {
        text: "uniquekeyword".into(),
        mode: TextualMode::All,
    });
    assert_eq!(result_ids(&hits), vec![id]);
    // Re-indexing is idempotent.
    engine.index_image(id);
    assert_eq!(engine.len(), before + 1);
}

#[test]
fn or_union_agrees_and_keeps_best_score() {
    let q = Query::Or(vec![
        Query::Textual {
            text: "tent".into(),
            mode: TextualMode::Any,
        },
        Query::Temporal {
            field: TemporalField::Captured,
            from: 2_000,
            to: 4_000,
        },
        Query::Visual {
            example: vec![0.0; DIM],
            kind: FeatureKind::Cnn,
            mode: VisualMode::Threshold(0.8),
        },
    ]);
    check_agreement(&q, 200, 16);

    // Union semantics: no sub-query result is lost.
    let store = build_store(200, 16);
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let union = engine.execute(&q);
    for sub in [
        Query::Textual {
            text: "tent".into(),
            mode: TextualMode::Any,
        },
        Query::Temporal {
            field: TemporalField::Captured,
            from: 2_000,
            to: 4_000,
        },
    ] {
        for r in engine.execute(&sub) {
            assert!(
                union.iter().any(|u| u.image == r.image),
                "lost {:?}",
                r.image
            );
        }
    }
    // Ordered by score.
    for w in union.windows(2) {
        assert!(w[0].score <= w[1].score);
    }
}

#[test]
fn nested_and_or_composition() {
    // (tent OR trash) AND in-region.
    let q = Query::And(vec![
        Query::Or(vec![
            Query::Textual {
                text: "tent".into(),
                mode: TextualMode::Any,
            },
            Query::Textual {
                text: "trash".into(),
                mode: TextualMode::Any,
            },
        ]),
        Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.04, -118.26))),
    ]);
    check_agreement(&q, 250, 17);
}

#[test]
fn execute_batch_matches_per_query_and_linear() {
    let store = build_store(200, 19);
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let linear = LinearExecutor::new(store);
    let queries = vec![
        Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.03, -118.26))),
        Query::Visual {
            example: vec![2.0; DIM],
            kind: FeatureKind::Cnn,
            mode: VisualMode::Threshold(1.5),
        },
        Query::Visual {
            example: vec![0.0; DIM],
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(10),
        },
        Query::Textual {
            text: "tent street".into(),
            mode: TextualMode::Any,
        },
        Query::Temporal {
            field: TemporalField::Captured,
            from: 3_000,
            to: 7_000,
        },
        Query::And(vec![
            Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.04, -118.25))),
            Query::Visual {
                example: vec![4.0; DIM],
                kind: FeatureKind::Cnn,
                mode: VisualMode::Threshold(1.2),
            },
        ]),
    ];
    let batched = engine.execute_batch(&queries);
    assert_eq!(
        batched.len(),
        queries.len(),
        "one result set per query, in order"
    );
    for (q, batch_results) in queries.iter().zip(&batched) {
        // Batch == per-query on the engine, including scores and order.
        let single = engine.execute(q);
        assert_eq!(&single, batch_results, "batch diverged on {q:?}");
        // …and both agree with the linear-scan reference on membership
        // (top-k boundary ties may legitimately differ, so skip those).
        if !matches!(
            q,
            Query::Visual {
                mode: VisualMode::TopK(_),
                ..
            }
        ) {
            assert_eq!(
                sorted_ids(batch_results),
                sorted_ids(&linear.execute(q)),
                "linear mismatch on {q:?}"
            );
        }
    }
    // Thread count is a latency knob only.
    for threads in [1, 4] {
        let pooled = engine.execute_batch_with_pool(&queries, &tvdp_kernel::Pool::new(threads));
        assert_eq!(pooled, batched, "{threads} threads");
    }
}

#[test]
fn polygon_within_agrees() {
    use tvdp_geo::GeoPolygon;
    // A triangular district over the data region.
    let a = GeoPoint::new(34.0, -118.3);
    let polygon = GeoPolygon::new(vec![
        a,
        a.destination(90.0, 4_000.0),
        a.destination(0.0, 4_000.0),
    ]);
    let q = Query::Spatial(SpatialQuery::Within(polygon));
    check_agreement(&q, 250, 18);
    // The polygon must select a proper, non-empty subset of its bbox.
    let store = build_store(250, 18);
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let tri = match &q {
        Query::Spatial(SpatialQuery::Within(p)) => p.clone(),
        _ => unreachable!(),
    };
    let in_tri = engine.execute(&q).len();
    let in_box = engine
        .execute(&Query::Spatial(SpatialQuery::Range(tri.bbox())))
        .len();
    assert!(in_tri > 0);
    assert!(
        in_tri < in_box,
        "triangle ({in_tri}) must prune vs its bbox ({in_box})"
    );
}
