//! Randomized parity suite for the selectivity-ordered planner.
//!
//! Two guarantees are exercised here, both stronger than the per-family
//! agreement checks in `engine_vs_linear.rs`:
//!
//! 1. **Score-exact parity with the reference.** For seeded random
//!    query trees mixing every leaf family under `And`/`Or`, the engine
//!    must return the same image set as [`LinearExecutor`] with
//!    *bit-identical* scores (compared via `f64::to_bits`), not merely
//!    the same ids.
//! 2. **Pool-width determinism.** Batch execution must produce
//!    byte-identical output under a 1-thread and an 8-thread pool.
//! 3. **Shard-count invariance.** The same corpus split across 1, 3,
//!    or 8 [`ShardedEngine`] shards by geo-grid routing must match the
//!    single-store linear reference score-for-score, and batch output
//!    must be byte-identical across every (shard count, pool width)
//!    combination.
//!
//! Plus regression tests for the conjunction fast path that used to
//! silently drop a second visual leaf of a different [`FeatureKind`].

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tvdp_geo::{AngularRange, BBox, Fov, GeoError, GeoPoint, GeoPolygon};
use tvdp_kernel::Pool;
use tvdp_query::{
    EngineConfig, LinearExecutor, QuantConfig, QuantMode, Query, QueryEngine, QueryError,
    QueryResult, ShardedEngine, SpatialQuery, TemporalField, TextualMode, VisualMode,
};
use tvdp_storage::{
    AnnotationSource, ClassificationId, ImageMeta, ImageOrigin, UserId, VisualStore,
};
use tvdp_vision::FeatureKind;

const DIM: usize = 8;
const WORDS: [&str; 6] = ["street", "tent", "trash", "corner", "downtown", "alley"];

fn build_store(n: usize, seed: u64) -> (Arc<VisualStore>, ClassificationId) {
    let store = VisualStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let cls = store
        .register_scheme(
            "cleanliness",
            vec!["clean".into(), "dirty".into(), "encampment".into()],
        )
        .unwrap();
    for i in 0..n {
        let lat = 34.0 + rng.gen_range(0.0..0.05);
        let lon = -118.3 + rng.gen_range(0.0..0.05);
        let gps = GeoPoint::new(lat, lon);
        let fov = if rng.gen_bool(0.8) {
            Some(Fov::new(
                gps,
                rng.gen_range(0.0..360.0),
                rng.gen_range(40.0..80.0),
                rng.gen_range(50.0..150.0),
            ))
        } else {
            None
        };
        let captured = 1_000 + rng.gen_range(0..10_000);
        let n_words = rng.gen_range(1..4);
        let keywords: Vec<String> = (0..n_words)
            .map(|_| WORDS[rng.gen_range(0..WORDS.len())].to_string())
            .collect();
        let meta = ImageMeta {
            uploader: UserId(rng.gen_range(0..5)),
            gps,
            fov,
            captured_at: captured,
            uploaded_at: captured + rng.gen_range(1..500),
            keywords,
        };
        let id = store.add_image(meta, ImageOrigin::Original, None).unwrap();
        // Clustered features: class c centred at 2c, so random examples
        // drawn the same way produce well-separated distances (no ties).
        let class = i % 3;
        let feature: Vec<f32> = (0..DIM)
            .map(|_| class as f32 * 2.0 + rng.gen_range(-0.3..0.3))
            .collect();
        store.put_feature(id, FeatureKind::Cnn, feature).unwrap();
        store
            .annotate(
                id,
                cls,
                class,
                rng.gen_range(0.5..1.0),
                AnnotationSource::Human(UserId(0)),
                None,
            )
            .unwrap();
    }
    (Arc::new(store), cls)
}

/// A query example drawn from the same clustered distribution as the
/// stored features.
fn random_example(rng: &mut StdRng) -> Vec<f32> {
    let class = rng.gen_range(0..3usize);
    (0..DIM)
        .map(|_| class as f32 * 2.0 + rng.gen_range(-0.3..0.3))
        .collect()
}

fn random_text(rng: &mut StdRng) -> String {
    let n = rng.gen_range(1..3);
    (0..n)
        .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

fn random_leaf(rng: &mut StdRng, cls: ClassificationId) -> Query {
    match rng.gen_range(0..11u32) {
        0 => {
            let from = 1_000 + rng.gen_range(0..8_000);
            Query::Temporal {
                field: if rng.gen_bool(0.5) {
                    TemporalField::Captured
                } else {
                    TemporalField::Uploaded
                },
                from,
                to: from + rng.gen_range(500..4_000),
            }
        }
        1 => Query::Textual {
            text: random_text(rng),
            mode: if rng.gen_bool(0.5) {
                TextualMode::All
            } else {
                TextualMode::Any
            },
        },
        2 => Query::Textual {
            text: random_text(rng),
            mode: TextualMode::Ranked(rng.gen_range(3..25)),
        },
        3 => Query::Categorical {
            scheme: cls,
            label: rng.gen_range(0..3),
            min_confidence: rng.gen_range(0.4..0.9),
        },
        4 => {
            let lat = 34.0 + rng.gen_range(0.0..0.04);
            let lon = -118.3 + rng.gen_range(0.0..0.04);
            let side = rng.gen_range(0.005..0.03);
            Query::Spatial(SpatialQuery::Range(BBox::new(
                lat,
                lon,
                lat + side,
                lon + side,
            )))
        }
        5 => {
            let a = GeoPoint::new(
                34.0 + rng.gen_range(0.0..0.03),
                -118.3 + rng.gen_range(0.0..0.03),
            );
            Query::Spatial(SpatialQuery::Within(GeoPolygon::new(vec![
                a,
                a.destination(90.0, rng.gen_range(1_000.0..4_000.0)),
                a.destination(0.0, rng.gen_range(1_000.0..4_000.0)),
            ])))
        }
        6 => Query::Spatial(SpatialQuery::Nearest {
            point: GeoPoint::new(
                34.0 + rng.gen_range(0.0..0.05),
                -118.3 + rng.gen_range(0.0..0.05),
            ),
            k: rng.gen_range(1..30),
        }),
        7 => Query::Spatial(SpatialQuery::Covering(GeoPoint::new(
            34.0 + rng.gen_range(0.0..0.05),
            -118.3 + rng.gen_range(0.0..0.05),
        ))),
        8 => Query::Spatial(SpatialQuery::Directed {
            region: BBox::new(34.0, -118.3, 34.05, -118.25),
            directions: AngularRange::centered(rng.gen_range(0.0..360.0), 90.0),
        }),
        9 => Query::Visual {
            example: random_example(rng),
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(rng.gen_range(1..40)),
        },
        _ => Query::Visual {
            example: random_example(rng),
            kind: FeatureKind::Cnn,
            mode: VisualMode::Threshold(rng.gen_range(0.8..4.0)),
        },
    }
}

fn random_query(rng: &mut StdRng, depth: usize, cls: ClassificationId) -> Query {
    if depth == 0 {
        return random_leaf(rng, cls);
    }
    match rng.gen_range(0..3u32) {
        0 => {
            let subs = (0..rng.gen_range(2..4))
                .map(|_| random_query(rng, depth - 1, cls))
                .collect();
            Query::And(subs)
        }
        1 => {
            let subs = (0..rng.gen_range(2..4))
                .map(|_| random_query(rng, depth - 1, cls))
                .collect();
            Query::Or(subs)
        }
        _ => random_leaf(rng, cls),
    }
}

/// Canonical form: `(id, score bits)` sorted, so leaf families whose
/// output order is unspecified (e.g. tree-order range scans) compare
/// set-wise while scores still have to match bit for bit.
fn canonical(results: &[QueryResult]) -> Vec<(u64, u64)> {
    let mut rows: Vec<(u64, u64)> = results
        .iter()
        .map(|r| (r.image.raw(), r.score.to_bits()))
        .collect();
    rows.sort_unstable();
    rows
}

#[test]
fn randomized_trees_match_linear_scan() {
    for store_seed in 0..25u64 {
        let (store, cls) = build_store(140, 1_000 + store_seed);
        let engine = QueryEngine::build(Arc::clone(&store), Default::default());
        let linear = LinearExecutor::new(store);
        let mut rng = StdRng::seed_from_u64(store_seed * 7 + 3);
        for _ in 0..6 {
            let q = random_query(&mut rng, 2, cls);
            let e = engine.execute(&q);
            let l = linear.execute(&q);
            assert_eq!(canonical(&e), canonical(&l), "mismatch on {q:?}");
        }
    }
}

#[test]
fn batch_output_bytes_identical_across_pool_widths() {
    let (store, cls) = build_store(160, 99);
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let mut rng = StdRng::seed_from_u64(4_242);
    let queries: Vec<Query> = (0..24).map(|_| random_query(&mut rng, 2, cls)).collect();
    let one = engine.execute_batch_with_pool(&queries, &Pool::new(1));
    let eight = engine.execute_batch_with_pool(&queries, &Pool::new(8));
    assert_eq!(format!("{one:?}"), format!("{eight:?}"));
}

/// Regression: the conjunction fast path used to treat "one range + one
/// visual leaf" as its trigger but then filtered the *rest* by kind, so
/// a second visual leaf of a different [`FeatureKind`] was silently
/// dropped from the conjunction. It must now be rejected up front.
#[test]
fn second_visual_leaf_of_other_kind_is_rejected() {
    let (store, _) = build_store(60, 7);
    let engine = QueryEngine::build(store, Default::default());
    let q = Query::And(vec![
        Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.05, -118.25))),
        Query::Visual {
            example: vec![0.0; DIM],
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(5),
        },
        Query::Visual {
            example: vec![0.0; DIM],
            kind: FeatureKind::ColorHistogram,
            mode: VisualMode::TopK(5),
        },
    ]);
    assert_eq!(
        engine.try_execute(&q),
        Err(QueryError::KindMismatch {
            indexed: FeatureKind::Cnn,
            queried: FeatureKind::ColorHistogram,
        })
    );
}

#[test]
fn standalone_wrong_kind_visual_is_rejected() {
    let (store, _) = build_store(40, 8);
    let engine = QueryEngine::build(store, Default::default());
    let q = Query::Visual {
        example: vec![0.0; DIM],
        kind: FeatureKind::SiftBow,
        mode: VisualMode::Threshold(1.0),
    };
    assert_eq!(
        engine.try_execute(&q),
        Err(QueryError::KindMismatch {
            indexed: FeatureKind::Cnn,
            queried: FeatureKind::SiftBow,
        })
    );
}

#[test]
#[should_panic(expected = "visual kind mismatch")]
fn execute_panics_on_kind_mismatch() {
    let (store, _) = build_store(40, 9);
    let engine = QueryEngine::build(store, Default::default());
    engine.execute(&Query::Visual {
        example: vec![0.0; DIM],
        kind: FeatureKind::ColorHistogram,
        mode: VisualMode::TopK(3),
    });
}

/// Two visual leaves of the *indexed* kind are legal; the conjunction
/// must route them through the general plan and still match the
/// reference exactly.
#[test]
fn two_same_kind_visual_leaves_take_general_plan_and_agree() {
    let (store, _) = build_store(130, 11);
    let engine = QueryEngine::build(Arc::clone(&store), Default::default());
    let linear = LinearExecutor::new(store);
    let q = Query::And(vec![
        Query::Spatial(SpatialQuery::Range(BBox::new(34.0, -118.3, 34.05, -118.25))),
        Query::Visual {
            example: vec![0.2; DIM],
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(40),
        },
        Query::Visual {
            example: vec![0.1; DIM],
            kind: FeatureKind::Cnn,
            mode: VisualMode::Threshold(3.0),
        },
    ]);
    let e = engine.execute(&q);
    let l = linear.execute(&q);
    assert!(!e.is_empty());
    assert_eq!(canonical(&e), canonical(&l));
}

// ---------------------------------------------------------------------
// Shard axis: the same corpus partitioned 1 / 3 / 8 ways must be
// indistinguishable from the single-store reference.
// ---------------------------------------------------------------------

/// Deterministic geo-grid shard routing for the shard-axis tests — a
/// test-local stand-in for the platform's router (this crate cannot
/// depend on `tvdp-core`): FNV-1a over the 0.01°-pitch cell coordinates.
fn shard_for(gps: &GeoPoint, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let cx = (gps.lat / 0.01).floor() as i64;
    let cy = (gps.lon / 0.01).floor() as i64;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cx.to_le_bytes().into_iter().chain(cy.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Splits `source` into `shards` fresh stores by geo-grid routing,
/// preserving every global id (`add_image_at` / `annotate_at` /
/// `register_scheme_at`), so the sharded stores hold exactly the same
/// logical corpus as the single reference store.
fn shard_stores(
    source: &VisualStore,
    cls: ClassificationId,
    shards: usize,
) -> Vec<Arc<VisualStore>> {
    let stores: Vec<VisualStore> = (0..shards).map(|_| VisualStore::new()).collect();
    let scheme = source.scheme(cls).expect("reference scheme");
    for s in &stores {
        s.register_scheme_at(scheme.id, scheme.name.clone(), scheme.labels.clone())
            .unwrap();
    }
    for id in source.image_ids() {
        let rec = source.image(id).expect("listed id");
        let s = &stores[shard_for(&rec.meta.gps, shards)];
        s.add_image_at(id, rec.meta.clone(), rec.origin.clone(), None)
            .unwrap();
        let feature = source.feature(id, FeatureKind::Cnn).expect("cnn feature");
        s.put_feature(id, FeatureKind::Cnn, feature).unwrap();
        for a in source.annotations_of(id) {
            s.annotate_at(
                a.id,
                a.image,
                a.classification,
                a.label,
                a.confidence,
                a.source,
                a.region,
            )
            .unwrap();
        }
    }
    stores.into_iter().map(Arc::new).collect()
}

/// Seal cap small enough that every shard carries several sealed
/// segments *and* a live tail, so both scatter paths are exercised.
const TEST_SEAL_CAP: usize = 16;

#[test]
fn sharded_engine_matches_linear_scan_across_shard_counts() {
    for store_seed in 0..6u64 {
        let (store, cls) = build_store(140, 3_000 + store_seed);
        let linear = LinearExecutor::new(Arc::clone(&store));
        for shards in [1usize, 3, 8] {
            let engine = ShardedEngine::with_seal_cap(
                shard_stores(&store, cls, shards),
                EngineConfig::default(),
                TEST_SEAL_CAP,
            );
            let mut rng = StdRng::seed_from_u64(store_seed * 11 + 5);
            for _ in 0..6 {
                let q = random_query(&mut rng, 2, cls);
                let sharded = engine.try_execute(&q).expect("cnn-only tree");
                let reference = linear.execute(&q);
                assert_eq!(
                    canonical(&sharded),
                    canonical(&reference),
                    "{shards}-shard engine diverged from linear scan on {q:?}"
                );
            }
        }
    }
}

#[test]
fn sharded_batch_bytes_identical_across_shard_counts_and_pool_widths() {
    let (store, cls) = build_store(160, 4_242);
    let mut rng = StdRng::seed_from_u64(4_243);
    let queries: Vec<Query> = (0..24).map(|_| random_query(&mut rng, 2, cls)).collect();
    let mut reference: Option<String> = None;
    for shards in [1usize, 3, 8] {
        let engine = ShardedEngine::with_seal_cap(
            shard_stores(&store, cls, shards),
            EngineConfig::default(),
            TEST_SEAL_CAP,
        );
        for threads in [1usize, 8] {
            let out = engine
                .try_execute_batch_with_pool(&queries, &Pool::new(threads))
                .expect("cnn-only trees");
            let bytes = format!("{out:?}");
            match &reference {
                None => reference = Some(bytes),
                Some(want) => assert_eq!(
                    &bytes, want,
                    "{shards} shards x {threads} threads diverged from 1 shard x 1 thread"
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Quantized-scan axis: the u8-code scan plus exact re-rank must be
// indistinguishable — byte for byte — from the pure-f32 tree traversal
// whenever the re-rank depth is at least k (it is always clamped up to
// k, so every configuration qualifies).
// ---------------------------------------------------------------------

/// Engine config pinning the exact top-k path to one scan.
fn quant_config(mode: QuantMode, rerank_depth: usize) -> EngineConfig {
    EngineConfig {
        quant: QuantConfig { mode, rerank_depth },
        ..EngineConfig::default()
    }
}

/// A corpus large enough that the feature arena freezes multiple chunks
/// (1024 rows each), so real trained codes back the quantized scan.
const QUANT_CORPUS: usize = 2_600;

/// Visual and spatial+visual top-k trees over the clustered corpus.
/// Features are continuous random draws, so distances are tie-free and
/// result order — not just the result set — must agree.
fn quant_workload(rng: &mut StdRng) -> Vec<Query> {
    let mut queries = Vec::new();
    for k in [1usize, 10, 40] {
        queries.push(Query::Visual {
            example: random_example(rng),
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(k),
        });
        let lat = 34.0 + rng.gen_range(0.0..0.03);
        let lon = -118.3 + rng.gen_range(0.0..0.03);
        queries.push(Query::And(vec![
            Query::Spatial(SpatialQuery::Range(BBox::new(
                lat,
                lon,
                lat + rng.gen_range(0.01..0.03),
                lon + rng.gen_range(0.01..0.03),
            ))),
            Query::Visual {
                example: random_example(rng),
                kind: FeatureKind::Cnn,
                mode: VisualMode::TopK(k),
            },
        ]));
    }
    queries
}

#[test]
fn quantized_scan_is_bit_identical_to_exact_tree() {
    let (store, _) = build_store(QUANT_CORPUS, 77);
    let exact = QueryEngine::build(Arc::clone(&store), quant_config(QuantMode::Never, 64));
    let mut rng = StdRng::seed_from_u64(909);
    let queries = quant_workload(&mut rng);
    // Depth 1 exercises the provable minimum (clamped up to k); depth
    // 160 exercises a re-rank set far wider than any queried k.
    for rerank_depth in [1usize, 160] {
        let quantized = QueryEngine::build(
            Arc::clone(&store),
            quant_config(QuantMode::Always, rerank_depth),
        );
        for q in &queries {
            let reference = exact.execute(q);
            let scanned = quantized.execute(q);
            assert!(!reference.is_empty());
            assert_eq!(
                format!("{reference:?}"),
                format!("{scanned:?}"),
                "quantized scan (depth {rerank_depth}) diverged on {q:?}"
            );
        }
    }
}

#[test]
fn quantized_parity_holds_across_pool_widths_and_shard_counts() {
    let (store, cls) = build_store(QUANT_CORPUS, 78);
    let mut rng = StdRng::seed_from_u64(910);
    let queries = quant_workload(&mut rng);
    // Seal cap large enough that shard stores still freeze arena chunks
    // per segment batch yet every shard carries several sealed segments.
    let mut reference: Option<String> = None;
    for shards in [1usize, 2] {
        for mode in [QuantMode::Never, QuantMode::Always] {
            let engine = ShardedEngine::with_seal_cap(
                shard_stores(&store, cls, shards),
                quant_config(mode, 64),
                512,
            );
            for threads in [1usize, 8] {
                let out = engine
                    .try_execute_batch_with_pool(&queries, &Pool::new(threads))
                    .expect("cnn-only trees");
                let bytes = format!("{out:?}");
                match &reference {
                    None => reference = Some(bytes),
                    Some(want) => assert_eq!(
                        &bytes, want,
                        "{shards} shards x {threads} threads x {mode:?} diverged"
                    ),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Spatial-region validation: boxes that wrap the antimeridian (or carry
// out-of-range latitudes) must be rejected with a typed error, not
// silently matched against nothing.
// ---------------------------------------------------------------------

/// Struct-literal construction bypasses the `BBox::new` assertions the
/// same way an untrusted deserialized query would.
fn wrapped_bbox() -> BBox {
    BBox {
        min_lat: 10.0,
        min_lon: 170.0,
        max_lat: 20.0,
        max_lon: -170.0,
    }
}

#[test]
fn engine_rejects_antimeridian_wrapping_region() {
    let (store, _) = build_store(40, 6_060);
    let engine = QueryEngine::build(store, Default::default());
    let q = Query::Spatial(SpatialQuery::Range(wrapped_bbox()));
    assert_eq!(
        engine.try_execute(&q),
        Err(QueryError::Geo(GeoError::AntimeridianSpan {
            min_lon: 170.0,
            max_lon: -170.0,
        }))
    );
}

#[test]
fn sharded_engine_rejects_antimeridian_wrapping_region() {
    let (store, cls) = build_store(40, 6_061);
    let engine = ShardedEngine::with_seal_cap(
        shard_stores(&store, cls, 2),
        EngineConfig::default(),
        TEST_SEAL_CAP,
    );
    let q = Query::Spatial(SpatialQuery::Directed {
        region: wrapped_bbox(),
        directions: AngularRange::centered(90.0, 45.0),
    });
    assert_eq!(
        engine.try_execute(&q),
        Err(QueryError::Geo(GeoError::AntimeridianSpan {
            min_lon: 170.0,
            max_lon: -170.0,
        }))
    );
}

#[test]
fn sharded_engine_rejects_wrong_kind_visual() {
    let (store, cls) = build_store(40, 5_050);
    let engine = ShardedEngine::with_seal_cap(
        shard_stores(&store, cls, 3),
        EngineConfig::default(),
        TEST_SEAL_CAP,
    );
    let q = Query::Visual {
        example: vec![0.0; DIM],
        kind: FeatureKind::ColorHistogram,
        mode: VisualMode::TopK(3),
    };
    assert_eq!(
        engine.try_execute(&q),
        Err(QueryError::KindMismatch {
            indexed: FeatureKind::Cnn,
            queried: FeatureKind::ColorHistogram,
        })
    );
}
