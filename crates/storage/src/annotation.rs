//! Content classifications and annotations.
//!
//! The schema distinguishes a *classification scheme* (a named labelling
//! task such as "street cleanliness" with its label vocabulary) from the
//! per-image *annotations* referencing those labels. An image may carry
//! annotations from several schemes simultaneously — the mechanism behind
//! the paper's translational-data story (cleanliness labels reused for
//! homeless counting; graffiti labels added later over the same images).

use serde::{Deserialize, Serialize};

use crate::ids::{AnnotationId, ClassificationId, ImageId, ModelId, UserId};

/// A named labelling task with a fixed label vocabulary
/// (`Image_Content_Classification` + `..._Types` in Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassificationScheme {
    /// Scheme identifier.
    pub id: ClassificationId,
    /// Human-readable name, e.g. `"street-cleanliness"`.
    pub name: String,
    /// Ordered label vocabulary; annotation label indices point here.
    pub labels: Vec<String>,
}

impl ClassificationScheme {
    /// Creates a scheme; the vocabulary must be non-empty and unique.
    pub fn new(id: ClassificationId, name: impl Into<String>, labels: Vec<String>) -> Self {
        assert!(!labels.is_empty(), "empty label vocabulary");
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "duplicate labels");
        Self {
            id,
            name: name.into(),
            labels,
        }
    }

    /// Index of a label by name.
    pub fn label_index(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }
}

/// Who (or what) produced an annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnnotationSource {
    /// A human label (trusted; confidence 1.0 by convention).
    Human(UserId),
    /// A machine label with the producing model.
    Machine(ModelId),
}

/// An axis-aligned pixel region inside an image, for part-of-image labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionOfInterest {
    /// Left edge in pixels.
    pub x: usize,
    /// Top edge in pixels.
    pub y: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

/// One annotation row (`Image_Content_Annotation`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    /// Row identifier.
    pub id: AnnotationId,
    /// Annotated image.
    pub image: ImageId,
    /// Which classification scheme the label belongs to.
    pub classification: ClassificationId,
    /// Index into the scheme's label vocabulary.
    pub label: usize,
    /// Confidence in `[0, 1]`; human annotations use 1.0.
    pub confidence: f32,
    /// Provenance.
    pub source: AnnotationSource,
    /// Optional sub-image region; `None` labels the whole image.
    pub region: Option<RegionOfInterest>,
}

impl Annotation {
    /// Creates an annotation, validating the confidence range.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: AnnotationId,
        image: ImageId,
        classification: ClassificationId,
        label: usize,
        confidence: f32,
        source: AnnotationSource,
        region: Option<RegionOfInterest>,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&confidence),
            "confidence out of range: {confidence}"
        );
        Self {
            id,
            image,
            classification,
            label,
            confidence,
            source,
            region,
        }
    }

    /// Whether a human produced this annotation.
    pub fn is_human(&self) -> bool {
        matches!(self.source, AnnotationSource::Human(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_label_lookup() {
        let s = ClassificationScheme::new(
            ClassificationId(1),
            "street-cleanliness",
            vec![
                "bulky item".into(),
                "illegal dumping".into(),
                "clean".into(),
            ],
        );
        assert_eq!(s.label_index("illegal dumping"), Some(1));
        assert_eq!(s.label_index("graffiti"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate labels")]
    fn duplicate_labels_rejected() {
        let _ = ClassificationScheme::new(ClassificationId(1), "x", vec!["a".into(), "a".into()]);
    }

    #[test]
    fn annotation_source_kinds() {
        let human = Annotation::new(
            AnnotationId(1),
            ImageId(1),
            ClassificationId(1),
            0,
            1.0,
            AnnotationSource::Human(UserId(3)),
            None,
        );
        let machine = Annotation::new(
            AnnotationId(2),
            ImageId(1),
            ClassificationId(1),
            2,
            0.83,
            AnnotationSource::Machine(ModelId(5)),
            Some(RegionOfInterest {
                x: 0,
                y: 0,
                width: 10,
                height: 10,
            }),
        );
        assert!(human.is_human());
        assert!(!machine.is_human());
        assert_eq!(machine.region.unwrap().width, 10);
    }

    #[test]
    #[should_panic(expected = "confidence out of range")]
    fn bad_confidence_rejected() {
        let _ = Annotation::new(
            AnnotationId(1),
            ImageId(1),
            ClassificationId(1),
            0,
            1.5,
            AnnotationSource::Human(UserId(1)),
            None,
        );
    }
}
