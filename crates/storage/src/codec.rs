//! Self-contained JSON codec for the persistence formats.
//!
//! The snapshot and WAL formats are JSON lines, but this workspace must
//! serialize without any external JSON crate at runtime, so this module
//! implements the small JSON subset the on-disk formats need: a value
//! tree ([`Value`]), a renderer, a recursive-descent parser, and typed
//! encoders/decoders for every persisted row type.
//!
//! Numbers are kept as their source token ([`Value::Num`] holds the raw
//! string) and parsed on demand into the target type, so `u64` ids above
//! 2^53 and shortest-round-trip floats survive exactly: Rust's float
//! `Display` prints the shortest decimal that uniquely identifies the
//! value, and `str::parse` recovers it bit-for-bit.
//!
//! Pixel blobs are encoded as lowercase hex strings rather than JSON
//! byte arrays — half the size and still greppable line-by-line.

use tvdp_geo::{BBox, Fov, GeoPoint};
use tvdp_vision::FeatureKind;

use crate::annotation::{Annotation, AnnotationSource, ClassificationScheme, RegionOfInterest};
use crate::ids::{AnnotationId, ClassificationId, ImageId, ModelId, UserId};
use crate::record::{ImageMeta, ImageOrigin, ImageRecord};

/// A decode failure: human-readable message with enough context to
/// pinpoint the bad field.
pub type DecodeError = String;

/// A JSON value. Objects preserve insertion order (encoding is
/// deterministic; lookups are linear, which is fine for the small,
/// fixed-shape objects the formats use).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token to avoid double rounding.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered field list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds a number value from anything whose `Display` output
    /// round-trips through `FromStr` (all primitive ints and floats).
    pub fn num(n: impl std::fmt::Display) -> Value {
        Value::Num(n.to_string())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a number token that parses as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, when it is a number token that parses as one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, when it is a number token.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Shared sentinel so missing-field indexing can return a reference.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Panic-free object indexing: a missing field (or a non-object
    /// receiver) yields [`Value::Null`], so chained lookups like
    /// `body["items"][0]["width"]` degrade to `Null` instead of
    /// panicking.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Panic-free array indexing; out-of-range (or a non-array
    /// receiver) yields [`Value::Null`].
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Arr(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Value {
    /// Renders to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(tok) => out.push_str(tok),
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth the parser accepts; the persisted formats are
/// at most ~6 levels deep, so this only guards corrupt input from
/// overflowing the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document, requiring it to consume the whole input.
pub fn parse(text: &str) -> Result<Value, DecodeError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), DecodeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, DecodeError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, DecodeError> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<Value, DecodeError> {
        let start = self.pos;
        // Accept the JSON number grammar plus Rust's `inf`/`NaN` float
        // Display forms (a documented extension of the format).
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit()
                || matches!(
                    b,
                    b'-' | b'+' | b'.' | b'e' | b'E' | b'i' | b'n' | b'f' | b'N' | b'a'
                )
        }) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a value at offset {start}"));
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number token".to_string())?;
        // Validate now so `Num` tokens always parse as *some* number.
        tok.parse::<f64>()
            .map_err(|_| format!("bad number `{tok}` at offset {start}"))?;
        Ok(Value::Num(tok.to_string()))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while self
                .peek()
                .is_some_and(|b| b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-utf8 string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("bad low surrogate".into());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(c).ok_or("bad surrogate pair")?);
                            } else {
                                out.push(char::from_u32(cp).ok_or("bad \\u escape")?);
                            }
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, DecodeError> {
        let end = self.pos.checked_add(4).ok_or("truncated \\u escape")?;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        self.pos = end;
        let s = std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape".to_string())?;
        u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape `{s}`"))
    }

    fn array(&mut self, depth: usize) -> Result<Value, DecodeError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, DecodeError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Typed field helpers.
// ---------------------------------------------------------------------

/// Fetches a required object field.
pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DecodeError> {
    v.get(name).ok_or_else(|| format!("missing field `{name}`"))
}

/// Parses a number value into any `FromStr` numeric type.
pub fn num<T: std::str::FromStr>(v: &Value, what: &str) -> Result<T, DecodeError> {
    match v {
        Value::Num(tok) => tok
            .parse()
            .map_err(|_| format!("{what}: number `{tok}` out of range")),
        _ => Err(format!("{what}: expected a number")),
    }
}

/// Required numeric object field.
pub fn num_field<T: std::str::FromStr>(v: &Value, name: &str) -> Result<T, DecodeError> {
    num(field(v, name)?, name)
}

/// Required string object field.
pub fn str_field<'v>(v: &'v Value, name: &str) -> Result<&'v str, DecodeError> {
    match field(v, name)? {
        Value::Str(s) => Ok(s),
        _ => Err(format!("{name}: expected a string")),
    }
}

/// Required array object field.
pub fn arr_field<'v>(v: &'v Value, name: &str) -> Result<&'v [Value], DecodeError> {
    match field(v, name)? {
        Value::Arr(items) => Ok(items),
        _ => Err(format!("{name}: expected an array")),
    }
}

/// Lowercase hex encoding of a byte slice.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap_or('0'));
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap_or('0'));
    }
    out
}

/// Decodes a lowercase/uppercase hex string.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, DecodeError> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit `{}`", pair[0] as char))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit `{}`", pair[1] as char))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Row-type encoders/decoders.
// ---------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Encodes a feature kind as its variant name.
pub fn encode_kind(kind: FeatureKind) -> Value {
    Value::str(match kind {
        FeatureKind::ColorHistogram => "ColorHistogram",
        FeatureKind::SiftBow => "SiftBow",
        FeatureKind::Cnn => "Cnn",
    })
}

/// Decodes a feature kind.
pub fn decode_kind(v: &Value) -> Result<FeatureKind, DecodeError> {
    match v {
        Value::Str(s) => match s.as_str() {
            "ColorHistogram" => Ok(FeatureKind::ColorHistogram),
            "SiftBow" => Ok(FeatureKind::SiftBow),
            "Cnn" => Ok(FeatureKind::Cnn),
            other => Err(format!("unknown feature kind `{other}`")),
        },
        _ => Err("feature kind: expected a string".into()),
    }
}

/// Encodes a geographic point.
pub fn encode_point(p: &GeoPoint) -> Value {
    obj(vec![("lat", Value::num(p.lat)), ("lon", Value::num(p.lon))])
}

/// Decodes a geographic point.
pub fn decode_point(v: &Value) -> Result<GeoPoint, DecodeError> {
    Ok(GeoPoint {
        lat: num_field(v, "lat")?,
        lon: num_field(v, "lon")?,
    })
}

/// Encodes a field-of-view descriptor.
pub fn encode_fov(f: &Fov) -> Value {
    obj(vec![
        ("camera", encode_point(&f.camera)),
        ("heading_deg", Value::num(f.heading_deg)),
        ("angle_deg", Value::num(f.angle_deg)),
        ("radius_m", Value::num(f.radius_m)),
    ])
}

/// Decodes a field-of-view descriptor.
pub fn decode_fov(v: &Value) -> Result<Fov, DecodeError> {
    Ok(Fov {
        camera: decode_point(field(v, "camera")?)?,
        heading_deg: num_field(v, "heading_deg")?,
        angle_deg: num_field(v, "angle_deg")?,
        radius_m: num_field(v, "radius_m")?,
    })
}

/// Encodes a bounding box.
pub fn encode_bbox(b: &BBox) -> Value {
    obj(vec![
        ("min_lat", Value::num(b.min_lat)),
        ("min_lon", Value::num(b.min_lon)),
        ("max_lat", Value::num(b.max_lat)),
        ("max_lon", Value::num(b.max_lon)),
    ])
}

/// Decodes a bounding box.
pub fn decode_bbox(v: &Value) -> Result<BBox, DecodeError> {
    Ok(BBox {
        min_lat: num_field(v, "min_lat")?,
        min_lon: num_field(v, "min_lon")?,
        max_lat: num_field(v, "max_lat")?,
        max_lon: num_field(v, "max_lon")?,
    })
}

/// Encodes an image origin (`"Original"` or a tagged `Augmented` object).
pub fn encode_origin(o: &ImageOrigin) -> Value {
    match o {
        ImageOrigin::Original => Value::str("Original"),
        ImageOrigin::Augmented { parent, op } => obj(vec![(
            "Augmented",
            obj(vec![
                ("parent", Value::num(parent.raw())),
                ("op", Value::str(op.clone())),
            ]),
        )]),
    }
}

/// Decodes an image origin.
pub fn decode_origin(v: &Value) -> Result<ImageOrigin, DecodeError> {
    match v {
        Value::Str(s) if s == "Original" => Ok(ImageOrigin::Original),
        Value::Obj(_) => {
            let inner = field(v, "Augmented")?;
            Ok(ImageOrigin::Augmented {
                parent: ImageId(num_field(inner, "parent")?),
                op: str_field(inner, "op")?.to_string(),
            })
        }
        _ => Err("origin: expected `Original` or an `Augmented` object".into()),
    }
}

/// Encodes upload-time metadata.
pub fn encode_meta(m: &ImageMeta) -> Value {
    obj(vec![
        ("uploader", Value::num(m.uploader.raw())),
        ("gps", encode_point(&m.gps)),
        ("fov", m.fov.as_ref().map_or(Value::Null, encode_fov)),
        ("captured_at", Value::num(m.captured_at)),
        ("uploaded_at", Value::num(m.uploaded_at)),
        (
            "keywords",
            Value::Arr(m.keywords.iter().map(|k| Value::str(k.clone())).collect()),
        ),
    ])
}

/// Decodes upload-time metadata.
pub fn decode_meta(v: &Value) -> Result<ImageMeta, DecodeError> {
    let fov = match field(v, "fov")? {
        Value::Null => None,
        f => Some(decode_fov(f)?),
    };
    let keywords = arr_field(v, "keywords")?
        .iter()
        .map(|k| match k {
            Value::Str(s) => Ok(s.clone()),
            _ => Err("keywords: expected strings".to_string()),
        })
        .collect::<Result<_, _>>()?;
    Ok(ImageMeta {
        uploader: UserId(num_field(v, "uploader")?),
        gps: decode_point(field(v, "gps")?)?,
        fov,
        captured_at: num_field(v, "captured_at")?,
        uploaded_at: num_field(v, "uploaded_at")?,
        keywords,
    })
}

/// Encodes a full image record.
pub fn encode_record(r: &ImageRecord) -> Value {
    obj(vec![
        ("id", Value::num(r.id.raw())),
        ("meta", encode_meta(&r.meta)),
        ("scene_location", encode_bbox(&r.scene_location)),
        ("origin", encode_origin(&r.origin)),
        ("width", Value::num(r.width)),
        ("height", Value::num(r.height)),
    ])
}

/// Decodes a full image record.
pub fn decode_record(v: &Value) -> Result<ImageRecord, DecodeError> {
    Ok(ImageRecord {
        id: ImageId(num_field(v, "id")?),
        meta: decode_meta(field(v, "meta")?)?,
        scene_location: decode_bbox(field(v, "scene_location")?)?,
        origin: decode_origin(field(v, "origin")?)?,
        width: num_field(v, "width")?,
        height: num_field(v, "height")?,
    })
}

/// Encodes a classification scheme.
pub fn encode_scheme(s: &ClassificationScheme) -> Value {
    obj(vec![
        ("id", Value::num(s.id.raw())),
        ("name", Value::str(s.name.clone())),
        (
            "labels",
            Value::Arr(s.labels.iter().map(|l| Value::str(l.clone())).collect()),
        ),
    ])
}

/// Decodes a classification scheme (structure only; vocabulary
/// invariants are enforced by snapshot validation).
pub fn decode_scheme(v: &Value) -> Result<ClassificationScheme, DecodeError> {
    let labels = arr_field(v, "labels")?
        .iter()
        .map(|l| match l {
            Value::Str(s) => Ok(s.clone()),
            _ => Err("labels: expected strings".to_string()),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ClassificationScheme {
        id: ClassificationId(num_field(v, "id")?),
        name: str_field(v, "name")?.to_string(),
        labels,
    })
}

fn encode_source(s: &AnnotationSource) -> Value {
    match s {
        AnnotationSource::Human(u) => obj(vec![("Human", Value::num(u.raw()))]),
        AnnotationSource::Machine(m) => obj(vec![("Machine", Value::num(m.raw()))]),
    }
}

fn decode_source(v: &Value) -> Result<AnnotationSource, DecodeError> {
    if let Some(u) = v.get("Human") {
        Ok(AnnotationSource::Human(UserId(num(u, "Human")?)))
    } else if let Some(m) = v.get("Machine") {
        Ok(AnnotationSource::Machine(ModelId(num(m, "Machine")?)))
    } else {
        Err("source: expected `Human` or `Machine`".into())
    }
}

fn encode_region(r: &RegionOfInterest) -> Value {
    obj(vec![
        ("x", Value::num(r.x)),
        ("y", Value::num(r.y)),
        ("width", Value::num(r.width)),
        ("height", Value::num(r.height)),
    ])
}

fn decode_region(v: &Value) -> Result<RegionOfInterest, DecodeError> {
    Ok(RegionOfInterest {
        x: num_field(v, "x")?,
        y: num_field(v, "y")?,
        width: num_field(v, "width")?,
        height: num_field(v, "height")?,
    })
}

/// Encodes an annotation row.
pub fn encode_annotation(a: &Annotation) -> Value {
    obj(vec![
        ("id", Value::num(a.id.raw())),
        ("image", Value::num(a.image.raw())),
        ("classification", Value::num(a.classification.raw())),
        ("label", Value::num(a.label)),
        ("confidence", Value::num(a.confidence)),
        ("source", encode_source(&a.source)),
        (
            "region",
            a.region.as_ref().map_or(Value::Null, encode_region),
        ),
    ])
}

/// Decodes an annotation row (structure only; range invariants are
/// enforced by snapshot validation).
pub fn decode_annotation(v: &Value) -> Result<Annotation, DecodeError> {
    let region = match field(v, "region")? {
        Value::Null => None,
        r => Some(decode_region(r)?),
    };
    Ok(Annotation {
        id: AnnotationId(num_field(v, "id")?),
        image: ImageId(num_field(v, "image")?),
        classification: ClassificationId(num_field(v, "classification")?),
        label: num_field(v, "label")?,
        confidence: num_field(v, "confidence")?,
        source: decode_source(field(v, "source")?)?,
        region,
    })
}

/// Encodes a feature vector as a JSON number array.
pub fn encode_vector(v: &[f32]) -> Value {
    Value::Arr(v.iter().map(Value::num).collect())
}

/// Decodes a feature vector.
pub fn decode_vector(v: &Value) -> Result<Vec<f32>, DecodeError> {
    match v {
        Value::Arr(items) => items.iter().map(|x| num(x, "vector")).collect(),
        _ => Err("vector: expected an array".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for src in ["null", "true", "false", "0", "-12.5", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(v.render(), src);
        }
    }

    #[test]
    fn float_tokens_roundtrip_exactly() {
        for x in [0.1_f64, -1.0 / 3.0, 1e-12, f64::MAX, 34.052_235] {
            let v = Value::num(x);
            let back: f64 = num(&parse(&v.render()).unwrap(), "x").unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
        for x in [0.1_f32, f32::MIN_POSITIVE, -7.25e-3] {
            let v = Value::num(x);
            let back: f32 = num(&parse(&v.render()).unwrap(), "x").unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn u64_beyond_f64_precision_roundtrips() {
        let big = u64::MAX - 1;
        let v = Value::num(big);
        let back: u64 = num(&parse(&v.render()).unwrap(), "id").unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}f λ 漢 🚀";
        let mut out = String::new();
        render_string(nasty, &mut out);
        let v = parse(&out).unwrap();
        assert_eq!(v, Value::Str(nasty.to_string()));
        // \u escapes (incl. surrogate pairs) parse too.
        assert_eq!(
            parse("\"\\ud83d\\ude00\\u0041\"").unwrap(),
            Value::Str("😀A".to_string())
        );
    }

    #[test]
    fn nested_structures_roundtrip() {
        let src = r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.render(), src.replace(", ", ","));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nul",
            "01a",
            "\"\\q\"",
            "\"\\ud83d\"", // lone high surrogate
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_rejected_not_overflowed() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = hex_encode(&bytes);
        assert_eq!(hex_decode(&hex).unwrap(), bytes);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn record_roundtrip() {
        let rec = ImageRecord::new(
            ImageId(42),
            ImageMeta {
                uploader: UserId(7),
                gps: GeoPoint::new(34.052_235, -118.243_683),
                fov: Some(Fov::new(GeoPoint::new(34.05, -118.24), 123.4, 60.0, 80.5)),
                captured_at: -5,
                uploaded_at: 1_546_300_800,
                keywords: vec!["street \"corner\"".into(), "λ".into()],
            },
            ImageOrigin::Augmented {
                parent: ImageId(41),
                op: "flip_h".into(),
            },
            64,
            48,
        );
        let back = decode_record(&parse(&encode_record(&rec).render()).unwrap()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn annotation_and_scheme_roundtrip() {
        let scheme = ClassificationScheme {
            id: ClassificationId(3),
            name: "street-cleanliness".into(),
            labels: vec!["clean".into(), "dirty".into()],
        };
        let back = decode_scheme(&parse(&encode_scheme(&scheme).render()).unwrap()).unwrap();
        assert_eq!(back, scheme);

        for source in [
            AnnotationSource::Human(UserId(1)),
            AnnotationSource::Machine(ModelId(9)),
        ] {
            let ann = Annotation {
                id: AnnotationId(5),
                image: ImageId(42),
                classification: ClassificationId(3),
                label: 1,
                confidence: 0.75,
                source,
                region: Some(RegionOfInterest {
                    x: 1,
                    y: 2,
                    width: 3,
                    height: 4,
                }),
            };
            let back =
                decode_annotation(&parse(&encode_annotation(&ann).render()).unwrap()).unwrap();
            assert_eq!(back, ann);
        }
    }

    #[test]
    fn vector_roundtrip_is_bit_exact() {
        let v = vec![0.1_f32, -2.5e-7, 1.0, f32::MIN_POSITIVE];
        let back = decode_vector(&parse(&encode_vector(&v).render()).unwrap()).unwrap();
        assert_eq!(
            back.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
