//! Deterministic group-commit batching policy for the WAL.
//!
//! [`Wal::append_batch`](crate::wal::Wal::append_batch) gives the
//! mechanism — N framed records, one fsync. This module gives the
//! *policy*: when a stream of operations should be cut into batches.
//! The policy is driven entirely by explicit inputs (op count, framed
//! byte size, and a caller-supplied virtual tick), never by wall-clock
//! time, so the same op stream with the same tick stamps produces the
//! same batch boundaries on every run and every machine — a
//! prerequisite for the byte-identical-recovery guarantees the torture
//! suite asserts.
//!
//! The queue itself is single-owner (callers hold it inside whatever
//! lock guards their journal); it does no I/O and takes no locks.

use crate::wal::{frame, WalOp};

/// When a pending group commit must be flushed. A batch is cut as soon
/// as *any* threshold is reached; every threshold is compared against
/// deterministic quantities only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitPolicy {
    /// Flush once this many ops are pending. Must be >= 1.
    pub max_ops: usize,
    /// Flush once the pending framed bytes reach this size. A single
    /// op larger than the budget still forms a (singleton-or-more)
    /// batch — the threshold triggers *at or above*, it never splits a
    /// record.
    pub max_bytes: usize,
    /// Flush once the oldest pending op has waited this many virtual
    /// ticks. `0` means every enqueue is immediately due (per-op
    /// commit). Ticks are whatever unit the caller's virtual clock
    /// counts; the policy only compares differences.
    pub max_ticks: u64,
}

impl GroupCommitPolicy {
    /// Policy equivalent to per-op commit: every enqueued op is due at
    /// once. Useful as a baseline and for callers that must not defer.
    pub fn per_op() -> GroupCommitPolicy {
        GroupCommitPolicy {
            max_ops: 1,
            max_bytes: usize::MAX,
            max_ticks: 0,
        }
    }
}

impl Default for GroupCommitPolicy {
    /// Defaults tuned for ingest bursts: cut at 64 ops or 1 MiB of
    /// framed bytes, and never hold an op for more than 4 virtual
    /// ticks.
    fn default() -> GroupCommitPolicy {
        GroupCommitPolicy {
            max_ops: 64,
            max_bytes: 1 << 20,
            max_ticks: 4,
        }
    }
}

/// A pending group commit: ops that have been validated and sequenced
/// but not yet journaled. The owner enqueues ops with their arrival
/// tick, asks [`CommitQueue::should_flush`], and drains with
/// [`CommitQueue::take_batch`] into one
/// [`Wal::append_batch`](crate::wal::Wal::append_batch) call.
#[derive(Debug)]
pub struct CommitQueue {
    policy: GroupCommitPolicy,
    pending: Vec<WalOp>,
    pending_bytes: usize,
    /// Tick at which the oldest pending op arrived.
    oldest_tick: u64,
}

impl CommitQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: GroupCommitPolicy) -> CommitQueue {
        CommitQueue {
            policy,
            pending: Vec::new(),
            pending_bytes: 0,
            oldest_tick: 0,
        }
    }

    /// Adds one op arriving at virtual tick `now` and reports whether
    /// the batch is now due. The framed size is computed here once so
    /// the byte threshold tracks exactly what the WAL will write.
    pub fn enqueue(&mut self, op: WalOp, now: u64) -> bool {
        if self.pending.is_empty() {
            self.oldest_tick = now;
        }
        self.pending_bytes += frame(&op.encode()).len();
        self.pending.push(op);
        self.should_flush(now)
    }

    /// Whether the pending batch must be flushed as of virtual tick
    /// `now`. An empty queue is never due.
    pub fn should_flush(&self, now: u64) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        self.pending.len() >= self.policy.max_ops
            || self.pending_bytes >= self.policy.max_bytes
            || now.saturating_sub(self.oldest_tick) >= self.policy.max_ticks
    }

    /// Drains and returns the pending batch (possibly empty), resetting
    /// the queue.
    pub fn take_batch(&mut self) -> Vec<WalOp> {
        self.pending_bytes = 0;
        std::mem::take(&mut self.pending)
    }

    /// Number of ops waiting for the next flush.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Framed bytes waiting for the next flush.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// The policy this queue cuts batches under.
    pub fn policy(&self) -> GroupCommitPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ImageId;
    use tvdp_vision::FeatureKind;

    fn op(n: usize) -> WalOp {
        WalOp::PutFeature {
            image: ImageId(n as u64),
            kind: FeatureKind::Cnn,
            vector: vec![n as f32; 4],
        }
    }

    #[test]
    fn op_count_threshold_cuts_batch() {
        let mut q = CommitQueue::new(GroupCommitPolicy {
            max_ops: 3,
            max_bytes: usize::MAX,
            max_ticks: u64::MAX,
        });
        assert!(!q.enqueue(op(0), 0));
        assert!(!q.enqueue(op(1), 0));
        assert!(q.enqueue(op(2), 0));
        let batch = q.take_batch();
        assert_eq!(batch.len(), 3);
        assert_eq!(q.pending_ops(), 0);
        assert_eq!(q.pending_bytes(), 0);
        assert!(!q.should_flush(0), "drained queue is never due");
    }

    #[test]
    fn byte_threshold_tracks_framed_size() {
        let framed = crate::wal::frame(&op(0).encode()).len();
        let mut q = CommitQueue::new(GroupCommitPolicy {
            max_ops: usize::MAX,
            max_bytes: framed + 1,
            max_ticks: u64::MAX,
        });
        assert!(!q.enqueue(op(0), 0));
        assert_eq!(q.pending_bytes(), framed);
        assert!(q.enqueue(op(1), 0), "second op crosses the byte budget");
    }

    #[test]
    fn tick_threshold_measures_oldest_op_wait() {
        let mut q = CommitQueue::new(GroupCommitPolicy {
            max_ops: usize::MAX,
            max_bytes: usize::MAX,
            max_ticks: 5,
        });
        assert!(!q.enqueue(op(0), 10));
        assert!(!q.should_flush(14));
        assert!(q.should_flush(15), "oldest op has waited max_ticks");
        // A later enqueue does not reset the age of the batch.
        assert!(q.enqueue(op(1), 15));
    }

    #[test]
    fn per_op_policy_is_always_immediately_due() {
        let mut q = CommitQueue::new(GroupCommitPolicy::per_op());
        assert!(q.enqueue(op(0), 99));
        assert_eq!(q.take_batch().len(), 1);
    }

    #[test]
    fn identical_streams_cut_identical_batches() {
        // Determinism: same ops + same ticks => same batch boundaries.
        let run = || {
            let mut q = CommitQueue::new(GroupCommitPolicy {
                max_ops: 4,
                max_bytes: 400,
                max_ticks: 3,
            });
            let mut cuts = Vec::new();
            for i in 0..32 {
                if q.enqueue(op(i), i as u64 / 2) {
                    cuts.push(q.take_batch().len());
                }
            }
            cuts.push(q.take_batch().len());
            cuts
        };
        assert_eq!(run(), run());
    }
}
