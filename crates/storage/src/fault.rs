//! Deterministic fault injection for durability tests.
//!
//! A crash during a write leaves an arbitrary prefix of the intended
//! bytes on disk. [`FailingWriter`] reproduces exactly that — it
//! accepts bytes until a preset budget is exhausted, then fails every
//! subsequent call — so a torture test can "kill" a snapshot save or a
//! WAL append at every byte offset and check that reopening the store
//! lands on the pre- or post-write state, never a torn third one.
//!
//! [`WriteFaultPlan`] is the *live* counterpart: a shareable, armable
//! fault script a running [`crate::Wal`] consults before each physical
//! write. Arming it makes the next append accept a chosen byte prefix
//! (the torn tail a real disk-full leaves behind) and then fail with a
//! typed error; the plan keeps failing until [`WriteFaultPlan::clear`]
//! simulates the operator freeing disk space. Chaos tests use it to
//! drive a [`crate::DurableStore`] through its
//! Ok → ReadOnly → Degraded → Ok health cycle without touching the
//! real filesystem's capacity.

use std::io::{Error, Write};
use std::sync::Arc;

use parking_lot::Mutex;

/// Which error an injected write fault reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Generic I/O failure (a dying disk, a yanked mount).
    Io,
    /// `ENOSPC` — the filesystem is full. Raw OS error 28, so
    /// `Error::kind()` reports it exactly as a real disk-full would.
    Enospc,
}

impl FaultKind {
    fn to_error(self) -> Error {
        match self {
            FaultKind::Io => Error::other("injected write fault"),
            // 28 == ENOSPC on every unix the workspace targets; going
            // through the raw OS error keeps `kind()` faithful.
            FaultKind::Enospc => Error::from_raw_os_error(28),
        }
    }
}

/// A [`Write`] sink that dies after `budget` bytes.
///
/// The bytes accepted before death are exactly the prefix a real crash
/// would have left on disk; the caller materializes them as file
/// contents and runs recovery against them.
///
/// ```
/// use std::io::Write;
/// use tvdp_storage::fault::FailingWriter;
///
/// let mut w = FailingWriter::new(5);
/// assert_eq!(w.write(b"hello world").unwrap(), 5); // partial write
/// assert!(w.write(b"!").is_err()); // budget exhausted
/// assert_eq!(w.written(), b"hello");
/// ```
#[derive(Debug)]
pub struct FailingWriter {
    written: Vec<u8>,
    budget: usize,
    kind: FaultKind,
}

impl FailingWriter {
    /// A writer that accepts exactly `budget` bytes before failing
    /// with a generic I/O error.
    pub fn new(budget: usize) -> Self {
        Self::with_kind(budget, FaultKind::Io)
    }

    /// A writer that accepts exactly `budget` bytes and then reports
    /// the disk full (`ENOSPC`) — the partial-frame-then-no-space
    /// shape a batched group commit sees when the volume fills
    /// mid-write.
    pub fn enospc(budget: usize) -> Self {
        Self::with_kind(budget, FaultKind::Enospc)
    }

    /// A writer with an explicit failure kind.
    pub fn with_kind(budget: usize, kind: FaultKind) -> Self {
        FailingWriter {
            written: Vec::new(),
            budget,
            kind,
        }
    }

    /// The bytes accepted so far — the simulated on-disk prefix.
    pub fn written(&self) -> &[u8] {
        &self.written
    }

    /// Consumes the writer, yielding the simulated on-disk prefix.
    pub fn into_written(self) -> Vec<u8> {
        self.written
    }
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.budget == 0 {
            return Err(self.kind.to_error());
        }
        let n = buf.len().min(self.budget);
        self.written.extend_from_slice(&buf[..n]);
        self.budget -= n;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One armed fault: accept `budget` more bytes, then fail with `kind`.
#[derive(Debug, Clone, Copy)]
struct Armed {
    budget: usize,
    kind: FaultKind,
}

/// State behind the shared plan handle.
#[derive(Debug, Default)]
struct PlanState {
    armed: Option<Armed>,
    /// Once a fault has fired the disk "stays full": every later write
    /// fails outright (zero-byte prefix) until [`WriteFaultPlan::clear`].
    tripped: Option<FaultKind>,
    faults_injected: u64,
}

/// A deterministic, shareable write-fault script for a live WAL.
///
/// Install a handle with `DurableStore::set_write_fault_plan`, then:
///
/// * [`WriteFaultPlan::arm`] — the next physical WAL write accepts at
///   most `budget` bytes (the torn prefix) and fails with `kind`;
///   every subsequent write fails with the same kind and a zero-byte
///   prefix, exactly like a volume that filled up and stayed full.
/// * [`WriteFaultPlan::clear`] — the fault lifts; writes succeed again.
///
/// The plan is consulted *before* bytes reach the file, under the
/// journal lock, so the sequence of injected failures is a pure
/// function of the mutation sequence — deterministic across runs and
/// pool widths.
#[derive(Debug, Default)]
pub struct WriteFaultPlan {
    state: Mutex<PlanState>,
}

impl WriteFaultPlan {
    /// A cleared plan behind a shareable handle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Arms the plan: the next write accepts at most `budget` bytes,
    /// then this and every following write fail with `kind` until
    /// [`WriteFaultPlan::clear`].
    pub fn arm(&self, budget: usize, kind: FaultKind) {
        let mut s = self.state.lock();
        s.armed = Some(Armed { budget, kind });
        s.tripped = None;
    }

    /// [`WriteFaultPlan::arm`] with [`FaultKind::Enospc`].
    pub fn arm_enospc(&self, budget: usize) {
        self.arm(budget, FaultKind::Enospc);
    }

    /// Lifts the fault: writes succeed again (disk space freed).
    pub fn clear(&self) {
        *self.state.lock() = PlanState::default();
    }

    /// Whether a fault is currently armed or tripped.
    pub fn is_active(&self) -> bool {
        let s = self.state.lock();
        s.armed.is_some() || s.tripped.is_some()
    }

    /// How many writes have been failed so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().faults_injected
    }

    /// Consulted by the WAL before a physical write of `len` bytes.
    /// `None` means the write proceeds normally; `Some((prefix, e))`
    /// means at most `prefix` bytes may reach the file and the append
    /// must fail with `e`.
    pub(crate) fn intercept(&self, len: usize) -> Option<(usize, Error)> {
        let mut s = self.state.lock();
        if let Some(kind) = s.tripped {
            s.faults_injected += 1;
            return Some((0, kind.to_error()));
        }
        let armed = s.armed.take()?;
        s.tripped = Some(armed.kind);
        s.faults_injected += 1;
        Some((armed.budget.min(len), armed.kind.to_error()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dies_exactly_at_budget() {
        let payload = b"abcdefgh";
        for budget in 0..=payload.len() {
            let mut w = FailingWriter::new(budget);
            let result = w.write_all(payload);
            if budget >= payload.len() {
                assert!(result.is_ok());
            } else {
                assert!(result.is_err());
            }
            assert_eq!(w.written(), &payload[..budget.min(payload.len())]);
        }
    }

    #[test]
    fn partial_then_error_matches_write_contract() {
        let mut w = FailingWriter::new(3);
        assert_eq!(w.write(b"abcde").unwrap(), 3);
        assert!(w.write(b"de").is_err());
        assert_eq!(w.into_written(), b"abc");
    }

    #[test]
    fn enospc_reports_storage_full() {
        let mut w = FailingWriter::enospc(0);
        let e = w.write(b"x").unwrap_err();
        assert_eq!(e.raw_os_error(), Some(28), "must surface ENOSPC: {e}");
    }

    #[test]
    fn plan_arms_trips_and_clears() {
        let plan = WriteFaultPlan::new();
        assert!(plan.intercept(100).is_none(), "cleared plan lets writes by");

        plan.arm_enospc(7);
        let (prefix, e) = plan.intercept(100).unwrap();
        assert_eq!(prefix, 7, "first failed write keeps the torn prefix");
        assert_eq!(e.raw_os_error(), Some(28));

        // The disk stays full: later writes fail with no prefix.
        let (prefix, _) = plan.intercept(50).unwrap();
        assert_eq!(prefix, 0);
        assert_eq!(plan.faults_injected(), 2);

        plan.clear();
        assert!(plan.intercept(10).is_none(), "cleared fault lifts");
        assert!(!plan.is_active());
    }

    #[test]
    fn plan_prefix_is_capped_by_write_length() {
        let plan = WriteFaultPlan::new();
        plan.arm(1_000, FaultKind::Io);
        let (prefix, _) = plan.intercept(12).unwrap();
        assert_eq!(prefix, 12, "prefix cannot exceed the write itself");
    }
}
