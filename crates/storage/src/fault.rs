//! Deterministic fault injection for durability tests.
//!
//! A crash during a write leaves an arbitrary prefix of the intended
//! bytes on disk. [`FailingWriter`] reproduces exactly that — it
//! accepts bytes until a preset budget is exhausted, then fails every
//! subsequent call — so a torture test can "kill" a snapshot save or a
//! WAL append at every byte offset and check that reopening the store
//! lands on the pre- or post-write state, never a torn third one.

use std::io::{Error, Write};

/// A [`Write`] sink that dies after `budget` bytes.
///
/// The bytes accepted before death are exactly the prefix a real crash
/// would have left on disk; the caller materializes them as file
/// contents and runs recovery against them.
///
/// ```
/// use std::io::Write;
/// use tvdp_storage::fault::FailingWriter;
///
/// let mut w = FailingWriter::new(5);
/// assert_eq!(w.write(b"hello world").unwrap(), 5); // partial write
/// assert!(w.write(b"!").is_err()); // budget exhausted
/// assert_eq!(w.written(), b"hello");
/// ```
#[derive(Debug)]
pub struct FailingWriter {
    written: Vec<u8>,
    budget: usize,
}

impl FailingWriter {
    /// A writer that accepts exactly `budget` bytes before failing.
    pub fn new(budget: usize) -> Self {
        FailingWriter {
            written: Vec::new(),
            budget,
        }
    }

    /// The bytes accepted so far — the simulated on-disk prefix.
    pub fn written(&self) -> &[u8] {
        &self.written
    }

    /// Consumes the writer, yielding the simulated on-disk prefix.
    pub fn into_written(self) -> Vec<u8> {
        self.written
    }
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.budget == 0 {
            return Err(Error::other("injected write fault"));
        }
        let n = buf.len().min(self.budget);
        self.written.extend_from_slice(&buf[..n]);
        self.budget -= n;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dies_exactly_at_budget() {
        let payload = b"abcdefgh";
        for budget in 0..=payload.len() {
            let mut w = FailingWriter::new(budget);
            let result = w.write_all(payload);
            if budget >= payload.len() {
                assert!(result.is_ok());
            } else {
                assert!(result.is_err());
            }
            assert_eq!(w.written(), &payload[..budget.min(payload.len())]);
        }
    }

    #[test]
    fn partial_then_error_matches_write_contract() {
        let mut w = FailingWriter::new(3);
        assert_eq!(w.write(b"abcde").unwrap(), 3);
        assert!(w.write(b"de").is_err());
        assert_eq!(w.into_written(), b"abc");
    }
}
