//! Typed identifiers for the storage schema.
//!
//! Each entity family gets its own newtype over `u64` so identifiers
//! cannot be confused across tables at compile time.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// The raw numeric value.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a stored image (or video key frame).
    ImageId,
    "img-"
);
define_id!(
    /// Identifies a platform user (government, researcher, community,
    /// academic).
    UserId,
    "user-"
);
define_id!(
    /// Identifies a content-classification scheme (e.g. street
    /// cleanliness, graffiti, road damage).
    ClassificationId,
    "cls-"
);
define_id!(
    /// Identifies one annotation row.
    AnnotationId,
    "ann-"
);
define_id!(
    /// Identifies a registered ML model.
    ModelId,
    "model-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ImageId(7).to_string(), "img-7");
        assert_eq!(UserId(1).to_string(), "user-1");
        assert_eq!(ClassificationId(2).to_string(), "cls-2");
        assert_eq!(AnnotationId(3).to_string(), "ann-3");
        assert_eq!(ModelId(4).to_string(), "model-4");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ImageId(1));
        set.insert(ImageId(1));
        set.insert(ImageId(2));
        assert_eq!(set.len(), 2);
        assert!(ImageId(1) < ImageId(2));
        assert_eq!(ImageId(9).raw(), 9);
    }

    #[test]
    fn serde_roundtrip() {
        let id = ImageId(42);
        let json = serde_json::to_string(&id).unwrap();
        let back: ImageId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
