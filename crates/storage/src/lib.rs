//! Data-management substrate for the Translational Visual Data Platform.
//!
//! Implements the comprehensive data model of the paper's Fig. 2:
//!
//! * `Images` — [`ImageRecord`]: GPS location, capture/upload timestamps,
//!   uploader, original-vs-augmented lineage,
//! * `Image_FOV` / `Image_Scene_Location` — spatial descriptors attached
//!   to each image,
//! * `Image_Visual_Features` — per-image feature vectors keyed by feature
//!   family,
//! * `Image_Content_Classification` / `..._Types` /
//!   `..._Annotation` — classification schemes (e.g. *street
//!   cleanliness*), their label vocabularies, and per-image annotations
//!   with confidence and human/machine provenance,
//! * `Image_Manual_Keywords` — textual descriptors.
//!
//! The store ([`VisualStore`]) is concurrency-safe (readers-writer locks
//! per table) and persists as a JSON-lines snapshot ([`persist`]). Videos
//! follow the paper's convention: a video is a sequence of key frames,
//! each stored as an image carrying its own FOV.

pub mod annotation;
pub mod codec;
pub mod commit;
pub mod fault;
pub mod ids;
pub mod persist;
pub mod record;
pub mod recovery;
pub mod spill;
pub mod store;
pub mod wal;

pub use annotation::{Annotation, AnnotationSource, ClassificationScheme, RegionOfInterest};
pub use commit::{CommitQueue, GroupCommitPolicy};
pub use fault::{FailingWriter, FaultKind, WriteFaultPlan};
pub use ids::{AnnotationId, ClassificationId, ImageId, ModelId, UserId};
pub use persist::{PersistError, FORMAT_VERSION};
pub use record::{ImageMeta, ImageOrigin, ImageRecord};
pub use recovery::{
    CompactionReport, CompactionTask, DurableError, DurableStore, HealthState, RecoveryReport,
    StoreHealth,
};
pub use store::{
    FeatureHandle, Snapshot, SnapshotError, StorageError, VisualStore, UPLOAD_MARKER_CAPACITY,
};
pub use wal::WalOp;
