//! JSON-lines persistence for the visual store.
//!
//! The snapshot format is line-oriented: a header line followed by one
//! JSON object per row, each tagged with its table. Line orientation
//! keeps partial corruption local (a damaged trailing line loses one row,
//! not the file) and makes dumps greppable during operations.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};
use tvdp_vision::FeatureKind;

use crate::annotation::{Annotation, ClassificationScheme};
use crate::ids::ImageId;
use crate::record::ImageRecord;
use crate::store::{Snapshot, VisualStore};

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
enum Row {
    Header {
        version: u32,
    },
    Image(ImageRecord),
    Blob {
        id: ImageId,
        width: usize,
        height: usize,
        raw: Vec<u8>,
    },
    Feature {
        id: ImageId,
        kind: FeatureKind,
        vector: Vec<f32>,
    },
    Scheme(ClassificationScheme),
    Annotation(Annotation),
}

/// Errors from loading a snapshot file.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse.
    Corrupt {
        /// 1-based line number of the bad row.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// Missing or wrong-version header.
    BadHeader,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Corrupt { line, message } => {
                write!(f, "corrupt snapshot at line {line}: {message}")
            }
            PersistError::BadHeader => write!(f, "missing or incompatible snapshot header"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Writes a full snapshot of `store` to `path` (overwrites).
pub fn save(store: &VisualStore, path: &Path) -> Result<(), PersistError> {
    let snap = store.snapshot();
    let mut w = BufWriter::new(File::create(path)?);
    let mut emit = |row: &Row| -> Result<(), PersistError> {
        let line = serde_json::to_string(row).map_err(|e| PersistError::Corrupt {
            line: 0,
            message: e.to_string(),
        })?;
        writeln!(w, "{line}")?;
        Ok(())
    };
    emit(&Row::Header {
        version: FORMAT_VERSION,
    })?;
    for rec in snap.images {
        emit(&Row::Image(rec))?;
    }
    for (id, width, height, raw) in snap.blobs {
        emit(&Row::Blob {
            id,
            width,
            height,
            raw,
        })?;
    }
    for (id, kind, vector) in snap.features {
        emit(&Row::Feature { id, kind, vector })?;
    }
    for s in snap.schemes {
        emit(&Row::Scheme(s))?;
    }
    for a in snap.annotations {
        emit(&Row::Annotation(a))?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a snapshot file into a fresh store.
pub fn load(path: &Path) -> Result<VisualStore, PersistError> {
    let reader = BufReader::new(File::open(path)?);
    let mut snap = Snapshot::default();
    let mut saw_header = false;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let row: Row = serde_json::from_str(&line).map_err(|e| PersistError::Corrupt {
            line: i + 1,
            message: e.to_string(),
        })?;
        match row {
            Row::Header { version } => {
                if version != FORMAT_VERSION {
                    return Err(PersistError::BadHeader);
                }
                saw_header = true;
            }
            Row::Image(rec) => snap.images.push(rec),
            Row::Blob {
                id,
                width,
                height,
                raw,
            } => snap.blobs.push((id, width, height, raw)),
            Row::Feature { id, kind, vector } => snap.features.push((id, kind, vector)),
            Row::Scheme(s) => snap.schemes.push(s),
            Row::Annotation(a) => snap.annotations.push(a),
        }
    }
    if !saw_header {
        return Err(PersistError::BadHeader);
    }
    Ok(VisualStore::from_snapshot(snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::AnnotationSource;
    use crate::ids::UserId;
    use crate::record::{ImageMeta, ImageOrigin};
    use tvdp_geo::GeoPoint;
    use tvdp_vision::Image;

    fn populated_store() -> VisualStore {
        let store = VisualStore::new();
        let meta = ImageMeta {
            uploader: UserId(1),
            gps: GeoPoint::new(34.0, -118.25),
            fov: None,
            captured_at: 100,
            uploaded_at: 110,
            keywords: vec!["street".into(), "corner".into()],
        };
        let img = store
            .add_image(
                meta.clone(),
                ImageOrigin::Original,
                Some(Image::from_fn(4, 4, |x, y| [x as u8, y as u8, 9])),
            )
            .unwrap();
        let cls = store
            .register_scheme("cleanliness", vec!["clean".into(), "dirty".into()])
            .unwrap();
        store
            .put_feature(img, FeatureKind::Cnn, vec![0.1, 0.2, 0.3])
            .unwrap();
        store
            .annotate(img, cls, 1, 0.7, AnnotationSource::Human(UserId(1)), None)
            .unwrap();
        store.add_image(meta, ImageOrigin::Original, None).unwrap();
        store
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tvdp-persist-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip() {
        let store = populated_store();
        let path = temp_path("roundtrip");
        save(&store, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), store.len());
        assert_eq!(loaded.annotation_count(), 1);
        let ids = loaded.image_ids();
        assert_eq!(
            loaded.feature(ids[0], FeatureKind::Cnn).unwrap(),
            vec![0.1, 0.2, 0.3]
        );
        assert_eq!(loaded.pixels(ids[0]).unwrap().get(1, 2), [1, 2, 9]);
        assert!(loaded.scheme_by_name("cleanliness").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_header_rejected() {
        let path = temp_path("noheader");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(load(&path), Err(PersistError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_line_reported_with_number() {
        let store = populated_store();
        let path = temp_path("corrupt");
        save(&store, &path).unwrap();
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("{not json\n");
        std::fs::write(&path, contents).unwrap();
        match load(&path) {
            Err(PersistError::Corrupt { line, .. }) => assert!(line > 1),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let path = temp_path("missing-file-never-created");
        assert!(matches!(load(&path), Err(PersistError::Io(_))));
    }
}
