//! JSON-lines snapshot persistence for the visual store.
//!
//! The snapshot format is line-oriented: a header on line 1 followed by
//! one JSON object per row, each tagged with its table
//! (`{"Image":{...}}`, `{"Blob":{...}}`, …). Line orientation keeps
//! partial corruption local and makes dumps greppable during
//! operations. Rows are rendered by the self-contained [`crate::codec`]
//! — persistence works without any external JSON machinery.
//!
//! Writing is crash-safe: [`save`] renders the whole snapshot to a
//! sibling `<name>.tmp` file, flushes, `fsync`s the file, atomically
//! renames it over the destination, and `fsync`s the parent directory
//! so the rename itself is durable. A crash at any byte offset leaves
//! either the complete old snapshot or the complete new one — never a
//! torn file.
//!
//! Reading is strict: the header must be line 1 and appear exactly
//! once, every row must decode, blob byte counts must match their
//! declared dimensions, and the assembled snapshot must pass
//! referential-integrity validation ([`VisualStore::from_snapshot`]).

use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use crate::codec::{self, Value};
use crate::ids::ImageId;
use crate::store::{Snapshot, SnapshotError, VisualStore};

/// Current on-disk format version. Version 2 moved the row encoding to
/// the in-tree codec and added the WAL epoch to the header.
pub const FORMAT_VERSION: u32 = 2;

/// Errors from loading or saving a snapshot file.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to decode or carried an impossible row.
    Corrupt {
        /// 1-based line number of the bad row.
        line: usize,
        /// Decoder message.
        message: String,
    },
    /// Missing, misplaced, duplicated, or wrong-version header.
    BadHeader,
    /// The snapshot decoded but its tables are mutually inconsistent.
    Invalid(SnapshotError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Corrupt { line, message } => {
                write!(f, "corrupt snapshot at line {line}: {message}")
            }
            PersistError::BadHeader => write!(f, "missing or incompatible snapshot header"),
            PersistError::Invalid(e) => write!(f, "inconsistent snapshot: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        PersistError::Invalid(e)
    }
}

fn tag(name: &str, payload: Value) -> Value {
    Value::Obj(vec![(name.to_string(), payload)])
}

/// Renders the header line (trailing `\n` included).
pub fn render_header_line(wal_epoch: u64) -> String {
    let mut line = tag(
        "Header",
        Value::Obj(vec![
            ("version".into(), Value::num(FORMAT_VERSION)),
            ("wal_epoch".into(), Value::num(wal_epoch)),
        ]),
    )
    .render();
    line.push('\n');
    line
}

/// Number of data rows (lines after the header) a snapshot renders to.
pub fn snapshot_row_count(snap: &Snapshot) -> usize {
    snap.images.len()
        + snap.blobs.len()
        + snap.features.len()
        + snap.schemes.len()
        + snap.annotations.len()
        + snap.markers.len()
}

/// Renders data row `row` (0-based, sections concatenated in file
/// order: images, blobs, features, schemes, annotations, markers) with
/// its trailing `\n`. Pure per-row rendering is what lets incremental
/// compaction fan rows out over a work pool and still write
/// byte-identical files regardless of thread count.
///
/// # Panics
///
/// Panics when `row >= snapshot_row_count(snap)`.
pub fn render_snapshot_row(snap: &Snapshot, row: usize) -> String {
    let mut i = row;
    let v = 'section: {
        if i < snap.images.len() {
            break 'section tag("Image", codec::encode_record(&snap.images[i]));
        }
        i -= snap.images.len();
        if i < snap.blobs.len() {
            let (id, width, height, raw) = &snap.blobs[i];
            break 'section tag(
                "Blob",
                Value::Obj(vec![
                    ("id".into(), Value::num(id.raw())),
                    ("width".into(), Value::num(*width)),
                    ("height".into(), Value::num(*height)),
                    ("raw".into(), Value::str(codec::hex_encode(raw))),
                ]),
            );
        }
        i -= snap.blobs.len();
        if i < snap.features.len() {
            let (id, kind, vector) = &snap.features[i];
            break 'section tag(
                "Feature",
                Value::Obj(vec![
                    ("id".into(), Value::num(id.raw())),
                    ("kind".into(), codec::encode_kind(*kind)),
                    ("vector".into(), codec::encode_vector(vector)),
                ]),
            );
        }
        i -= snap.features.len();
        if i < snap.schemes.len() {
            break 'section tag("Scheme", codec::encode_scheme(&snap.schemes[i]));
        }
        i -= snap.schemes.len();
        if i < snap.annotations.len() {
            break 'section tag("Annotation", codec::encode_annotation(&snap.annotations[i]));
        }
        i -= snap.annotations.len();
        let (key, image, seq) = &snap.markers[i];
        tag(
            "Marker",
            Value::Obj(vec![
                ("key".into(), Value::str(key.clone())),
                ("image".into(), Value::num(image.raw())),
                ("seq".into(), Value::num(*seq)),
            ]),
        )
    };
    let mut line = v.render();
    line.push('\n');
    line
}

/// Renders a snapshot to the full on-disk file contents (header line
/// plus one row per line, each `\n`-terminated). Exposed so
/// fault-injection tests can materialize arbitrary crash prefixes of a
/// save. Byte-for-byte identical to the incremental
/// [`render_snapshot_row`] path.
pub fn render_snapshot(snap: &Snapshot, wal_epoch: u64) -> String {
    let mut out = render_header_line(wal_epoch);
    for row in 0..snapshot_row_count(snap) {
        out.push_str(&render_snapshot_row(snap, row));
    }
    out
}

/// The sibling temporary path a save stages its bytes in before the
/// atomic rename (`<name>.tmp` in the same directory). Exposed so
/// recovery can clean up after a crash mid-save and so tests can plant
/// crash debris.
pub fn staging_path(path: &Path) -> Result<PathBuf, PersistError> {
    let name = path.file_name().ok_or_else(|| {
        PersistError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "snapshot path has no file name",
        ))
    })?;
    let mut tmp = name.to_os_string();
    tmp.push(".tmp");
    Ok(path.with_file_name(tmp))
}

/// Fsyncs the directory containing `path`, making a rename, create, or
/// unlink of that path itself durable. Every staged-rename site in the
/// crate (snapshot publish, WAL create/rotate, spill files, segment
/// removal) must call this after the metadata operation — the PR 4
/// protocol.
pub(crate) fn fsync_parent(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    File::open(parent)?.sync_all()
}

/// Atomically replaces the snapshot at `path` with `snap`: stage to
/// `<name>.tmp`, flush, `fsync`, rename over `path`, `fsync` the parent
/// directory. The previous snapshot survives intact until the rename
/// commits.
pub fn save_snapshot(snap: &Snapshot, path: &Path, wal_epoch: u64) -> Result<(), PersistError> {
    let bytes = render_snapshot(snap, wal_epoch);
    let tmp = staging_path(path)?;
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes.as_bytes())?;
        f.flush()?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    fsync_parent(path)?;
    Ok(())
}

/// Writes a full snapshot of `store` to `path` via the atomic staged
/// rename of [`save_snapshot`].
pub fn save(store: &VisualStore, path: &Path) -> Result<(), PersistError> {
    save_snapshot(&store.snapshot(), path, 0)
}

fn corrupt(line: usize, message: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        line,
        message: message.into(),
    }
}

/// Reads a snapshot file into its table dump plus the WAL epoch the
/// header recorded. Strict: header on line 1 exactly once, every row
/// valid, blob shapes consistent.
pub fn load_snapshot(path: &Path) -> Result<(Snapshot, u64), PersistError> {
    let reader = BufReader::new(File::open(path)?);
    let mut snap = Snapshot::default();
    let mut wal_epoch = 0u64;
    let mut saw_header = false;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let v = codec::parse(&line).map_err(|e| corrupt(lineno, e))?;
        let (name, payload) = match &v {
            Value::Obj(fields) if fields.len() == 1 => (&fields[0].0, &fields[0].1),
            _ => return Err(corrupt(lineno, "expected a single-key row object")),
        };
        if lineno == 1 {
            if name != "Header" {
                return Err(PersistError::BadHeader);
            }
            let version: u32 =
                codec::num_field(payload, "version").map_err(|e| corrupt(lineno, e))?;
            if version != FORMAT_VERSION {
                return Err(PersistError::BadHeader);
            }
            wal_epoch = codec::num_field(payload, "wal_epoch").map_err(|e| corrupt(lineno, e))?;
            saw_header = true;
            continue;
        }
        match name.as_str() {
            // A header anywhere but line 1 means two files were
            // concatenated or the writer was interrupted mid-swap;
            // refuse rather than silently merging stores.
            "Header" => return Err(corrupt(lineno, "duplicate header")),
            "Image" => snap
                .images
                .push(codec::decode_record(payload).map_err(|e| corrupt(lineno, e))?),
            "Blob" => {
                let id = ImageId(codec::num_field(payload, "id").map_err(|e| corrupt(lineno, e))?);
                let width: usize =
                    codec::num_field(payload, "width").map_err(|e| corrupt(lineno, e))?;
                let height: usize =
                    codec::num_field(payload, "height").map_err(|e| corrupt(lineno, e))?;
                let raw = codec::hex_decode(
                    codec::str_field(payload, "raw").map_err(|e| corrupt(lineno, e))?,
                )
                .map_err(|e| corrupt(lineno, e))?;
                if width == 0
                    || height == 0
                    || raw.len() != width.saturating_mul(height).saturating_mul(3)
                {
                    return Err(corrupt(
                        lineno,
                        format!(
                            "blob for {id}: {} bytes does not match {width}x{height}x3",
                            raw.len()
                        ),
                    ));
                }
                snap.blobs.push((id, width, height, raw));
            }
            "Feature" => {
                let id = ImageId(codec::num_field(payload, "id").map_err(|e| corrupt(lineno, e))?);
                let kind = codec::decode_kind(
                    codec::field(payload, "kind").map_err(|e| corrupt(lineno, e))?,
                )
                .map_err(|e| corrupt(lineno, e))?;
                let vector = codec::decode_vector(
                    codec::field(payload, "vector").map_err(|e| corrupt(lineno, e))?,
                )
                .map_err(|e| corrupt(lineno, e))?;
                snap.features.push((id, kind, vector));
            }
            "Scheme" => snap
                .schemes
                .push(codec::decode_scheme(payload).map_err(|e| corrupt(lineno, e))?),
            "Annotation" => snap
                .annotations
                .push(codec::decode_annotation(payload).map_err(|e| corrupt(lineno, e))?),
            "Marker" => {
                let key = codec::str_field(payload, "key")
                    .map_err(|e| corrupt(lineno, e))?
                    .to_string();
                let image =
                    ImageId(codec::num_field(payload, "image").map_err(|e| corrupt(lineno, e))?);
                let seq: u64 = codec::num_field(payload, "seq").map_err(|e| corrupt(lineno, e))?;
                snap.markers.push((key, image, seq));
            }
            other => return Err(corrupt(lineno, format!("unknown row tag `{other}`"))),
        }
    }
    if !saw_header {
        return Err(PersistError::BadHeader);
    }
    Ok((snap, wal_epoch))
}

/// Loads a snapshot file into a fresh store, validating referential
/// integrity.
pub fn load(path: &Path) -> Result<VisualStore, PersistError> {
    let (snap, _) = load_snapshot(path)?;
    Ok(VisualStore::from_snapshot(snap)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::AnnotationSource;
    use crate::ids::UserId;
    use crate::record::{ImageMeta, ImageOrigin};
    use tvdp_geo::GeoPoint;
    use tvdp_vision::{FeatureKind, Image};

    fn populated_store() -> VisualStore {
        let store = VisualStore::new();
        let meta = ImageMeta {
            uploader: UserId(1),
            gps: GeoPoint::new(34.0, -118.25),
            fov: None,
            captured_at: 100,
            uploaded_at: 110,
            keywords: vec!["street".into(), "corner".into()],
        };
        let img = store
            .add_image(
                meta.clone(),
                ImageOrigin::Original,
                Some(Image::from_fn(4, 4, |x, y| [x as u8, y as u8, 9])),
            )
            .unwrap();
        let cls = store
            .register_scheme("cleanliness", vec!["clean".into(), "dirty".into()])
            .unwrap();
        store
            .put_feature(img, FeatureKind::Cnn, vec![0.1, 0.2, 0.3])
            .unwrap();
        store
            .annotate(img, cls, 1, 0.7, AnnotationSource::Human(UserId(1)), None)
            .unwrap();
        store.add_image(meta, ImageOrigin::Original, None).unwrap();
        store
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tvdp-persist-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip() {
        let store = populated_store();
        let path = temp_path("roundtrip");
        save(&store, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), store.len());
        assert_eq!(loaded.annotation_count(), 1);
        let ids = loaded.image_ids();
        assert_eq!(
            loaded.feature(ids[0], FeatureKind::Cnn).unwrap(),
            vec![0.1, 0.2, 0.3]
        );
        assert_eq!(loaded.pixels(ids[0]).unwrap().get(1, 2), [1, 2, 9]);
        assert!(loaded.scheme_by_name("cleanliness").is_some());
        // Snapshot equality: the restored store is exactly the saved one.
        assert_eq!(loaded.snapshot(), store.snapshot());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_replaces_atomically_and_leaves_no_staging_file() {
        let store = populated_store();
        let path = temp_path("atomic");
        save(&store, &path).unwrap();
        // Second save over an existing snapshot succeeds and the
        // staging file is gone after the rename.
        save(&store, &path).unwrap();
        assert!(!staging_path(&path).unwrap().exists());
        assert_eq!(load(&path).unwrap().snapshot(), store.snapshot());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_header_rejected() {
        let path = temp_path("noheader");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(load(&path), Err(PersistError::BadHeader)));
        // A data row on line 1 is equally a missing header.
        let store = populated_store();
        let body = render_snapshot(&store.snapshot(), 0);
        let without_first = body.split_once('\n').unwrap().1;
        std::fs::write(&path, without_first).unwrap();
        assert!(matches!(load(&path), Err(PersistError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_or_trailing_header_rejected() {
        let store = populated_store();
        let path = temp_path("dupheader");
        let mut body = render_snapshot(&store.snapshot(), 0);
        let header = body.split_once('\n').unwrap().0.to_string();
        body.push_str(&header);
        body.push('\n');
        std::fs::write(&path, &body).unwrap();
        match load(&path) {
            Err(PersistError::Corrupt { line, message }) => {
                assert!(line > 1);
                assert!(message.contains("duplicate header"));
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_rejected() {
        let path = temp_path("version");
        std::fs::write(&path, "{\"Header\":{\"version\":1,\"wal_epoch\":0}}\n").unwrap();
        assert!(matches!(load(&path), Err(PersistError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_line_reported_with_number() {
        let store = populated_store();
        let path = temp_path("corrupt");
        save(&store, &path).unwrap();
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("{not json\n");
        std::fs::write(&path, contents).unwrap();
        match load(&path) {
            Err(PersistError::Corrupt { line, .. }) => assert!(line > 1),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blob_with_wrong_byte_count_rejected_with_line() {
        let store = populated_store();
        let path = temp_path("badblob");
        save(&store, &path).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        // Shrink the blob payload by one pixel without touching the
        // declared dimensions.
        let mangled: Vec<String> = contents
            .lines()
            .map(|l| {
                if let Some(pos) = l.find("\"raw\":\"") {
                    let start = pos + "\"raw\":\"".len();
                    let mut s = l.to_string();
                    s.replace_range(start..start + 6, "");
                    s
                } else {
                    l.to_string()
                }
            })
            .collect();
        std::fs::write(&path, mangled.join("\n") + "\n").unwrap();
        match load(&path) {
            Err(PersistError::Corrupt { line, message }) => {
                assert!(line > 1);
                assert!(message.contains("does not match"), "got: {message}");
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dangling_reference_rejected_as_invalid() {
        let store = populated_store();
        let path = temp_path("dangling");
        save(&store, &path).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        // Point the feature row at an image id that does not exist.
        let mangled: Vec<String> = contents
            .lines()
            .map(|l| {
                if l.starts_with("{\"Feature\"") {
                    l.replacen("\"id\":0", "\"id\":999", 1)
                } else {
                    l.to_string()
                }
            })
            .collect();
        std::fs::write(&path, mangled.join("\n") + "\n").unwrap();
        assert!(matches!(
            load(&path),
            Err(PersistError::Invalid(SnapshotError::DanglingFeature(_)))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let path = temp_path("missing-file-never-created");
        assert!(matches!(load(&path), Err(PersistError::Io(_))));
    }

    #[test]
    fn upload_markers_roundtrip_through_snapshot_file() {
        let store = populated_store();
        let (id, _) = store
            .ingest_upload(
                "edge2-s9",
                ImageMeta {
                    uploader: UserId(3),
                    gps: GeoPoint::new(34.1, -118.2),
                    fov: None,
                    captured_at: 300,
                    uploaded_at: 310,
                    keywords: vec![],
                },
                ImageOrigin::Original,
                None,
                &[(FeatureKind::Cnn, vec![0.9])],
            )
            .unwrap();
        let path = temp_path("markers");
        save(&store, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.upload_marker("edge2-s9"), Some(id));
        assert_eq!(loaded.snapshot(), store.snapshot());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wal_epoch_roundtrips_through_header() {
        let store = populated_store();
        let path = temp_path("epoch");
        save_snapshot(&store.snapshot(), &path, 7).unwrap();
        let (snap, epoch) = load_snapshot(&path).unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(snap, store.snapshot());
        std::fs::remove_file(&path).ok();
    }
}
