//! Image records: the `Images` entity plus its spatial descriptors.

use serde::{Deserialize, Serialize};
use tvdp_geo::{BBox, Fov, GeoPoint};

use crate::ids::{ImageId, UserId};

/// Provenance of an image: captured in the field, or synthesized from
/// another stored image by an augmentation operator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImageOrigin {
    /// Captured by a camera and uploaded.
    Original,
    /// Derived from `parent` by the augmentation identified by `op`
    /// (an [`tvdp_vision::Augmentation::tag`] string).
    Augmented {
        /// The source image.
        parent: ImageId,
        /// Augmentation tag, e.g. `"flip_h"`.
        op: String,
    },
}

/// Descriptive metadata supplied at upload time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageMeta {
    /// Uploading user.
    pub uploader: UserId,
    /// GPS camera location at capture time.
    pub gps: GeoPoint,
    /// Field-of-view descriptor, when direction sensors were available.
    pub fov: Option<Fov>,
    /// Capture timestamp (Unix seconds).
    pub captured_at: i64,
    /// Upload timestamp (Unix seconds).
    pub uploaded_at: i64,
    /// Free-text keywords supplied by the uploader.
    pub keywords: Vec<String>,
}

/// A stored image row: metadata plus derived spatial descriptors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageRecord {
    /// Row identifier.
    pub id: ImageId,
    /// Upload-time metadata.
    pub meta: ImageMeta,
    /// Scene location (MBR of the FOV sector) when an FOV exists;
    /// otherwise the degenerate box at the GPS point.
    pub scene_location: BBox,
    /// Original or augmented.
    pub origin: ImageOrigin,
    /// Pixel dimensions.
    pub width: usize,
    /// Pixel dimensions.
    pub height: usize,
}

impl ImageRecord {
    /// Builds a record, deriving the scene location from the FOV (or the
    /// GPS point when no FOV is present).
    pub fn new(
        id: ImageId,
        meta: ImageMeta,
        origin: ImageOrigin,
        width: usize,
        height: usize,
    ) -> Self {
        let scene_location = match &meta.fov {
            Some(fov) => fov.scene_location(),
            None => BBox::from_point(meta.gps),
        };
        Self {
            id,
            meta,
            scene_location,
            origin,
            width,
            height,
        }
    }

    /// Whether this row is an augmentation product.
    pub fn is_augmented(&self) -> bool {
        matches!(self.origin, ImageOrigin::Augmented { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_with_fov(fov: Option<Fov>) -> ImageMeta {
        ImageMeta {
            uploader: UserId(1),
            gps: GeoPoint::new(34.0, -118.25),
            fov,
            captured_at: 1_000,
            uploaded_at: 1_050,
            keywords: vec!["street".into()],
        }
    }

    #[test]
    fn scene_location_from_fov() {
        let fov = Fov::new(GeoPoint::new(34.0, -118.25), 0.0, 60.0, 100.0);
        let rec = ImageRecord::new(
            ImageId(1),
            meta_with_fov(Some(fov)),
            ImageOrigin::Original,
            64,
            48,
        );
        assert_eq!(rec.scene_location, fov.scene_location());
        assert!(!rec.is_augmented());
    }

    #[test]
    fn scene_location_degenerate_without_fov() {
        let rec = ImageRecord::new(
            ImageId(2),
            meta_with_fov(None),
            ImageOrigin::Original,
            64,
            48,
        );
        assert_eq!(
            rec.scene_location,
            BBox::from_point(GeoPoint::new(34.0, -118.25))
        );
    }

    #[test]
    fn augmented_origin_tracks_parent() {
        let origin = ImageOrigin::Augmented {
            parent: ImageId(1),
            op: "flip_h".into(),
        };
        let rec = ImageRecord::new(ImageId(3), meta_with_fov(None), origin.clone(), 64, 48);
        assert!(rec.is_augmented());
        assert_eq!(rec.origin, origin);
    }

    #[test]
    fn serde_roundtrip() {
        let fov = Fov::new(GeoPoint::new(34.0, -118.25), 45.0, 50.0, 80.0);
        let rec = ImageRecord::new(
            ImageId(9),
            meta_with_fov(Some(fov)),
            ImageOrigin::Original,
            32,
            32,
        );
        let json = serde_json::to_string(&rec).unwrap();
        let back: ImageRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }
}
