//! Crash recovery and the durable store wrapper.
//!
//! A durable store directory holds three kinds of files:
//!
//! * `snapshot.json` — an atomic snapshot ([`crate::persist`]) whose
//!   header records the *base* WAL epoch it was cut against,
//! * `wal-<epoch>.log` — append-only op journal segments
//!   ([`crate::wal`]): every segment with epoch >= the snapshot's base
//!   holds mutations since that snapshot (the L0 tier), and
//! * `spill-*.bin` — cold feature-arena chunks spilled out of memory
//!   ([`crate::spill`]).
//!
//! [`DurableStore::open`] is open-or-recover: load the snapshot (if
//! any), replay every live segment in ascending epoch order (sealed
//! segments must be intact; only the highest — the one a crash could
//! have torn mid-append — gets its torn tail truncated), and sweep
//! crash debris (a stale `snapshot.json.tmp`, segments older than the
//! snapshot's base, spill files — the store reopens fully resident).
//!
//! Compaction is **incremental and tiered**. [`DurableStore::seal`]
//! rotates the live segment, growing the L0 tier without folding
//! anything. [`DurableStore::begin_compaction`] atomically (under the
//! journal lock) cuts a snapshot of the store *and* seals the live
//! segment, so the cut covers exactly the ops in the sealed tier;
//! writers then proceed into the new live segment while
//! [`CompactionTask::step`] renders the snapshot in bounded increments
//! on a [`tvdp_kernel::Pool`] — the full fold never blocks writers. The
//! final increment publishes with the PR 4 staged-rename protocol
//! (stage, fsync, rename, parent fsync), retires the folded segments,
//! and spills cold arena chunks. [`DurableStore::compact`] wraps the
//! whole schedule for callers that want the old stop-the-world
//! behavior.
//!
//! Epochs make all of this crash-safe. The snapshot's base epoch `B`
//! means "replay every `wal-<e>.log` with `e >= B`, ascending"; the
//! next epoch's empty segment is always created *before* the snapshot
//! naming it is published. A crash on either side of the publish leaves
//! a snapshot whose surviving segments replay to exactly the
//! acknowledged state — ops are never replayed twice and never lost.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use tvdp_kernel::Pool;
use tvdp_vision::{FeatureKind, Image};

use crate::annotation::{Annotation, AnnotationSource, RegionOfInterest};
use crate::ids::{AnnotationId, ClassificationId, ImageId};
use crate::persist::{self, PersistError};
use crate::record::{ImageMeta, ImageOrigin};
use crate::spill::{self, SpillStats};
use crate::store::{Snapshot, SnapshotError, StorageError, VisualStore};
use crate::wal::{Wal, WalError, WalOp};

/// File name of the snapshot inside a durable store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// Errors from opening, mutating, or compacting a durable store.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The snapshot failed to load or save.
    Persist(PersistError),
    /// The WAL failed to append or recover.
    Wal(WalError),
    /// A mutation was rejected by the store's integrity checks.
    Storage(StorageError),
    /// A mutation was rejected before journaling (an invariant the
    /// store would otherwise enforce by panicking, e.g. an empty label
    /// vocabulary or a confidence outside `[0, 1]`).
    Rejected(String),
    /// WAL replay could not reproduce the journaled state.
    Replay(String),
    /// A cold-chunk spill file failed to write or read back; carries
    /// the offending path and CRC context.
    Spill(crate::spill::SpillError),
    /// The store is in the read-only degraded state: a journal write
    /// fault (disk full, dying device) tripped it, mutations are being
    /// shed, and reads continue from the applied state. Clears
    /// automatically once a mutation's write probe succeeds again.
    ReadOnly(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "io error: {e}"),
            DurableError::Persist(e) => write!(f, "{e}"),
            DurableError::Wal(e) => write!(f, "{e}"),
            DurableError::Storage(e) => write!(f, "{e}"),
            DurableError::Rejected(m) => write!(f, "rejected: {m}"),
            DurableError::Replay(m) => write!(f, "wal replay failed: {m}"),
            DurableError::Spill(e) => write!(f, "spill failed: {e}"),
            DurableError::ReadOnly(m) => {
                write!(f, "store is read-only (journal write fault): {m}")
            }
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<PersistError> for DurableError {
    fn from(e: PersistError) -> Self {
        DurableError::Persist(e)
    }
}

impl From<SnapshotError> for DurableError {
    fn from(e: SnapshotError) -> Self {
        DurableError::Persist(PersistError::Invalid(e))
    }
}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<StorageError> for DurableError {
    fn from(e: StorageError) -> Self {
        DurableError::Storage(e)
    }
}

impl From<crate::spill::SpillError> for DurableError {
    fn from(e: crate::spill::SpillError) -> Self {
        DurableError::Spill(e)
    }
}

/// What [`DurableStore::open`] found and repaired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL epoch the store is now on.
    pub epoch: u64,
    /// Whether a snapshot file existed.
    pub snapshot_found: bool,
    /// Ops replayed from the WAL on top of the snapshot.
    pub replayed_ops: usize,
    /// Torn trailing bytes truncated from the WAL.
    pub torn_bytes: u64,
    /// Crash-debris files swept (stale staging file, WALs from other
    /// epochs).
    pub debris_removed: usize,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {}: snapshot {}, {} op(s) replayed, {} torn byte(s) truncated, {} debris file(s) removed",
            self.epoch,
            if self.snapshot_found { "loaded" } else { "absent" },
            self.replayed_ops,
            self.torn_bytes,
            self.debris_removed,
        )
    }
}

/// What a compaction ([`DurableStore::compact`] /
/// [`CompactionTask`]) accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// WAL epoch after rotation (the new snapshot's base).
    pub epoch: u64,
    /// Journaled ops folded into the snapshot.
    pub ops_compacted: usize,
    /// Total bytes across the folded L0 segments.
    pub wal_bytes_before: u64,
    /// Snapshot size after the write, in bytes.
    pub snapshot_bytes: u64,
    /// L0 WAL segments merged into the snapshot tier.
    pub tiers_merged: usize,
    /// Bounded merge increments the fold ran as.
    pub increments_run: usize,
    /// Feature-arena float bytes released from memory to spill files.
    pub bytes_spilled: u64,
    /// Spilled float bytes reloaded from disk during the fold.
    pub bytes_reloaded: u64,
}

impl std::fmt::Display for CompactionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {}: {} op(s) folded into a {} byte snapshot, wal shrunk {} -> 0 bytes; \
             {} tier(s) merged in {} increment(s), {} byte(s) spilled, {} byte(s) reloaded",
            self.epoch,
            self.ops_compacted,
            self.snapshot_bytes,
            self.wal_bytes_before,
            self.tiers_merged,
            self.increments_run,
            self.bytes_spilled,
            self.bytes_reloaded,
        )
    }
}

/// The store's write-path health, a three-state machine:
///
/// ```text
///   Ok ──write fault──▶ ReadOnly ──probe + write succeed──▶ Degraded
///   Degraded ──next write succeeds──▶ Ok
///   Degraded ──write fault──▶ ReadOnly
/// ```
///
/// `ReadOnly` sheds every mutation with a typed
/// [`DurableError::ReadOnly`] (after one cheap recovery probe per
/// attempt); reads are unaffected in every state. `Degraded` is the
/// probation window between the first post-fault success and the
/// confirming second one, so health dashboards can see a store that
/// recovered but has not yet re-proven itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Writes and reads both healthy.
    Ok,
    /// Recovering: the last write succeeded after a fault; one more
    /// success returns the store to [`HealthState::Ok`].
    Degraded,
    /// Mutations are shed; reads continue from the applied state.
    ReadOnly,
}

impl HealthState {
    /// Lowercase wire name (`"ok"` / `"degraded"` / `"read_only"`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::ReadOnly => "read_only",
        }
    }
}

/// A point-in-time health report for one durable store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreHealth {
    /// Current write-path state.
    pub state: HealthState,
    /// Journal write faults observed since open.
    pub write_faults: u64,
    /// The most recent write fault's message, until fully recovered.
    pub last_error: Option<String>,
    /// Live WAL epoch.
    pub epoch: u64,
}

struct Journal {
    wal: Wal,
    /// Epoch of the live (highest) segment.
    epoch: u64,
    /// Epoch the current snapshot was cut against; segments in
    /// `base_epoch..=epoch` are the unfolded L0 tier.
    base_epoch: u64,
    /// Unfolded ops across every live segment.
    wal_ops: usize,
    /// Write-path health machine (see [`HealthState`]).
    health: HealthState,
    /// Journal write faults observed since open.
    write_faults: u64,
    /// Most recent write fault, until fully recovered.
    last_error: Option<String>,
    /// Injected fault script, re-installed into every WAL the store
    /// rotates to (chaos tests only).
    fault: Option<Arc<crate::fault::WriteFaultPlan>>,
}

impl Journal {
    /// Runs one journal append through the health machine: while
    /// `ReadOnly`, first probes recovery by truncating the torn tail
    /// the failed append left; on success the append proceeds and the
    /// state advances (`ReadOnly → Degraded → Ok`), on failure the
    /// mutation is shed with a typed [`DurableError::ReadOnly`]. Any
    /// append failure trips the store to `ReadOnly` — never a panic,
    /// and never a store/journal divergence, because the op is applied
    /// only after its frames are durable.
    fn commit_frames(
        &mut self,
        n_ops: usize,
        append: impl FnOnce(&mut Wal) -> Result<(), WalError>,
    ) -> Result<(), DurableError> {
        if self.health == HealthState::ReadOnly {
            if let Err(e) = self.wal.repair_tail() {
                self.last_error = Some(e.to_string());
                return Err(DurableError::ReadOnly(format!(
                    "torn journal tail could not be repaired: {e}"
                )));
            }
        }
        let entered = self.health;
        match append(&mut self.wal) {
            Ok(()) => {
                self.wal_ops += n_ops;
                self.health = match entered {
                    HealthState::ReadOnly => HealthState::Degraded,
                    _ => HealthState::Ok,
                };
                if self.health == HealthState::Ok {
                    self.last_error = None;
                }
                Ok(())
            }
            Err(e) => {
                self.write_faults += 1;
                let message = e.to_string();
                self.last_error = Some(message.clone());
                self.health = HealthState::ReadOnly;
                if entered == HealthState::ReadOnly {
                    Err(DurableError::ReadOnly(message))
                } else {
                    Err(e.into())
                }
            }
        }
    }

    fn commit_one(&mut self, op: &WalOp) -> Result<(), DurableError> {
        self.commit_frames(1, |wal| wal.append(op))
    }

    fn commit_batch(&mut self, ops: &[WalOp]) -> Result<(), DurableError> {
        self.commit_frames(ops.len(), |wal| wal.append_batch(ops))
    }
}

/// A [`VisualStore`] whose every mutation is journaled to a
/// write-ahead log before being applied, making acknowledged writes
/// crash-durable.
///
/// The wrapper must be the directory's sole mutator: mutations
/// serialize on an internal lock so the id journaled for an op is
/// exactly the id the store assigns. Reads go straight to the shared
/// store ([`DurableStore::store`]) without touching the journal.
pub struct DurableStore {
    dir: PathBuf,
    store: Arc<VisualStore>,
    journal: Mutex<Journal>,
    /// Spill/reload counters shared with every loader handed to the
    /// arena.
    spill_stats: Arc<SpillStats>,
    /// Guards against two concurrent [`CompactionTask`]s.
    fold_active: Mutex<bool>,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}.log"))
}

/// Applies one journaled op to the store at exactly the journaled ids.
///
/// Replay uses the explicit-id insert paths so a journal written by a
/// sharded platform (ids allocated by a global counter, rows landing on
/// whichever shard owns the image's region) reproduces the same rows on
/// reopen even though the ids are not contiguous per store.
fn apply_op(store: &VisualStore, op: &WalOp) -> Result<(), String> {
    match op {
        WalOp::AddImage {
            id,
            meta,
            origin,
            pixels,
        } => {
            let img = match pixels {
                None => None,
                Some((w, h, raw)) => {
                    if *w == 0 || *h == 0 || raw.len() != w.saturating_mul(*h).saturating_mul(3) {
                        return Err(format!(
                            "blob for {id}: {} bytes does not match {w}x{h}x3",
                            raw.len()
                        ));
                    }
                    Some(Image::from_raw(*w, *h, raw.clone()))
                }
            };
            store
                .add_image_at(*id, meta.clone(), origin.clone(), img)
                .map_err(|e| e.to_string())?;
        }
        WalOp::PutFeature {
            image,
            kind,
            vector,
        } => {
            store
                .put_feature(*image, *kind, vector.clone())
                .map_err(|e| e.to_string())?;
        }
        WalOp::RegisterScheme { id, name, labels } => {
            check_labels(labels)?;
            store
                .register_scheme_at(*id, name.clone(), labels.clone())
                .map_err(|e| e.to_string())?;
        }
        WalOp::Annotate(a) => {
            check_confidence(a.confidence)?;
            store
                .annotate_at(
                    a.id,
                    a.image,
                    a.classification,
                    a.label,
                    a.confidence,
                    a.source,
                    a.region,
                )
                .map_err(|e| e.to_string())?;
        }
        WalOp::IngestUpload {
            marker,
            id,
            meta,
            origin,
            pixels,
            features,
        } => {
            let img = match pixels {
                None => None,
                Some((w, h, raw)) => {
                    if *w == 0 || *h == 0 || raw.len() != w.saturating_mul(*h).saturating_mul(3) {
                        return Err(format!(
                            "blob for {id}: {} bytes does not match {w}x{h}x3",
                            raw.len()
                        ));
                    }
                    Some(Image::from_raw(*w, *h, raw.clone()))
                }
            };
            let (_, replayed) = store
                .ingest_upload_at(marker, *id, meta.clone(), origin.clone(), img, features)
                .map_err(|e| e.to_string())?;
            if replayed {
                // The live WAL holds only ops journaled after the
                // snapshot epoch, so a marker that already exists
                // means the journal disagrees with itself.
                return Err(format!("upload marker `{marker}` journaled twice"));
            }
        }
    }
    Ok(())
}

/// Validates a batch of explicit-id ops against the current store state
/// *plus* the effects of earlier ops in the same batch (an `AddImage`
/// makes a later `PutFeature` for that image legal, a scheme registered
/// earlier in the batch can be annotated against later, and so on).
/// Nothing is journaled unless every op passes — group commit must not
/// ack a batch it would refuse to replay.
fn validate_batch(store: &VisualStore, ops: &[WalOp]) -> Result<(), DurableError> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut new_images: BTreeSet<ImageId> = BTreeSet::new();
    let mut new_schemes: BTreeMap<ClassificationId, usize> = BTreeMap::new();
    let mut new_scheme_names: BTreeSet<&str> = BTreeSet::new();
    let mut new_annotations: BTreeSet<AnnotationId> = BTreeSet::new();
    let mut new_markers: BTreeSet<&str> = BTreeSet::new();
    let reject = |i: usize, m: String| Err(DurableError::Rejected(format!("batch op {i}: {m}")));
    let image_known =
        |new: &BTreeSet<ImageId>, id: ImageId| new.contains(&id) || store.image(id).is_some();
    let check_pixels = |pixels: &Option<(usize, usize, Vec<u8>)>| -> Result<(), String> {
        match pixels {
            None => Ok(()),
            Some((w, h, raw)) => {
                if *w == 0 || *h == 0 || raw.len() != w.saturating_mul(*h).saturating_mul(3) {
                    Err(format!("{} blob bytes do not match {w}x{h}x3", raw.len()))
                } else {
                    Ok(())
                }
            }
        }
    };
    for (i, op) in ops.iter().enumerate() {
        match op {
            WalOp::AddImage {
                id, origin, pixels, ..
            } => {
                if let ImageOrigin::Augmented { parent, .. } = origin {
                    if !image_known(&new_images, *parent) {
                        return reject(i, format!("unknown parent {parent}"));
                    }
                }
                if image_known(&new_images, *id) {
                    return reject(i, format!("duplicate image id {id}"));
                }
                if let Err(m) = check_pixels(pixels) {
                    return reject(i, m);
                }
                new_images.insert(*id);
            }
            WalOp::PutFeature { image, .. } => {
                if !image_known(&new_images, *image) {
                    return reject(i, format!("unknown image {image}"));
                }
            }
            WalOp::RegisterScheme { id, name, labels } => {
                if let Err(m) = check_labels(labels) {
                    return reject(i, m);
                }
                if new_scheme_names.contains(name.as_str()) || store.scheme_by_name(name).is_some()
                {
                    return reject(i, format!("duplicate scheme `{name}`"));
                }
                if new_schemes.contains_key(id) || store.scheme(*id).is_some() {
                    return reject(i, format!("duplicate classification id {id}"));
                }
                new_schemes.insert(*id, labels.len());
                new_scheme_names.insert(name.as_str());
            }
            WalOp::Annotate(a) => {
                if let Err(m) = check_confidence(a.confidence) {
                    return reject(i, m);
                }
                if !image_known(&new_images, a.image) {
                    return reject(i, format!("unknown image {}", a.image));
                }
                let vocabulary = match new_schemes
                    .get(&a.classification)
                    .copied()
                    .or_else(|| store.scheme(a.classification).map(|s| s.labels.len()))
                {
                    Some(v) => v,
                    None => {
                        return reject(i, format!("unknown classification {}", a.classification))
                    }
                };
                if a.label >= vocabulary {
                    return reject(
                        i,
                        format!("label {} outside vocabulary of {vocabulary}", a.label),
                    );
                }
                if new_annotations.contains(&a.id) || store.annotation(a.id).is_some() {
                    return reject(i, format!("duplicate annotation id {}", a.id));
                }
                new_annotations.insert(a.id);
            }
            WalOp::IngestUpload {
                marker,
                id,
                origin,
                pixels,
                ..
            } => {
                if new_markers.contains(marker.as_str()) || store.upload_marker(marker).is_some() {
                    return reject(i, format!("duplicate upload marker `{marker}`"));
                }
                if let ImageOrigin::Augmented { parent, .. } = origin {
                    if !image_known(&new_images, *parent) {
                        return reject(i, format!("unknown parent {parent}"));
                    }
                }
                if image_known(&new_images, *id) {
                    return reject(i, format!("duplicate image id {id}"));
                }
                if let Err(m) = check_pixels(pixels) {
                    return reject(i, m);
                }
                new_images.insert(*id);
                new_markers.insert(marker.as_str());
            }
        }
    }
    Ok(())
}

fn check_labels(labels: &[String]) -> Result<(), String> {
    let mut seen = std::collections::BTreeSet::new();
    if labels.is_empty() || !labels.iter().all(|l| seen.insert(l.as_str())) {
        return Err("label vocabulary must be non-empty and unique".into());
    }
    Ok(())
}

fn check_confidence(confidence: f32) -> Result<(), String> {
    if !(0.0..=1.0).contains(&confidence) {
        return Err(format!("confidence {confidence} outside [0, 1]"));
    }
    Ok(())
}

impl DurableStore {
    /// Opens (or creates) the durable store at `dir`, recovering from
    /// any crash: loads the newest intact snapshot, replays every live
    /// WAL segment (epoch >= the snapshot's base) in ascending order —
    /// truncating a torn tail only on the highest segment, the one a
    /// crash could have torn mid-append — and sweeps crash debris
    /// (stale staging files, segments older than the base, spill
    /// files: the store reopens fully resident).
    pub fn open(dir: &Path) -> Result<(DurableStore, RecoveryReport), DurableError> {
        std::fs::create_dir_all(dir)?;
        let mut debris_removed = 0usize;

        // A staging file is a save that never reached its rename; the
        // real snapshot (if any) is still intact.
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let staging = persist::staging_path(&snapshot_path)?;
        if staging.exists() {
            std::fs::remove_file(&staging)?;
            debris_removed += 1;
        }

        let (store, base_epoch, snapshot_found) = if snapshot_path.exists() {
            let (snap, epoch) = persist::load_snapshot(&snapshot_path)?;
            (VisualStore::from_snapshot(snap)?, epoch, true)
        } else {
            (VisualStore::new(), 0, false)
        };

        // Inventory the directory: live segments (epoch >= base,
        // replayed ascending), stale segments (epoch < base — folded
        // into the snapshot before a crash interrupted their removal),
        // and spill artifacts (the rebuilt store is fully resident, so
        // every spill file is stale).
        let mut live_segments: Vec<u64> = Vec::new();
        let mut debris: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let Some(name) = entry.file_name().to_str().map(str::to_string) else {
                continue;
            };
            if spill::is_spill_debris(&name) {
                debris.push(entry.path());
            } else if let Some(epoch) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                if epoch >= base_epoch {
                    live_segments.push(epoch);
                } else {
                    debris.push(entry.path());
                }
            } else if name.starts_with("wal-") && name.ends_with(".log") {
                // Unparseable epoch: not ours, treat as debris.
                debris.push(entry.path());
            }
        }
        live_segments.sort_unstable();
        debris.sort();
        for path in &debris {
            std::fs::remove_file(path)?;
            debris_removed += 1;
        }
        if !debris.is_empty() {
            persist::fsync_parent(&snapshot_path)?;
        }

        // Replay sealed segments strictly: they were rotated away while
        // every record in them was already fsynced, so a torn tail
        // there is corruption, not an interrupted append.
        let mut replayed_ops = 0usize;
        let mut torn_bytes = 0u64;
        let mut replay = |ops: &[WalOp], epoch: u64| -> Result<(), DurableError> {
            for (i, op) in ops.iter().enumerate() {
                apply_op(&store, op).map_err(|m| {
                    DurableError::Replay(format!("segment {epoch} record {i}: {m}"))
                })?;
            }
            replayed_ops += ops.len();
            Ok(())
        };
        let (live_epoch, sealed) = match live_segments.split_last() {
            Some((&highest, sealed)) => (highest, sealed),
            None => (base_epoch, &[][..]),
        };
        for &epoch in sealed {
            let (ops, torn) = Wal::read_all(&wal_path(dir, epoch))?;
            if torn > 0 {
                return Err(DurableError::Replay(format!(
                    "sealed wal segment {epoch} has {torn} torn byte(s)"
                )));
            }
            replay(&ops, epoch)?;
        }
        let (wal, ops, torn) = Wal::open_recover(&wal_path(dir, live_epoch))?;
        torn_bytes += torn;
        replay(&ops, live_epoch)?;

        let report = RecoveryReport {
            epoch: live_epoch,
            snapshot_found,
            replayed_ops,
            torn_bytes,
            debris_removed,
        };
        Ok((
            DurableStore {
                dir: dir.to_path_buf(),
                store: Arc::new(store),
                journal: Mutex::new(Journal {
                    wal,
                    epoch: live_epoch,
                    base_epoch,
                    wal_ops: replayed_ops,
                    health: HealthState::Ok,
                    write_faults: 0,
                    last_error: None,
                    fault: None,
                }),
                spill_stats: Arc::new(SpillStats::default()),
                fold_active: Mutex::new(false),
            },
            report,
        ))
    }

    /// The underlying store, for reads. Mutating it directly bypasses
    /// the journal and forfeits durability for those writes.
    pub fn store(&self) -> &VisualStore {
        &self.store
    }

    /// A shared handle to the underlying store (e.g. to hand to query
    /// engines, which only read).
    pub fn store_arc(&self) -> Arc<VisualStore> {
        Arc::clone(&self.store)
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current WAL epoch.
    pub fn epoch(&self) -> u64 {
        self.journal.lock().epoch
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> Result<u64, DurableError> {
        Ok(self.journal.lock().wal.len_bytes()?)
    }

    /// Journaled-then-applied [`VisualStore::add_image`]. When this
    /// returns `Ok`, the image survives a crash.
    pub fn add_image(
        &self,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
    ) -> Result<ImageId, DurableError> {
        let mut journal = self.journal.lock();
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if self.store.image(*parent).is_none() {
                return Err(StorageError::UnknownImage(*parent).into());
            }
        }
        let id = self.store.peek_next_image_id();
        let op = WalOp::AddImage {
            id,
            meta: meta.clone(),
            origin: origin.clone(),
            pixels: pixels
                .as_ref()
                .map(|p| (p.width(), p.height(), p.raw().to_vec())),
        };
        journal.commit_one(&op)?;
        Ok(self.store.add_image(meta, origin, pixels)?)
    }

    /// Journaled-then-applied [`VisualStore::ingest_upload`]: the image
    /// row, its feature vectors, and the upload's idempotency marker
    /// travel as one composite WAL record, so a crash at any byte
    /// preserves either the whole acknowledged upload or none of it —
    /// an acked-once upload is ingested exactly once across crashes.
    /// Replays (marker already present) return the original id with
    /// `replayed = true` without touching the journal.
    pub fn ingest_upload(
        &self,
        marker: &str,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
        features: Vec<(FeatureKind, Vec<f32>)>,
    ) -> Result<(ImageId, bool), DurableError> {
        let mut journal = self.journal.lock();
        if let Some(existing) = self.store.upload_marker(marker) {
            return Ok((existing, true));
        }
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if self.store.image(*parent).is_none() {
                return Err(StorageError::UnknownImage(*parent).into());
            }
        }
        let id = self.store.peek_next_image_id();
        let op = WalOp::IngestUpload {
            marker: marker.to_string(),
            id,
            meta: meta.clone(),
            origin: origin.clone(),
            pixels: pixels
                .as_ref()
                .map(|p| (p.width(), p.height(), p.raw().to_vec())),
            features: features.clone(),
        };
        journal.commit_one(&op)?;
        Ok(self
            .store
            .ingest_upload(marker, meta, origin, pixels, &features)?)
    }

    /// Journaled-then-applied [`VisualStore::put_feature`].
    pub fn put_feature(
        &self,
        image: ImageId,
        kind: FeatureKind,
        vector: Vec<f32>,
    ) -> Result<(), DurableError> {
        let mut journal = self.journal.lock();
        if self.store.image(image).is_none() {
            return Err(StorageError::UnknownImage(image).into());
        }
        let op = WalOp::PutFeature {
            image,
            kind,
            vector: vector.clone(),
        };
        journal.commit_one(&op)?;
        Ok(self.store.put_feature(image, kind, vector)?)
    }

    /// Journaled-then-applied [`VisualStore::register_scheme`].
    pub fn register_scheme(
        &self,
        name: impl Into<String>,
        labels: Vec<String>,
    ) -> Result<ClassificationId, DurableError> {
        let name = name.into();
        let mut journal = self.journal.lock();
        check_labels(&labels).map_err(DurableError::Rejected)?;
        if self.store.scheme_by_name(&name).is_some() {
            return Err(StorageError::DuplicateScheme(name).into());
        }
        let id = self.store.peek_next_classification_id();
        let op = WalOp::RegisterScheme {
            id,
            name: name.clone(),
            labels: labels.clone(),
        };
        journal.commit_one(&op)?;
        Ok(self.store.register_scheme(name, labels)?)
    }

    /// Journaled-then-applied [`VisualStore::annotate`].
    #[allow(clippy::too_many_arguments)]
    pub fn annotate(
        &self,
        image: ImageId,
        classification: ClassificationId,
        label: usize,
        confidence: f32,
        source: AnnotationSource,
        region: Option<RegionOfInterest>,
    ) -> Result<AnnotationId, DurableError> {
        let mut journal = self.journal.lock();
        check_confidence(confidence).map_err(DurableError::Rejected)?;
        if self.store.image(image).is_none() {
            return Err(StorageError::UnknownImage(image).into());
        }
        let vocabulary = match self.store.scheme(classification) {
            None => return Err(StorageError::UnknownClassification(classification).into()),
            Some(s) => s.labels.len(),
        };
        if label >= vocabulary {
            return Err(StorageError::LabelOutOfRange {
                classification,
                label,
                vocabulary,
            }
            .into());
        }
        let id = self.store.peek_next_annotation_id();
        let op = WalOp::Annotate(Annotation {
            id,
            image,
            classification,
            label,
            confidence,
            source,
            region,
        });
        journal.commit_one(&op)?;
        Ok(self
            .store
            .annotate(image, classification, label, confidence, source, region)?)
    }

    /// Journaled-then-applied [`VisualStore::add_image_at`]: inserts the
    /// image under a caller-chosen id (e.g. one drawn from a platform-
    /// wide allocator shared across shards).
    pub fn add_image_at(
        &self,
        id: ImageId,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
    ) -> Result<ImageId, DurableError> {
        let mut journal = self.journal.lock();
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if self.store.image(*parent).is_none() {
                return Err(StorageError::UnknownImage(*parent).into());
            }
        }
        if self.store.image(id).is_some() {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "image",
            }
            .into());
        }
        let op = WalOp::AddImage {
            id,
            meta: meta.clone(),
            origin: origin.clone(),
            pixels: pixels
                .as_ref()
                .map(|p| (p.width(), p.height(), p.raw().to_vec())),
        };
        journal.commit_one(&op)?;
        Ok(self.store.add_image_at(id, meta, origin, pixels)?)
    }

    /// Journaled-then-applied [`VisualStore::ingest_upload_at`]: the
    /// composite upload record carries the caller-chosen id, so replay
    /// on a shard's WAL reproduces the platform-wide id exactly.
    /// Replays (marker already present) return the original id with
    /// `replayed = true` without touching the journal.
    pub fn ingest_upload_at(
        &self,
        marker: &str,
        id: ImageId,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
        features: Vec<(FeatureKind, Vec<f32>)>,
    ) -> Result<(ImageId, bool), DurableError> {
        let mut journal = self.journal.lock();
        if let Some(existing) = self.store.upload_marker(marker) {
            return Ok((existing, true));
        }
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if self.store.image(*parent).is_none() {
                return Err(StorageError::UnknownImage(*parent).into());
            }
        }
        if self.store.image(id).is_some() {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "image",
            }
            .into());
        }
        let op = WalOp::IngestUpload {
            marker: marker.to_string(),
            id,
            meta: meta.clone(),
            origin: origin.clone(),
            pixels: pixels
                .as_ref()
                .map(|p| (p.width(), p.height(), p.raw().to_vec())),
            features: features.clone(),
        };
        journal.commit_one(&op)?;
        Ok(self
            .store
            .ingest_upload_at(marker, id, meta, origin, pixels, &features)?)
    }

    /// Journaled-then-applied [`VisualStore::register_scheme_at`]:
    /// registers a scheme under a caller-chosen id so every shard of a
    /// partitioned platform shares one classification-id space.
    pub fn register_scheme_at(
        &self,
        id: ClassificationId,
        name: impl Into<String>,
        labels: Vec<String>,
    ) -> Result<ClassificationId, DurableError> {
        let name = name.into();
        let mut journal = self.journal.lock();
        check_labels(&labels).map_err(DurableError::Rejected)?;
        if self.store.scheme_by_name(&name).is_some() {
            return Err(StorageError::DuplicateScheme(name).into());
        }
        if self.store.scheme(id).is_some() {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "classification",
            }
            .into());
        }
        let op = WalOp::RegisterScheme {
            id,
            name: name.clone(),
            labels: labels.clone(),
        };
        journal.commit_one(&op)?;
        Ok(self.store.register_scheme_at(id, name, labels)?)
    }

    /// Journaled-then-applied [`VisualStore::annotate_at`]: records an
    /// annotation under a caller-chosen id from a platform-wide
    /// allocator.
    #[allow(clippy::too_many_arguments)]
    pub fn annotate_at(
        &self,
        id: AnnotationId,
        image: ImageId,
        classification: ClassificationId,
        label: usize,
        confidence: f32,
        source: AnnotationSource,
        region: Option<RegionOfInterest>,
    ) -> Result<AnnotationId, DurableError> {
        let mut journal = self.journal.lock();
        check_confidence(confidence).map_err(DurableError::Rejected)?;
        if self.store.image(image).is_none() {
            return Err(StorageError::UnknownImage(image).into());
        }
        let vocabulary = match self.store.scheme(classification) {
            None => return Err(StorageError::UnknownClassification(classification).into()),
            Some(s) => s.labels.len(),
        };
        if label >= vocabulary {
            return Err(StorageError::LabelOutOfRange {
                classification,
                label,
                vocabulary,
            }
            .into());
        }
        if self.store.annotation(id).is_some() {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "annotation",
            }
            .into());
        }
        let op = WalOp::Annotate(Annotation {
            id,
            image,
            classification,
            label,
            confidence,
            source,
            region,
        });
        journal.commit_one(&op)?;
        Ok(self
            .store
            .annotate_at(id, image, classification, label, confidence, source, region)?)
    }

    /// Group commit: journals every op in `ops` as one framed write +
    /// one fsync ([`Wal::append_batch`]), then applies them in order.
    /// The whole batch is validated against the store *and* its own
    /// earlier ops before a single byte is journaled, so an `Ok` means
    /// every op is durable and applied; a crash mid-append recovers an
    /// in-order prefix of the batch, none of which was acknowledged.
    ///
    /// Ops carry explicit ids (the `_at` discipline): callers allocate
    /// ids up front — e.g. from a platform-wide allocator — and replay
    /// reproduces them exactly.
    pub fn apply_batch(&self, ops: Vec<WalOp>) -> Result<(), DurableError> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut journal = self.journal.lock();
        validate_batch(&self.store, &ops)?;
        journal.commit_batch(&ops)?;
        for (i, op) in ops.iter().enumerate() {
            // Validation above guarantees application succeeds; a
            // failure here means journal and store disagree, which is
            // exactly what Replay signals.
            apply_op(&self.store, op)
                .map_err(|m| DurableError::Replay(format!("batch op {i}: {m}")))?;
        }
        Ok(())
    }

    /// Seals the live WAL segment and starts a fresh one at the next
    /// epoch, growing the L0 tier without folding anything. Sealed
    /// segments are immutable, replayed in epoch order on open, and
    /// retired by the next compaction. Returns the new live epoch.
    pub fn seal(&self) -> Result<u64, DurableError> {
        let mut journal = self.journal.lock();
        let next = journal.epoch + 1;
        let mut wal = Wal::create(&wal_path(&self.dir, next))?;
        wal.set_fault_plan(journal.fault.clone());
        journal.wal = wal;
        journal.epoch = next;
        Ok(next)
    }

    /// Installs (or removes) an injected write-fault script on the
    /// journal: the plan follows the live WAL across seals and
    /// compactions, so a chaos test can fill the "disk" mid-traffic
    /// and watch the health machine shed, probe, and recover. Chaos
    /// tooling only; a cleared plan has no effect on the write path.
    pub fn set_write_fault_plan(&self, plan: Option<Arc<crate::fault::WriteFaultPlan>>) {
        let mut journal = self.journal.lock();
        journal.wal.set_fault_plan(plan.clone());
        journal.fault = plan;
    }

    /// The store's current write-path health (see [`HealthState`]).
    pub fn health(&self) -> StoreHealth {
        let journal = self.journal.lock();
        StoreHealth {
            state: journal.health,
            write_faults: journal.write_faults,
            last_error: journal.last_error.clone(),
            epoch: journal.epoch,
        }
    }

    /// Begins an incremental tiered compaction. Under the journal lock
    /// — atomically with respect to every mutator — this cuts a
    /// snapshot of the store and seals the live segment, so the cut
    /// covers exactly the ops journaled so far and nothing that lands
    /// afterwards. Writers proceed into the new live segment
    /// immediately; drive the returned task with
    /// [`CompactionTask::step`] to fold the sealed tier without ever
    /// blocking them. Dropping the task without finishing abandons the
    /// fold harmlessly (the staging file is debris; nothing was
    /// published).
    pub fn begin_compaction(&self) -> Result<CompactionTask<'_>, DurableError> {
        {
            let mut active = self.fold_active.lock();
            if *active {
                return Err(DurableError::Rejected(
                    "a compaction is already in progress".into(),
                ));
            }
            *active = true;
        }
        match self.begin_compaction_inner() {
            Ok(task) => Ok(task),
            Err(e) => {
                *self.fold_active.lock() = false;
                Err(e)
            }
        }
    }

    fn begin_compaction_inner(&self) -> Result<CompactionTask<'_>, DurableError> {
        let mut journal = self.journal.lock();
        let mut folded = Vec::new();
        let mut wal_bytes_before = 0u64;
        for epoch in journal.base_epoch..=journal.epoch {
            let path = wal_path(&self.dir, epoch);
            if path.exists() {
                wal_bytes_before += std::fs::metadata(&path)?.len();
                folded.push(path);
            }
        }
        let next_epoch = journal.epoch + 1;
        let mut next_wal = Wal::create(&wal_path(&self.dir, next_epoch))?;
        next_wal.set_fault_plan(journal.fault.clone());
        // The cut happens while the journal lock still excludes every
        // mutator: ops journaled up to here are in the cut and in the
        // sealed tier; ops journaled after go to the new live segment
        // only. Either way nothing can replay twice.
        let cut = self.store.snapshot();
        let ops_compacted = journal.wal_ops;
        journal.wal = next_wal;
        journal.epoch = next_epoch;
        journal.wal_ops = 0;
        drop(journal);

        let staging = persist::staging_path(&self.dir.join(SNAPSHOT_FILE))?;
        let rows = persist::snapshot_row_count(&cut);
        Ok(CompactionTask {
            ds: self,
            cut,
            new_base: next_epoch,
            folded,
            ops_compacted,
            wal_bytes_before,
            staging,
            file: None,
            next_row: 0,
            rows,
            increments_run: 0,
            reloaded_at_begin: self.spill_stats.bytes_reloaded(),
            published: false,
        })
    }

    /// Stop-the-world wrapper around the incremental schedule: begins a
    /// compaction and drives every increment to completion on `pool`
    /// before returning. State and on-disk bytes are identical for
    /// every pool width (increments render rows in deterministic
    /// order).
    pub fn compact_with_pool(&self, pool: &Pool) -> Result<CompactionReport, DurableError> {
        let mut task = self.begin_compaction()?;
        loop {
            if let Some(report) = task.step(pool)? {
                return Ok(report);
            }
        }
    }

    /// Folds the journal into a fresh snapshot and rotates the WAL to
    /// the next epoch (serial [`DurableStore::compact_with_pool`]).
    /// Safe against a crash at any point: the next epoch's empty WAL is
    /// created *before* the snapshot naming it is atomically published,
    /// and the superseded segments are only removed after — whichever
    /// side of the publish a crash lands on, the surviving snapshot
    /// pairs with intact segments that replay to the acknowledged
    /// state.
    pub fn compact(&self) -> Result<CompactionReport, DurableError> {
        self.compact_with_pool(&Pool::serial())
    }

    /// Spills every cold feature-arena chunk (all frozen chunks except
    /// the newest `keep_hot` per slab) to `spill-*.bin` files in the
    /// store directory, releasing their resident memory. Returns
    /// `(chunks, float_bytes)` released. Reads through
    /// [`DurableStore::store`] transparently reload spilled chunks on
    /// first touch.
    pub fn spill_cold_features(&self, keep_hot: usize) -> Result<(usize, u64), DurableError> {
        let dir = self.dir.clone();
        let stats = Arc::clone(&self.spill_stats);
        let result = self
            .store
            .spill_cold_chunks(keep_hot, |kind, dim, chunk, data, quant| {
                spill::write_spill(&dir, kind, dim, chunk, data, Some(quant), &stats)?;
                Ok::<_, DurableError>(Arc::new(spill::DiskChunkLoader::new(
                    dir.clone(),
                    kind,
                    dim,
                    data.len(),
                    Arc::clone(&stats),
                )) as Arc<dyn tvdp_kernel::ChunkLoader>)
            });
        if let Err(e) = &result {
            // A failed spill leaves the chunks resident and the store
            // fully serviceable — degraded, not read-only: writes are
            // unaffected, only the memory-release goal was missed.
            let mut journal = self.journal.lock();
            if journal.health == HealthState::Ok {
                journal.health = HealthState::Degraded;
            }
            journal.last_error = Some(format!("spill: {e}"));
        }
        result
    }

    /// Spill/reload counters for this store's feature arena.
    pub fn spill_stats(&self) -> &SpillStats {
        &self.spill_stats
    }
}

/// Rows rendered per compaction increment. Small enough that one
/// increment is a bounded slice of work on the pool; large enough that
/// a city-scale snapshot folds in few thousand increments.
const COMPACTION_INCREMENT_ROWS: usize = 2048;

/// An in-progress incremental compaction (see
/// [`DurableStore::begin_compaction`]). Each [`CompactionTask::step`]
/// renders a bounded slice of the snapshot cut into the staging file,
/// fanning row rendering out over the given pool; the final step
/// publishes atomically (PR 4 staged-rename protocol), retires the
/// folded L0 segments, and spills cold arena chunks.
pub struct CompactionTask<'a> {
    ds: &'a DurableStore,
    cut: Snapshot,
    new_base: u64,
    folded: Vec<PathBuf>,
    ops_compacted: usize,
    wal_bytes_before: u64,
    staging: PathBuf,
    file: Option<std::fs::File>,
    next_row: usize,
    rows: usize,
    increments_run: usize,
    reloaded_at_begin: u64,
    published: bool,
}

impl std::fmt::Debug for CompactionTask<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompactionTask")
            .field("new_base", &self.new_base)
            .field("next_row", &self.next_row)
            .field("rows", &self.rows)
            .field("published", &self.published)
            .finish_non_exhaustive()
    }
}

impl CompactionTask<'_> {
    /// Runs one bounded increment. Rendering increments write up to
    /// [`COMPACTION_INCREMENT_ROWS`] rows (rendered in parallel on
    /// `pool`, concatenated in row order — bytes are pool-width
    /// independent); the final increment fsyncs, atomically publishes
    /// the snapshot, fsyncs the parent directory, retires the folded
    /// segments, and spills cold arena chunks. Returns `Some(report)`
    /// once published, `None` while work remains.
    pub fn step(&mut self, pool: &Pool) -> Result<Option<CompactionReport>, DurableError> {
        if self.published {
            return Err(DurableError::Rejected(
                "compaction already published".into(),
            ));
        }
        self.increments_run += 1;
        if self.file.is_none() {
            let mut file = std::fs::File::create(&self.staging)?;
            file.write_all(persist::render_header_line(self.new_base).as_bytes())?;
            self.file = Some(file);
            return Ok(None);
        }
        if self.next_row < self.rows {
            let start = self.next_row;
            let end = (start + COMPACTION_INCREMENT_ROWS).min(self.rows);
            let cut = &self.cut;
            let lines = pool.map_index(end - start, |i| {
                persist::render_snapshot_row(cut, start + i)
            });
            let file = match self.file.as_mut() {
                Some(f) => f,
                // The branch above created it; unreachable by construction.
                None => return Err(DurableError::Rejected("staging file vanished".into())),
            };
            for line in &lines {
                file.write_all(line.as_bytes())?;
            }
            self.next_row = end;
            return Ok(None);
        }

        // Publish: flush + fsync the staging file, atomically rename it
        // over the snapshot, fsync the parent so the rename is durable,
        // then retire the folded segments (their removal is fsynced
        // too; if a crash interleaves, open() sweeps them as debris).
        let snapshot_path = self.ds.dir.join(SNAPSHOT_FILE);
        if let Some(mut file) = self.file.take() {
            file.flush()?;
            file.sync_all()?;
        }
        std::fs::rename(&self.staging, &snapshot_path)?;
        persist::fsync_parent(&snapshot_path)?;
        self.published = true;
        {
            let mut journal = self.ds.journal.lock();
            journal.base_epoch = self.new_base;
        }
        *self.ds.fold_active.lock() = false;
        for path in &self.folded {
            // Best-effort: if a removal doesn't happen, open() sweeps
            // the stale segment.
            std::fs::remove_file(path).ok();
        }
        persist::fsync_parent(&snapshot_path)?;

        let (_, bytes_spilled) = self.ds.spill_cold_features(1)?;
        let snapshot_bytes = std::fs::metadata(&snapshot_path)?.len();
        Ok(Some(CompactionReport {
            epoch: self.new_base,
            ops_compacted: self.ops_compacted,
            wal_bytes_before: self.wal_bytes_before,
            snapshot_bytes,
            tiers_merged: self.folded.len(),
            increments_run: self.increments_run,
            bytes_spilled,
            bytes_reloaded: self
                .ds
                .spill_stats
                .bytes_reloaded()
                .saturating_sub(self.reloaded_at_begin),
        }))
    }

    /// Rows of the snapshot cut still waiting to be rendered.
    pub fn remaining_rows(&self) -> usize {
        self.rows - self.next_row
    }

    /// Increments run so far.
    pub fn increments_run(&self) -> usize {
        self.increments_run
    }

    /// Whether the snapshot has been published (the task is finished).
    pub fn is_published(&self) -> bool {
        self.published
    }
}

impl Drop for CompactionTask<'_> {
    fn drop(&mut self) {
        if !self.published {
            // Abandoned fold: nothing was published, the sealed
            // segments still replay on open. Put the op count back so
            // the next compaction reports it, drop the staging debris,
            // and release the fold gate.
            self.ds.journal.lock().wal_ops += self.ops_compacted;
            self.file.take();
            std::fs::remove_file(&self.staging).ok();
            *self.ds.fold_active.lock() = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UserId;
    use tvdp_geo::GeoPoint;

    fn meta() -> ImageMeta {
        ImageMeta {
            uploader: UserId(1),
            gps: GeoPoint::new(34.0, -118.25),
            fov: None,
            captured_at: 100,
            uploaded_at: 110,
            keywords: vec!["test".into()],
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tvdp-recovery-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn populate(ds: &DurableStore) -> (ImageId, ClassificationId) {
        let img = ds
            .add_image(
                meta(),
                ImageOrigin::Original,
                Some(Image::from_fn(2, 2, |x, y| [x as u8, y as u8, 3])),
            )
            .unwrap();
        let cls = ds
            .register_scheme("cleanliness", vec!["clean".into(), "dirty".into()])
            .unwrap();
        ds.put_feature(img, FeatureKind::Cnn, vec![0.5, 0.25])
            .unwrap();
        ds.annotate(img, cls, 1, 0.8, AnnotationSource::Human(UserId(1)), None)
            .unwrap();
        (img, cls)
    }

    #[test]
    fn acked_mutations_survive_reopen_without_compaction() {
        let dir = temp_dir("reopen");
        let (ds, report) = DurableStore::open(&dir).unwrap();
        assert!(!report.snapshot_found);
        let (img, cls) = populate(&ds);
        let live = ds.store().snapshot();
        drop(ds);

        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.replayed_ops, 4);
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(ds2.store().snapshot(), live);
        assert_eq!(ds2.store().annotations_of(img).len(), 1);
        assert!(ds2.store().scheme(cls).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_log() {
        let dir = temp_dir("compact");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        populate(&ds);
        let live = ds.store().snapshot();
        let before = ds.wal_bytes().unwrap();
        assert!(before > 0);
        let report = ds.compact().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.ops_compacted, 4);
        assert_eq!(report.wal_bytes_before, before);
        assert_eq!(ds.wal_bytes().unwrap(), 0);
        assert_eq!(ds.store().snapshot(), live);
        drop(ds);

        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert!(report.snapshot_found);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.replayed_ops, 0);
        assert_eq!(ds2.store().snapshot(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutations_after_compaction_replay_on_top_of_snapshot() {
        let dir = temp_dir("post-compact");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let (img, cls) = populate(&ds);
        ds.compact().unwrap();
        ds.annotate(img, cls, 0, 0.4, AnnotationSource::Human(UserId(2)), None)
            .unwrap();
        let live = ds.store().snapshot();
        drop(ds);
        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.replayed_ops, 1);
        assert_eq!(ds2.store().snapshot(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejected_mutations_are_never_journaled() {
        let dir = temp_dir("rejected");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let wal0 = ds.wal_bytes().unwrap();
        assert!(ds
            .put_feature(ImageId(9), FeatureKind::Cnn, vec![1.0])
            .is_err());
        assert!(ds
            .add_image(
                meta(),
                ImageOrigin::Augmented {
                    parent: ImageId(9),
                    op: "flip".into()
                },
                None
            )
            .is_err());
        assert!(ds.register_scheme("bad", vec![]).is_err());
        assert!(matches!(
            ds.annotate(
                ImageId(0),
                ClassificationId(0),
                0,
                1.5,
                AnnotationSource::Human(UserId(1)),
                None
            ),
            Err(DurableError::Rejected(_))
        ));
        assert_eq!(ds.wal_bytes().unwrap(), wal0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_upload_dedups_across_restart_and_compaction() {
        let dir = temp_dir("idem-upload");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let features = vec![(FeatureKind::Cnn, vec![1.0, -2.0])];
        let (id, replayed) = ds
            .ingest_upload("edge0-s7", meta(), ImageOrigin::Original, None, features)
            .unwrap();
        assert!(!replayed);
        // A same-process retry dedups without growing the journal.
        let wal_after_first = ds.wal_bytes().unwrap();
        let (again, replayed) = ds
            .ingest_upload("edge0-s7", meta(), ImageOrigin::Original, None, vec![])
            .unwrap();
        assert!(replayed);
        assert_eq!(again, id);
        assert_eq!(ds.wal_bytes().unwrap(), wal_after_first);
        drop(ds);

        // The ack was lost and the server restarted: the retry still
        // finds the marker after WAL replay.
        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.replayed_ops, 1);
        let (after, replayed) = ds2
            .ingest_upload("edge0-s7", meta(), ImageOrigin::Original, None, vec![])
            .unwrap();
        assert!(replayed);
        assert_eq!(after, id);
        assert_eq!(ds2.store().len(), 1);
        assert_eq!(
            ds2.store().feature(id, FeatureKind::Cnn).unwrap(),
            vec![1.0, -2.0]
        );

        // Compaction folds the marker into the snapshot.
        ds2.compact().unwrap();
        drop(ds2);
        let (ds3, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.replayed_ops, 0);
        let (after, replayed) = ds3
            .ingest_upload("edge0-s7", meta(), ImageOrigin::Original, None, vec![])
            .unwrap();
        assert!(replayed);
        assert_eq!(after, id);
        assert_eq!(ds3.store().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_composite_upload_record_is_all_or_nothing() {
        use crate::wal::frame;
        let dir = temp_dir("torn-upload");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let id = ds.store().peek_next_image_id();
        drop(ds);
        let op = WalOp::IngestUpload {
            marker: "edge1-s42".into(),
            id,
            meta: meta(),
            origin: ImageOrigin::Original,
            pixels: Some((2, 2, vec![9u8; 12])),
            features: vec![(FeatureKind::Cnn, vec![0.5, 0.25])],
        };
        let record = frame(&op.encode());
        let wal_file = dir.join("wal-0.log");
        // Crash the append at every byte offset: recovery must see
        // either the whole upload (rows + marker) or none of it —
        // never an image without its features or marker.
        for cut in 0..=record.len() {
            std::fs::write(&wal_file, &record.as_bytes()[..cut]).unwrap();
            let (ds, report) = DurableStore::open(&dir).unwrap();
            if cut == record.len() {
                assert_eq!(report.replayed_ops, 1);
                assert_eq!(ds.store().len(), 1);
                assert_eq!(ds.store().upload_marker("edge1-s42"), Some(id));
                assert_eq!(
                    ds.store().feature(id, FeatureKind::Cnn).unwrap(),
                    vec![0.5, 0.25]
                );
            } else {
                assert_eq!(report.replayed_ops, 0, "cut at byte {cut}");
                assert_eq!(ds.store().len(), 0, "cut at byte {cut}");
                assert!(
                    ds.store().upload_marker("edge1-s42").is_none(),
                    "cut at byte {cut}"
                );
            }
            drop(ds);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_debris_is_swept_on_open() {
        let dir = temp_dir("debris");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        populate(&ds);
        ds.compact().unwrap(); // base epoch is now 1
        drop(ds);
        // Plant an interrupted save, a folded segment whose removal was
        // interrupted, an interrupted spill, and a stale spill file.
        std::fs::write(dir.join("snapshot.json.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("wal-0.log"), b"stale").unwrap();
        std::fs::write(dir.join("spill-cnn-2-0.bin.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("spill-cnn-2-0.bin"), b"stale").unwrap();
        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.debris_removed, 4);
        assert!(!dir.join("snapshot.json.tmp").exists());
        assert!(!dir.join("wal-0.log").exists());
        assert!(!dir.join("spill-cnn-2-0.bin").exists());
        assert_eq!(ds2.store().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sealed_segments_replay_in_epoch_order_on_open() {
        let dir = temp_dir("sealed");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let (img, cls) = populate(&ds); // 4 ops in segment 0
        assert_eq!(ds.seal().unwrap(), 1);
        ds.annotate(img, cls, 0, 0.5, AnnotationSource::Human(UserId(2)), None)
            .unwrap(); // 1 op in segment 1
        assert_eq!(ds.seal().unwrap(), 2);
        ds.put_feature(img, FeatureKind::ColorHistogram, vec![0.1, 0.2])
            .unwrap(); // 1 op in segment 2
        let live = ds.store().snapshot();
        drop(ds);

        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(report.replayed_ops, 6);
        assert_eq!(ds2.store().snapshot(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_sealed_segment_is_a_hard_error() {
        let dir = temp_dir("torn-sealed");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        populate(&ds);
        ds.seal().unwrap();
        drop(ds);
        // Tear the sealed segment's tail: every record in it was
        // fsynced before the rotation, so this is corruption.
        let sealed = dir.join("wal-0.log");
        let bytes = std::fs::read(&sealed).unwrap();
        std::fs::write(&sealed, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            DurableStore::open(&dir),
            Err(DurableError::Replay(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_batch_is_atomic_durable_and_validated() {
        let dir = temp_dir("batch");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let img = ds.store().peek_next_image_id();
        let cls = ds.store().peek_next_classification_id();
        let ann = ds.store().peek_next_annotation_id();
        let ops = vec![
            WalOp::AddImage {
                id: img,
                meta: meta(),
                origin: ImageOrigin::Original,
                pixels: None,
            },
            WalOp::RegisterScheme {
                id: cls,
                name: "cleanliness".into(),
                labels: vec!["clean".into(), "dirty".into()],
            },
            WalOp::PutFeature {
                image: img,
                kind: FeatureKind::Cnn,
                vector: vec![0.5, 0.25],
            },
            WalOp::Annotate(Annotation {
                id: ann,
                image: img,
                classification: cls,
                label: 1,
                confidence: 0.9,
                source: AnnotationSource::Human(UserId(1)),
                region: None,
            }),
        ];
        ds.apply_batch(ops).unwrap();
        assert_eq!(ds.store().len(), 1);
        assert_eq!(ds.store().annotations_of(img).len(), 1);
        let live = ds.store().snapshot();

        // A batch with a bad op anywhere journals and applies nothing.
        let wal_before = ds.wal_bytes().unwrap();
        let bad = vec![
            WalOp::AddImage {
                id: ds.store().peek_next_image_id(),
                meta: meta(),
                origin: ImageOrigin::Original,
                pixels: None,
            },
            WalOp::Annotate(Annotation {
                id: ds.store().peek_next_annotation_id(),
                image: ImageId(999),
                classification: cls,
                label: 0,
                confidence: 0.5,
                source: AnnotationSource::Human(UserId(1)),
                region: None,
            }),
        ];
        assert!(matches!(
            ds.apply_batch(bad),
            Err(DurableError::Rejected(_))
        ));
        assert_eq!(ds.wal_bytes().unwrap(), wal_before);
        assert_eq!(ds.store().snapshot(), live);
        drop(ds);

        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.replayed_ops, 4);
        assert_eq!(ds2.store().snapshot(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_validation_sees_earlier_ops_in_the_same_batch() {
        let dir = temp_dir("batch-intra");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let img = ds.store().peek_next_image_id();
        // PutFeature for an image added earlier in the same batch.
        ds.apply_batch(vec![
            WalOp::AddImage {
                id: img,
                meta: meta(),
                origin: ImageOrigin::Original,
                pixels: None,
            },
            WalOp::PutFeature {
                image: img,
                kind: FeatureKind::Cnn,
                vector: vec![1.0],
            },
        ])
        .unwrap();
        // A duplicate id *within* one batch is rejected.
        let next = ds.store().peek_next_image_id();
        let dup = |id| WalOp::AddImage {
            id,
            meta: meta(),
            origin: ImageOrigin::Original,
            pixels: None,
        };
        assert!(matches!(
            ds.apply_batch(vec![dup(next), dup(next)]),
            Err(DurableError::Rejected(_))
        ));
        assert_eq!(ds.store().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_compaction_allows_writes_between_increments() {
        let dir = temp_dir("incremental");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let (img, cls) = populate(&ds);
        let before = ds.wal_bytes().unwrap();

        let mut task = ds.begin_compaction().unwrap();
        // The live segment was rotated: writers land in the new epoch
        // while the fold is still rendering.
        ds.annotate(img, cls, 0, 0.3, AnnotationSource::Human(UserId(3)), None)
            .unwrap();
        let pool = Pool::serial();
        let report = loop {
            if let Some(r) = task.step(&pool).unwrap() {
                break r;
            }
        };
        drop(task);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.ops_compacted, 4);
        assert_eq!(report.wal_bytes_before, before);
        assert_eq!(report.tiers_merged, 1);
        assert!(report.increments_run >= 2);
        // The post-cut annotation is in the live WAL, not the snapshot.
        assert!(ds.wal_bytes().unwrap() > 0);
        let live = ds.store().snapshot();
        drop(ds);

        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert!(report.snapshot_found);
        assert_eq!(report.replayed_ops, 1);
        assert_eq!(ds2.store().snapshot(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn abandoned_compaction_folds_fully_on_retry() {
        let dir = temp_dir("abandoned");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        populate(&ds);
        {
            let mut task = ds.begin_compaction().unwrap();
            task.step(&Pool::serial()).unwrap();
            // Dropped before publish: nothing folded, staging removed.
        }
        assert!(!dir.join("snapshot.json.tmp").exists());
        let report = ds.compact().unwrap();
        // The abandoned fold's ops are still accounted for.
        assert_eq!(report.ops_compacted, 4);
        assert_eq!(report.tiers_merged, 2); // wal-0 and the abandoned wal-1
        let live = ds.store().snapshot();
        drop(ds);
        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.replayed_ops, 0);
        assert_eq!(ds2.store().snapshot(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn only_one_compaction_runs_at_a_time() {
        let dir = temp_dir("fold-gate");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        populate(&ds);
        let task = ds.begin_compaction().unwrap();
        assert!(matches!(
            ds.begin_compaction(),
            Err(DurableError::Rejected(_))
        ));
        drop(task);
        // Dropping the first releases the gate.
        let task2 = ds.begin_compaction().unwrap();
        drop(task2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_spills_cold_chunks_that_reload_transparently() {
        use tvdp_kernel::ROWS_PER_CHUNK;
        let dir = temp_dir("spill-fold");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        // Two full chunks of 2-d CNN features; keep_hot = 1 spills the
        // first.
        let n = 2 * ROWS_PER_CHUNK;
        let mut imgs = Vec::new();
        for i in 0..n {
            let img = ds.add_image(meta(), ImageOrigin::Original, None).unwrap();
            ds.put_feature(img, FeatureKind::Cnn, vec![i as f32, -(i as f32)])
                .unwrap();
            imgs.push(img);
        }
        let report = ds.compact().unwrap();
        assert_eq!(
            report.bytes_spilled,
            (ROWS_PER_CHUNK * 2 * 4) as u64,
            "one cold chunk of 2-d f32 rows"
        );
        assert_eq!(ds.spill_stats().chunks_spilled(), 1);
        // Reads still see every row, bit-exact, via transparent reload.
        for (i, img) in imgs.iter().enumerate() {
            assert_eq!(
                ds.store().feature(*img, FeatureKind::Cnn).unwrap(),
                vec![i as f32, -(i as f32)],
                "row {i}"
            );
        }
        assert_eq!(ds.spill_stats().chunks_reloaded(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
