//! Crash recovery and the durable store wrapper.
//!
//! A durable store directory holds two things:
//!
//! * `snapshot.json` — an atomic snapshot ([`crate::persist`]) whose
//!   header records the WAL epoch it was cut against, and
//! * `wal-<epoch>.log` — the append-only op journal
//!   ([`crate::wal`]) for mutations since that snapshot.
//!
//! [`DurableStore::open`] is open-or-recover: load the snapshot (if
//! any), truncate the WAL's torn tail, replay the surviving ops, and
//! sweep crash debris (a stale `snapshot.json.tmp`, WAL files from
//! other epochs). [`DurableStore::compact`] folds the journal into a
//! fresh snapshot and rotates the WAL.
//!
//! Epochs make compaction crash-safe. The snapshot names the one WAL
//! that may be replayed on top of it; rotation creates the next epoch's
//! empty WAL *before* atomically publishing the snapshot that points at
//! it. A crash on either side of the publish leaves a snapshot whose
//! epoch matches an intact WAL — ops are never replayed twice and never
//! lost.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use tvdp_vision::{FeatureKind, Image};

use crate::annotation::{Annotation, AnnotationSource, RegionOfInterest};
use crate::ids::{AnnotationId, ClassificationId, ImageId};
use crate::persist::{self, PersistError};
use crate::record::{ImageMeta, ImageOrigin};
use crate::store::{SnapshotError, StorageError, VisualStore};
use crate::wal::{Wal, WalError, WalOp};

/// File name of the snapshot inside a durable store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// Errors from opening, mutating, or compacting a durable store.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The snapshot failed to load or save.
    Persist(PersistError),
    /// The WAL failed to append or recover.
    Wal(WalError),
    /// A mutation was rejected by the store's integrity checks.
    Storage(StorageError),
    /// A mutation was rejected before journaling (an invariant the
    /// store would otherwise enforce by panicking, e.g. an empty label
    /// vocabulary or a confidence outside `[0, 1]`).
    Rejected(String),
    /// WAL replay could not reproduce the journaled state.
    Replay(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "io error: {e}"),
            DurableError::Persist(e) => write!(f, "{e}"),
            DurableError::Wal(e) => write!(f, "{e}"),
            DurableError::Storage(e) => write!(f, "{e}"),
            DurableError::Rejected(m) => write!(f, "rejected: {m}"),
            DurableError::Replay(m) => write!(f, "wal replay failed: {m}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<PersistError> for DurableError {
    fn from(e: PersistError) -> Self {
        DurableError::Persist(e)
    }
}

impl From<SnapshotError> for DurableError {
    fn from(e: SnapshotError) -> Self {
        DurableError::Persist(PersistError::Invalid(e))
    }
}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<StorageError> for DurableError {
    fn from(e: StorageError) -> Self {
        DurableError::Storage(e)
    }
}

/// What [`DurableStore::open`] found and repaired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL epoch the store is now on.
    pub epoch: u64,
    /// Whether a snapshot file existed.
    pub snapshot_found: bool,
    /// Ops replayed from the WAL on top of the snapshot.
    pub replayed_ops: usize,
    /// Torn trailing bytes truncated from the WAL.
    pub torn_bytes: u64,
    /// Crash-debris files swept (stale staging file, WALs from other
    /// epochs).
    pub debris_removed: usize,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {}: snapshot {}, {} op(s) replayed, {} torn byte(s) truncated, {} debris file(s) removed",
            self.epoch,
            if self.snapshot_found { "loaded" } else { "absent" },
            self.replayed_ops,
            self.torn_bytes,
            self.debris_removed,
        )
    }
}

/// What [`DurableStore::compact`] accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// WAL epoch after rotation.
    pub epoch: u64,
    /// Journaled ops folded into the snapshot.
    pub ops_compacted: usize,
    /// WAL size before rotation, in bytes.
    pub wal_bytes_before: u64,
    /// Snapshot size after the write, in bytes.
    pub snapshot_bytes: u64,
}

impl std::fmt::Display for CompactionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {}: {} op(s) folded into a {} byte snapshot, wal shrunk {} -> 0 bytes",
            self.epoch, self.ops_compacted, self.snapshot_bytes, self.wal_bytes_before,
        )
    }
}

struct Journal {
    wal: Wal,
    epoch: u64,
    wal_ops: usize,
}

/// A [`VisualStore`] whose every mutation is journaled to a
/// write-ahead log before being applied, making acknowledged writes
/// crash-durable.
///
/// The wrapper must be the directory's sole mutator: mutations
/// serialize on an internal lock so the id journaled for an op is
/// exactly the id the store assigns. Reads go straight to the shared
/// store ([`DurableStore::store`]) without touching the journal.
pub struct DurableStore {
    dir: PathBuf,
    store: Arc<VisualStore>,
    journal: Mutex<Journal>,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}.log"))
}

/// Applies one journaled op to the store at exactly the journaled ids.
///
/// Replay uses the explicit-id insert paths so a journal written by a
/// sharded platform (ids allocated by a global counter, rows landing on
/// whichever shard owns the image's region) reproduces the same rows on
/// reopen even though the ids are not contiguous per store.
fn apply_op(store: &VisualStore, op: &WalOp) -> Result<(), String> {
    match op {
        WalOp::AddImage {
            id,
            meta,
            origin,
            pixels,
        } => {
            let img = match pixels {
                None => None,
                Some((w, h, raw)) => {
                    if *w == 0 || *h == 0 || raw.len() != w.saturating_mul(*h).saturating_mul(3) {
                        return Err(format!(
                            "blob for {id}: {} bytes does not match {w}x{h}x3",
                            raw.len()
                        ));
                    }
                    Some(Image::from_raw(*w, *h, raw.clone()))
                }
            };
            store
                .add_image_at(*id, meta.clone(), origin.clone(), img)
                .map_err(|e| e.to_string())?;
        }
        WalOp::PutFeature {
            image,
            kind,
            vector,
        } => {
            store
                .put_feature(*image, *kind, vector.clone())
                .map_err(|e| e.to_string())?;
        }
        WalOp::RegisterScheme { id, name, labels } => {
            check_labels(labels)?;
            store
                .register_scheme_at(*id, name.clone(), labels.clone())
                .map_err(|e| e.to_string())?;
        }
        WalOp::Annotate(a) => {
            check_confidence(a.confidence)?;
            store
                .annotate_at(
                    a.id,
                    a.image,
                    a.classification,
                    a.label,
                    a.confidence,
                    a.source,
                    a.region,
                )
                .map_err(|e| e.to_string())?;
        }
        WalOp::IngestUpload {
            marker,
            id,
            meta,
            origin,
            pixels,
            features,
        } => {
            let img = match pixels {
                None => None,
                Some((w, h, raw)) => {
                    if *w == 0 || *h == 0 || raw.len() != w.saturating_mul(*h).saturating_mul(3) {
                        return Err(format!(
                            "blob for {id}: {} bytes does not match {w}x{h}x3",
                            raw.len()
                        ));
                    }
                    Some(Image::from_raw(*w, *h, raw.clone()))
                }
            };
            let (_, replayed) = store
                .ingest_upload_at(marker, *id, meta.clone(), origin.clone(), img, features)
                .map_err(|e| e.to_string())?;
            if replayed {
                // The live WAL holds only ops journaled after the
                // snapshot epoch, so a marker that already exists
                // means the journal disagrees with itself.
                return Err(format!("upload marker `{marker}` journaled twice"));
            }
        }
    }
    Ok(())
}

fn check_labels(labels: &[String]) -> Result<(), String> {
    let mut seen = std::collections::BTreeSet::new();
    if labels.is_empty() || !labels.iter().all(|l| seen.insert(l.as_str())) {
        return Err("label vocabulary must be non-empty and unique".into());
    }
    Ok(())
}

fn check_confidence(confidence: f32) -> Result<(), String> {
    if !(0.0..=1.0).contains(&confidence) {
        return Err(format!("confidence {confidence} outside [0, 1]"));
    }
    Ok(())
}

impl DurableStore {
    /// Opens (or creates) the durable store at `dir`, recovering from
    /// any crash: loads the newest intact snapshot, truncates the
    /// WAL's torn tail, replays the surviving ops, and sweeps stale
    /// staging/WAL files from interrupted saves and compactions.
    pub fn open(dir: &Path) -> Result<(DurableStore, RecoveryReport), DurableError> {
        std::fs::create_dir_all(dir)?;
        let mut debris_removed = 0usize;

        // A staging file is a save that never reached its rename; the
        // real snapshot (if any) is still intact.
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let staging = persist::staging_path(&snapshot_path)?;
        if staging.exists() {
            std::fs::remove_file(&staging)?;
            debris_removed += 1;
        }

        let (store, epoch, snapshot_found) = if snapshot_path.exists() {
            let (snap, epoch) = persist::load_snapshot(&snapshot_path)?;
            (VisualStore::from_snapshot(snap)?, epoch, true)
        } else {
            (VisualStore::new(), 0, false)
        };

        let (wal, ops, torn_bytes) = Wal::open_recover(&wal_path(dir, epoch))?;
        let replayed_ops = ops.len();
        for (i, op) in ops.iter().enumerate() {
            apply_op(&store, op).map_err(|m| DurableError::Replay(format!("record {i}: {m}")))?;
        }

        // WAL files from other epochs are debris from a compaction that
        // crashed before (next epoch's file) or after (previous
        // epoch's) the snapshot publish; the snapshot header is the
        // authority on which one is live.
        let live_name = format!("wal-{epoch}.log");
        let mut stale = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if name.starts_with("wal-") && name.ends_with(".log") && name != live_name {
                    stale.push(entry.path());
                }
            }
        }
        stale.sort();
        for path in stale {
            std::fs::remove_file(&path)?;
            debris_removed += 1;
        }

        let report = RecoveryReport {
            epoch,
            snapshot_found,
            replayed_ops,
            torn_bytes,
            debris_removed,
        };
        Ok((
            DurableStore {
                dir: dir.to_path_buf(),
                store: Arc::new(store),
                journal: Mutex::new(Journal {
                    wal,
                    epoch,
                    wal_ops: replayed_ops,
                }),
            },
            report,
        ))
    }

    /// The underlying store, for reads. Mutating it directly bypasses
    /// the journal and forfeits durability for those writes.
    pub fn store(&self) -> &VisualStore {
        &self.store
    }

    /// A shared handle to the underlying store (e.g. to hand to query
    /// engines, which only read).
    pub fn store_arc(&self) -> Arc<VisualStore> {
        Arc::clone(&self.store)
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current WAL epoch.
    pub fn epoch(&self) -> u64 {
        self.journal.lock().epoch
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> Result<u64, DurableError> {
        Ok(self.journal.lock().wal.len_bytes()?)
    }

    /// Journaled-then-applied [`VisualStore::add_image`]. When this
    /// returns `Ok`, the image survives a crash.
    pub fn add_image(
        &self,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
    ) -> Result<ImageId, DurableError> {
        let mut journal = self.journal.lock();
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if self.store.image(*parent).is_none() {
                return Err(StorageError::UnknownImage(*parent).into());
            }
        }
        let id = self.store.peek_next_image_id();
        let op = WalOp::AddImage {
            id,
            meta: meta.clone(),
            origin: origin.clone(),
            pixels: pixels
                .as_ref()
                .map(|p| (p.width(), p.height(), p.raw().to_vec())),
        };
        journal.wal.append(&op)?;
        journal.wal_ops += 1;
        Ok(self.store.add_image(meta, origin, pixels)?)
    }

    /// Journaled-then-applied [`VisualStore::ingest_upload`]: the image
    /// row, its feature vectors, and the upload's idempotency marker
    /// travel as one composite WAL record, so a crash at any byte
    /// preserves either the whole acknowledged upload or none of it —
    /// an acked-once upload is ingested exactly once across crashes.
    /// Replays (marker already present) return the original id with
    /// `replayed = true` without touching the journal.
    pub fn ingest_upload(
        &self,
        marker: &str,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
        features: Vec<(FeatureKind, Vec<f32>)>,
    ) -> Result<(ImageId, bool), DurableError> {
        let mut journal = self.journal.lock();
        if let Some(existing) = self.store.upload_marker(marker) {
            return Ok((existing, true));
        }
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if self.store.image(*parent).is_none() {
                return Err(StorageError::UnknownImage(*parent).into());
            }
        }
        let id = self.store.peek_next_image_id();
        let op = WalOp::IngestUpload {
            marker: marker.to_string(),
            id,
            meta: meta.clone(),
            origin: origin.clone(),
            pixels: pixels
                .as_ref()
                .map(|p| (p.width(), p.height(), p.raw().to_vec())),
            features: features.clone(),
        };
        journal.wal.append(&op)?;
        journal.wal_ops += 1;
        Ok(self
            .store
            .ingest_upload(marker, meta, origin, pixels, &features)?)
    }

    /// Journaled-then-applied [`VisualStore::put_feature`].
    pub fn put_feature(
        &self,
        image: ImageId,
        kind: FeatureKind,
        vector: Vec<f32>,
    ) -> Result<(), DurableError> {
        let mut journal = self.journal.lock();
        if self.store.image(image).is_none() {
            return Err(StorageError::UnknownImage(image).into());
        }
        let op = WalOp::PutFeature {
            image,
            kind,
            vector: vector.clone(),
        };
        journal.wal.append(&op)?;
        journal.wal_ops += 1;
        Ok(self.store.put_feature(image, kind, vector)?)
    }

    /// Journaled-then-applied [`VisualStore::register_scheme`].
    pub fn register_scheme(
        &self,
        name: impl Into<String>,
        labels: Vec<String>,
    ) -> Result<ClassificationId, DurableError> {
        let name = name.into();
        let mut journal = self.journal.lock();
        check_labels(&labels).map_err(DurableError::Rejected)?;
        if self.store.scheme_by_name(&name).is_some() {
            return Err(StorageError::DuplicateScheme(name).into());
        }
        let id = self.store.peek_next_classification_id();
        let op = WalOp::RegisterScheme {
            id,
            name: name.clone(),
            labels: labels.clone(),
        };
        journal.wal.append(&op)?;
        journal.wal_ops += 1;
        Ok(self.store.register_scheme(name, labels)?)
    }

    /// Journaled-then-applied [`VisualStore::annotate`].
    #[allow(clippy::too_many_arguments)]
    pub fn annotate(
        &self,
        image: ImageId,
        classification: ClassificationId,
        label: usize,
        confidence: f32,
        source: AnnotationSource,
        region: Option<RegionOfInterest>,
    ) -> Result<AnnotationId, DurableError> {
        let mut journal = self.journal.lock();
        check_confidence(confidence).map_err(DurableError::Rejected)?;
        if self.store.image(image).is_none() {
            return Err(StorageError::UnknownImage(image).into());
        }
        let vocabulary = match self.store.scheme(classification) {
            None => return Err(StorageError::UnknownClassification(classification).into()),
            Some(s) => s.labels.len(),
        };
        if label >= vocabulary {
            return Err(StorageError::LabelOutOfRange {
                classification,
                label,
                vocabulary,
            }
            .into());
        }
        let id = self.store.peek_next_annotation_id();
        let op = WalOp::Annotate(Annotation {
            id,
            image,
            classification,
            label,
            confidence,
            source,
            region,
        });
        journal.wal.append(&op)?;
        journal.wal_ops += 1;
        Ok(self
            .store
            .annotate(image, classification, label, confidence, source, region)?)
    }

    /// Journaled-then-applied [`VisualStore::add_image_at`]: inserts the
    /// image under a caller-chosen id (e.g. one drawn from a platform-
    /// wide allocator shared across shards).
    pub fn add_image_at(
        &self,
        id: ImageId,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
    ) -> Result<ImageId, DurableError> {
        let mut journal = self.journal.lock();
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if self.store.image(*parent).is_none() {
                return Err(StorageError::UnknownImage(*parent).into());
            }
        }
        if self.store.image(id).is_some() {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "image",
            }
            .into());
        }
        let op = WalOp::AddImage {
            id,
            meta: meta.clone(),
            origin: origin.clone(),
            pixels: pixels
                .as_ref()
                .map(|p| (p.width(), p.height(), p.raw().to_vec())),
        };
        journal.wal.append(&op)?;
        journal.wal_ops += 1;
        Ok(self.store.add_image_at(id, meta, origin, pixels)?)
    }

    /// Journaled-then-applied [`VisualStore::ingest_upload_at`]: the
    /// composite upload record carries the caller-chosen id, so replay
    /// on a shard's WAL reproduces the platform-wide id exactly.
    /// Replays (marker already present) return the original id with
    /// `replayed = true` without touching the journal.
    pub fn ingest_upload_at(
        &self,
        marker: &str,
        id: ImageId,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
        features: Vec<(FeatureKind, Vec<f32>)>,
    ) -> Result<(ImageId, bool), DurableError> {
        let mut journal = self.journal.lock();
        if let Some(existing) = self.store.upload_marker(marker) {
            return Ok((existing, true));
        }
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if self.store.image(*parent).is_none() {
                return Err(StorageError::UnknownImage(*parent).into());
            }
        }
        if self.store.image(id).is_some() {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "image",
            }
            .into());
        }
        let op = WalOp::IngestUpload {
            marker: marker.to_string(),
            id,
            meta: meta.clone(),
            origin: origin.clone(),
            pixels: pixels
                .as_ref()
                .map(|p| (p.width(), p.height(), p.raw().to_vec())),
            features: features.clone(),
        };
        journal.wal.append(&op)?;
        journal.wal_ops += 1;
        Ok(self
            .store
            .ingest_upload_at(marker, id, meta, origin, pixels, &features)?)
    }

    /// Journaled-then-applied [`VisualStore::register_scheme_at`]:
    /// registers a scheme under a caller-chosen id so every shard of a
    /// partitioned platform shares one classification-id space.
    pub fn register_scheme_at(
        &self,
        id: ClassificationId,
        name: impl Into<String>,
        labels: Vec<String>,
    ) -> Result<ClassificationId, DurableError> {
        let name = name.into();
        let mut journal = self.journal.lock();
        check_labels(&labels).map_err(DurableError::Rejected)?;
        if self.store.scheme_by_name(&name).is_some() {
            return Err(StorageError::DuplicateScheme(name).into());
        }
        if self.store.scheme(id).is_some() {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "classification",
            }
            .into());
        }
        let op = WalOp::RegisterScheme {
            id,
            name: name.clone(),
            labels: labels.clone(),
        };
        journal.wal.append(&op)?;
        journal.wal_ops += 1;
        Ok(self.store.register_scheme_at(id, name, labels)?)
    }

    /// Journaled-then-applied [`VisualStore::annotate_at`]: records an
    /// annotation under a caller-chosen id from a platform-wide
    /// allocator.
    #[allow(clippy::too_many_arguments)]
    pub fn annotate_at(
        &self,
        id: AnnotationId,
        image: ImageId,
        classification: ClassificationId,
        label: usize,
        confidence: f32,
        source: AnnotationSource,
        region: Option<RegionOfInterest>,
    ) -> Result<AnnotationId, DurableError> {
        let mut journal = self.journal.lock();
        check_confidence(confidence).map_err(DurableError::Rejected)?;
        if self.store.image(image).is_none() {
            return Err(StorageError::UnknownImage(image).into());
        }
        let vocabulary = match self.store.scheme(classification) {
            None => return Err(StorageError::UnknownClassification(classification).into()),
            Some(s) => s.labels.len(),
        };
        if label >= vocabulary {
            return Err(StorageError::LabelOutOfRange {
                classification,
                label,
                vocabulary,
            }
            .into());
        }
        if self.store.annotation(id).is_some() {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "annotation",
            }
            .into());
        }
        let op = WalOp::Annotate(Annotation {
            id,
            image,
            classification,
            label,
            confidence,
            source,
            region,
        });
        journal.wal.append(&op)?;
        journal.wal_ops += 1;
        Ok(self
            .store
            .annotate_at(id, image, classification, label, confidence, source, region)?)
    }

    /// Folds the journal into a fresh snapshot and rotates the WAL to
    /// the next epoch. Safe against a crash at any point: the next
    /// epoch's empty WAL is created *before* the snapshot naming it is
    /// atomically published, and the superseded WAL is only removed
    /// after — whichever side of the publish a crash lands on, the
    /// surviving snapshot pairs with an intact WAL.
    pub fn compact(&self) -> Result<CompactionReport, DurableError> {
        let mut journal = self.journal.lock();
        let wal_bytes_before = journal.wal.len_bytes()?;
        let ops_compacted = journal.wal_ops;
        let next_epoch = journal.epoch + 1;
        let next_wal = Wal::create(&wal_path(&self.dir, next_epoch))?;
        let snapshot_path = self.dir.join(SNAPSHOT_FILE);
        persist::save_snapshot(&self.store.snapshot(), &snapshot_path, next_epoch)?;
        // Commit point passed: the snapshot now names the new epoch.
        let old_path = journal.wal.path().to_path_buf();
        journal.wal = next_wal;
        journal.epoch = next_epoch;
        journal.wal_ops = 0;
        // Best-effort: if this removal doesn't happen, open() sweeps
        // the stale file.
        std::fs::remove_file(old_path).ok();
        let snapshot_bytes = std::fs::metadata(&snapshot_path)?.len();
        Ok(CompactionReport {
            epoch: next_epoch,
            ops_compacted,
            wal_bytes_before,
            snapshot_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UserId;
    use tvdp_geo::GeoPoint;

    fn meta() -> ImageMeta {
        ImageMeta {
            uploader: UserId(1),
            gps: GeoPoint::new(34.0, -118.25),
            fov: None,
            captured_at: 100,
            uploaded_at: 110,
            keywords: vec!["test".into()],
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tvdp-recovery-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn populate(ds: &DurableStore) -> (ImageId, ClassificationId) {
        let img = ds
            .add_image(
                meta(),
                ImageOrigin::Original,
                Some(Image::from_fn(2, 2, |x, y| [x as u8, y as u8, 3])),
            )
            .unwrap();
        let cls = ds
            .register_scheme("cleanliness", vec!["clean".into(), "dirty".into()])
            .unwrap();
        ds.put_feature(img, FeatureKind::Cnn, vec![0.5, 0.25])
            .unwrap();
        ds.annotate(img, cls, 1, 0.8, AnnotationSource::Human(UserId(1)), None)
            .unwrap();
        (img, cls)
    }

    #[test]
    fn acked_mutations_survive_reopen_without_compaction() {
        let dir = temp_dir("reopen");
        let (ds, report) = DurableStore::open(&dir).unwrap();
        assert!(!report.snapshot_found);
        let (img, cls) = populate(&ds);
        let live = ds.store().snapshot();
        drop(ds);

        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.replayed_ops, 4);
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(ds2.store().snapshot(), live);
        assert_eq!(ds2.store().annotations_of(img).len(), 1);
        assert!(ds2.store().scheme(cls).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_log() {
        let dir = temp_dir("compact");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        populate(&ds);
        let live = ds.store().snapshot();
        let before = ds.wal_bytes().unwrap();
        assert!(before > 0);
        let report = ds.compact().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.ops_compacted, 4);
        assert_eq!(report.wal_bytes_before, before);
        assert_eq!(ds.wal_bytes().unwrap(), 0);
        assert_eq!(ds.store().snapshot(), live);
        drop(ds);

        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert!(report.snapshot_found);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.replayed_ops, 0);
        assert_eq!(ds2.store().snapshot(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutations_after_compaction_replay_on_top_of_snapshot() {
        let dir = temp_dir("post-compact");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let (img, cls) = populate(&ds);
        ds.compact().unwrap();
        ds.annotate(img, cls, 0, 0.4, AnnotationSource::Human(UserId(2)), None)
            .unwrap();
        let live = ds.store().snapshot();
        drop(ds);
        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.replayed_ops, 1);
        assert_eq!(ds2.store().snapshot(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejected_mutations_are_never_journaled() {
        let dir = temp_dir("rejected");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let wal0 = ds.wal_bytes().unwrap();
        assert!(ds
            .put_feature(ImageId(9), FeatureKind::Cnn, vec![1.0])
            .is_err());
        assert!(ds
            .add_image(
                meta(),
                ImageOrigin::Augmented {
                    parent: ImageId(9),
                    op: "flip".into()
                },
                None
            )
            .is_err());
        assert!(ds.register_scheme("bad", vec![]).is_err());
        assert!(matches!(
            ds.annotate(
                ImageId(0),
                ClassificationId(0),
                0,
                1.5,
                AnnotationSource::Human(UserId(1)),
                None
            ),
            Err(DurableError::Rejected(_))
        ));
        assert_eq!(ds.wal_bytes().unwrap(), wal0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_upload_dedups_across_restart_and_compaction() {
        let dir = temp_dir("idem-upload");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let features = vec![(FeatureKind::Cnn, vec![1.0, -2.0])];
        let (id, replayed) = ds
            .ingest_upload("edge0-s7", meta(), ImageOrigin::Original, None, features)
            .unwrap();
        assert!(!replayed);
        // A same-process retry dedups without growing the journal.
        let wal_after_first = ds.wal_bytes().unwrap();
        let (again, replayed) = ds
            .ingest_upload("edge0-s7", meta(), ImageOrigin::Original, None, vec![])
            .unwrap();
        assert!(replayed);
        assert_eq!(again, id);
        assert_eq!(ds.wal_bytes().unwrap(), wal_after_first);
        drop(ds);

        // The ack was lost and the server restarted: the retry still
        // finds the marker after WAL replay.
        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.replayed_ops, 1);
        let (after, replayed) = ds2
            .ingest_upload("edge0-s7", meta(), ImageOrigin::Original, None, vec![])
            .unwrap();
        assert!(replayed);
        assert_eq!(after, id);
        assert_eq!(ds2.store().len(), 1);
        assert_eq!(
            ds2.store().feature(id, FeatureKind::Cnn).unwrap(),
            vec![1.0, -2.0]
        );

        // Compaction folds the marker into the snapshot.
        ds2.compact().unwrap();
        drop(ds2);
        let (ds3, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.replayed_ops, 0);
        let (after, replayed) = ds3
            .ingest_upload("edge0-s7", meta(), ImageOrigin::Original, None, vec![])
            .unwrap();
        assert!(replayed);
        assert_eq!(after, id);
        assert_eq!(ds3.store().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_composite_upload_record_is_all_or_nothing() {
        use crate::wal::frame;
        let dir = temp_dir("torn-upload");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let id = ds.store().peek_next_image_id();
        drop(ds);
        let op = WalOp::IngestUpload {
            marker: "edge1-s42".into(),
            id,
            meta: meta(),
            origin: ImageOrigin::Original,
            pixels: Some((2, 2, vec![9u8; 12])),
            features: vec![(FeatureKind::Cnn, vec![0.5, 0.25])],
        };
        let record = frame(&op.encode());
        let wal_file = dir.join("wal-0.log");
        // Crash the append at every byte offset: recovery must see
        // either the whole upload (rows + marker) or none of it —
        // never an image without its features or marker.
        for cut in 0..=record.len() {
            std::fs::write(&wal_file, &record.as_bytes()[..cut]).unwrap();
            let (ds, report) = DurableStore::open(&dir).unwrap();
            if cut == record.len() {
                assert_eq!(report.replayed_ops, 1);
                assert_eq!(ds.store().len(), 1);
                assert_eq!(ds.store().upload_marker("edge1-s42"), Some(id));
                assert_eq!(
                    ds.store().feature(id, FeatureKind::Cnn).unwrap(),
                    vec![0.5, 0.25]
                );
            } else {
                assert_eq!(report.replayed_ops, 0, "cut at byte {cut}");
                assert_eq!(ds.store().len(), 0, "cut at byte {cut}");
                assert!(
                    ds.store().upload_marker("edge1-s42").is_none(),
                    "cut at byte {cut}"
                );
            }
            drop(ds);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_debris_is_swept_on_open() {
        let dir = temp_dir("debris");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        populate(&ds);
        drop(ds);
        // Plant an interrupted save and an interrupted compaction.
        std::fs::write(dir.join("snapshot.json.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("wal-7.log"), b"stale").unwrap();
        let (ds2, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(report.debris_removed, 2);
        assert!(!dir.join("snapshot.json.tmp").exists());
        assert!(!dir.join("wal-7.log").exists());
        assert_eq!(ds2.store().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
