//! Cold-chunk spill files: the on-disk side of the feature arena's
//! bounded-memory story.
//!
//! Compaction writes cold (frozen, non-tail) [`tvdp_kernel::FeatureSlab`]
//! chunks into per-chunk `spill-<kind>-<dim>-<chunk>.bin` files inside
//! the durable store directory, then swaps the resident floats for a
//! [`DiskChunkLoader`] handle. Reads stay behind the arena's
//! `RowSource` abstraction: the first access to a spilled row reloads
//! its whole chunk exactly once.
//!
//! Spill files follow the same crash-safety rules as every other
//! durable artifact (PR 4 protocol): staged `.tmp` write, flush,
//! `sync_all`, atomic rename, parent-directory fsync. Because arena
//! chunks are write-once, a spill file's contents never go stale —
//! re-spilling a reloaded chunk reuses the existing file. On open the
//! store rebuilds fully resident from the snapshot + WAL, so leftover
//! `spill-*` files (including `.tmp` stragglers) are crash debris and
//! are swept.
//!
//! Format: one ASCII header line `tvdp-spill <floats> <crc32>\n`
//! followed by the floats as little-endian `f32` bytes. The CRC covers
//! the raw float bytes, so a torn or bit-flipped spill is detected on
//! reload rather than silently corrupting query results.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tvdp_kernel::ChunkLoader;
use tvdp_vision::FeatureKind;

use crate::wal::crc32;

/// Filename-safe tag for a feature kind, stable across releases (it is
/// part of the on-disk spill naming scheme).
pub fn kind_tag(kind: FeatureKind) -> &'static str {
    match kind {
        FeatureKind::ColorHistogram => "colorhist",
        FeatureKind::SiftBow => "siftbow",
        FeatureKind::Cnn => "cnn",
    }
}

/// Path of the spill file for one frozen chunk of one feature slab.
pub fn spill_path(dir: &Path, kind: FeatureKind, dim: u32, chunk: usize) -> PathBuf {
    dir.join(format!("spill-{}-{dim}-{chunk}.bin", kind_tag(kind)))
}

/// Whether `name` is a spill artifact (including a staged `.tmp`) that
/// recovery should sweep on open.
pub fn is_spill_debris(name: &str) -> bool {
    name.starts_with("spill-") && (name.ends_with(".bin") || name.ends_with(".bin.tmp"))
}

/// Shared spill/reload counters, updated by the writer and by every
/// [`DiskChunkLoader`] handed out against it. Reads are diagnostic
/// (compaction reports), so plain monotonic counters suffice.
#[derive(Debug, Default)]
pub struct SpillStats {
    chunks_spilled: AtomicU64,
    bytes_spilled: AtomicU64,
    chunks_reloaded: AtomicU64,
    bytes_reloaded: AtomicU64,
}

impl SpillStats {
    /// Total chunks written to spill files so far.
    pub fn chunks_spilled(&self) -> u64 {
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counter; no ordering dependency with any other memory access")
        self.chunks_spilled.load(Ordering::Relaxed)
    }

    /// Total float bytes written to spill files so far.
    pub fn bytes_spilled(&self) -> u64 {
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counter; no ordering dependency with any other memory access")
        self.bytes_spilled.load(Ordering::Relaxed)
    }

    /// Total chunks reloaded from spill files so far.
    pub fn chunks_reloaded(&self) -> u64 {
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counter; no ordering dependency with any other memory access")
        self.chunks_reloaded.load(Ordering::Relaxed)
    }

    /// Total float bytes reloaded from spill files so far.
    pub fn bytes_reloaded(&self) -> u64 {
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counter; no ordering dependency with any other memory access")
        self.bytes_reloaded.load(Ordering::Relaxed)
    }
}

fn float_bytes(data: &[f32]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Writes one chunk's floats to its spill file with the staged-rename
/// protocol and returns the float bytes written. If the file already
/// exists (a re-spill of a previously reloaded chunk) nothing is
/// written — chunks are write-once, so the existing copy is current —
/// and `Ok(0)` is returned.
pub fn write_spill(
    dir: &Path,
    kind: FeatureKind,
    dim: u32,
    chunk: usize,
    data: &[f32],
    stats: &SpillStats,
) -> std::io::Result<u64> {
    let path = spill_path(dir, kind, dim, chunk);
    if path.exists() {
        return Ok(0);
    }
    let bytes = float_bytes(data);
    let mut contents = format!("tvdp-spill {} {:08x}\n", data.len(), crc32(&bytes)).into_bytes();
    contents.extend_from_slice(&bytes);
    let tmp = path.with_file_name(format!("spill-{}-{dim}-{chunk}.bin.tmp", kind_tag(kind)));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&contents)?;
        f.flush()?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    crate::persist::fsync_parent(&path)?;
    // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counters; no ordering dependency with any other memory access")
    stats.chunks_spilled.fetch_add(1, Ordering::Relaxed);
    stats
        .bytes_spilled
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counters; no ordering dependency with any other memory access")
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    Ok(bytes.len() as u64)
}

/// Reads a spill file back into floats, verifying the header and CRC.
pub fn read_spill(path: &Path, expect_floats: usize) -> Result<Vec<f32>, String> {
    let contents = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let nl = contents
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| format!("{}: missing spill header", path.display()))?;
    let header = std::str::from_utf8(&contents[..nl])
        .map_err(|_| format!("{}: non-utf8 spill header", path.display()))?;
    let mut parts = header.split(' ');
    let (magic, floats, crc) = (parts.next(), parts.next(), parts.next());
    if magic != Some("tvdp-spill") || parts.next().is_some() {
        return Err(format!("{}: malformed spill header", path.display()));
    }
    let floats: usize = floats
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{}: bad float count", path.display()))?;
    let crc_claimed = crc
        .and_then(|s| u32::from_str_radix(s, 16).ok())
        .ok_or_else(|| format!("{}: bad checksum field", path.display()))?;
    let body = &contents[nl + 1..];
    if floats != expect_floats || body.len() != floats * 4 {
        return Err(format!(
            "{}: expected {expect_floats} floats, file declares {floats} with {} body bytes",
            path.display(),
            body.len()
        ));
    }
    if crc32(body) != crc_claimed {
        return Err(format!("{}: spill checksum mismatch", path.display()));
    }
    let mut out = Vec::with_capacity(floats);
    for quad in body.chunks_exact(4) {
        out.push(f32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]]));
    }
    Ok(out)
}

/// [`ChunkLoader`] that reloads spilled chunks from a durable store
/// directory, counting reloads into shared [`SpillStats`].
#[derive(Debug)]
pub struct DiskChunkLoader {
    dir: PathBuf,
    kind: FeatureKind,
    dim: u32,
    floats_per_chunk: usize,
    stats: Arc<SpillStats>,
}

impl DiskChunkLoader {
    /// A loader for the `(kind, dim)` slab spilled under `dir`.
    pub fn new(
        dir: PathBuf,
        kind: FeatureKind,
        dim: u32,
        floats_per_chunk: usize,
        stats: Arc<SpillStats>,
    ) -> DiskChunkLoader {
        DiskChunkLoader {
            dir,
            kind,
            dim,
            floats_per_chunk,
            stats,
        }
    }
}

impl ChunkLoader for DiskChunkLoader {
    fn load(&self, index: usize) -> Arc<[f32]> {
        let path = spill_path(&self.dir, self.kind, self.dim, index);
        let data = match read_spill(&path, self.floats_per_chunk) {
            Ok(data) => data,
            Err(m) => {
                // tvdp-lint: allow(no_panic, reason = "a spilled chunk that cannot be reloaded is unrecoverable data corruption under the arena's infallible RowSource contract; aborting beats serving wrong feature vectors")
                panic!("spill reload failed: {m}");
            }
        };
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counters; no ordering dependency with any other memory access")
        self.stats.chunks_reloaded.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_reloaded
            // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counters; no ordering dependency with any other memory access")
            .fetch_add((data.len() * 4) as u64, Ordering::Relaxed);
        Arc::from(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tvdp-spill-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn spill_roundtrips_bit_exactly() {
        let dir = temp_dir("roundtrip");
        let stats = SpillStats::default();
        let data: Vec<f32> = (0..512).map(|i| (i as f32).sin()).collect();
        let written = write_spill(&dir, FeatureKind::Cnn, 8, 3, &data, &stats).unwrap();
        assert_eq!(written, 512 * 4);
        assert_eq!(stats.chunks_spilled(), 1);
        let back = read_spill(&spill_path(&dir, FeatureKind::Cnn, 8, 3), 512).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Re-spill of an existing file is a no-op.
        assert_eq!(
            write_spill(&dir, FeatureKind::Cnn, 8, 3, &data, &stats).unwrap(),
            0
        );
        assert_eq!(stats.chunks_spilled(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loader_reloads_and_counts() {
        let dir = temp_dir("loader");
        let stats = Arc::new(SpillStats::default());
        let data: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        write_spill(&dir, FeatureKind::SiftBow, 4, 0, &data, &stats).unwrap();
        let loader = DiskChunkLoader::new(dir.clone(), FeatureKind::SiftBow, 4, 64, stats.clone());
        let back = loader.load(0);
        assert_eq!(&back[..], &data[..]);
        assert_eq!(stats.chunks_reloaded(), 1);
        assert_eq!(stats.bytes_reloaded(), 64 * 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_spill_detected() {
        let dir = temp_dir("corrupt");
        let stats = SpillStats::default();
        let data = vec![1.0f32; 16];
        write_spill(&dir, FeatureKind::ColorHistogram, 16, 1, &data, &stats).unwrap();
        let path = spill_path(&dir, FeatureKind::ColorHistogram, 16, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_spill(&path, 16).unwrap_err().contains("checksum"));
        // Wrong expected length is also refused.
        assert!(read_spill(&path, 15).unwrap_err().contains("expected"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn debris_naming() {
        assert!(is_spill_debris("spill-cnn-8-0.bin"));
        assert!(is_spill_debris("spill-cnn-8-0.bin.tmp"));
        assert!(!is_spill_debris("snapshot.json"));
        assert!(!is_spill_debris("wal-3.log"));
    }
}
