//! Cold-chunk spill files: the on-disk side of the feature arena's
//! bounded-memory story.
//!
//! Compaction writes cold (frozen, non-tail) [`tvdp_kernel::FeatureSlab`]
//! chunks into per-chunk `spill-<kind>-<dim>-<chunk>.bin` files inside
//! the durable store directory, then swaps the resident floats for a
//! [`DiskChunkLoader`] handle. Reads stay behind the arena's
//! `RowSource` abstraction: the first access to a spilled row reloads
//! its whole chunk exactly once.
//!
//! Spill files follow the same crash-safety rules as every other
//! durable artifact (PR 4 protocol): staged `.tmp` write, flush,
//! `sync_all`, atomic rename, parent-directory fsync. Because arena
//! chunks are write-once, a spill file's contents never go stale —
//! re-spilling a reloaded chunk reuses the existing file. On open the
//! store rebuilds fully resident from the snapshot + WAL, so leftover
//! `spill-*` files (including `.tmp` stragglers) are crash debris and
//! are swept.
//!
//! Format (v1, unquantized chunk): one ASCII header line
//! `tvdp-spill <floats> <crc32>\n` followed by the floats as
//! little-endian `f32` bytes. When the chunk carries a quantized mirror
//! the header gains two fields — `tvdp-spill <floats> <crc32> <codes>
//! <dim>\n` — and the body appends the quantization block after the
//! floats: per-dimension minima (`dim` LE `f32`), per-dimension scales
//! (`dim` LE `f32`), the decode-error radius `eps` (one LE `f32`), then
//! the `u8` codes. The CRC always covers the **whole** body, so codes
//! spill in the same CRC frame as their chunk and a torn or bit-flipped
//! spill is detected on reload rather than silently corrupting query
//! results.
//!
//! Failures surface as typed [`SpillError`]s carrying the offending
//! path (plus the claimed/actual CRC on checksum mismatches), so a
//! corrupt file reached mid-query is a diagnosable, recoverable error
//! rather than a stringly one.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tvdp_kernel::quant::QuantChunk;
use tvdp_kernel::ChunkLoader;
use tvdp_vision::FeatureKind;

use crate::wal::crc32;

/// A spill file could not be written or read back.
///
/// Every variant names the offending path: spill reloads happen lazily
/// on the query path, long after the compaction that wrote the file,
/// and "checksum mismatch" without a path is undebuggable at that
/// distance.
#[derive(Debug)]
pub enum SpillError {
    /// The underlying filesystem operation failed.
    Io {
        /// Spill file (or its staged `.tmp`) being accessed.
        path: PathBuf,
        /// The originating I/O error.
        source: std::io::Error,
    },
    /// The file has no newline-terminated header line.
    MissingHeader {
        /// Offending file.
        path: PathBuf,
    },
    /// The header line exists but does not parse as a spill header.
    MalformedHeader {
        /// Offending file.
        path: PathBuf,
        /// What specifically failed to parse.
        detail: &'static str,
    },
    /// The declared geometry disagrees with the caller's expectation or
    /// with the actual body size (truncated or padded file).
    LengthMismatch {
        /// Offending file.
        path: PathBuf,
        /// Floats the caller expected the chunk to hold.
        expected_floats: usize,
        /// Floats the header declares.
        declared_floats: usize,
        /// Bytes actually present after the header.
        body_bytes: usize,
    },
    /// The body does not hash to the header's CRC32.
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
        /// CRC the header claims.
        claimed: u32,
        /// CRC of the bytes on disk.
        actual: u32,
    },
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            SpillError::MissingHeader { path } => {
                write!(f, "{}: missing spill header", path.display())
            }
            SpillError::MalformedHeader { path, detail } => {
                write!(f, "{}: malformed spill header: {detail}", path.display())
            }
            SpillError::LengthMismatch {
                path,
                expected_floats,
                declared_floats,
                body_bytes,
            } => write!(
                f,
                "{}: expected {expected_floats} floats, file declares {declared_floats} \
                 with {body_bytes} body bytes",
                path.display()
            ),
            SpillError::ChecksumMismatch {
                path,
                claimed,
                actual,
            } => write!(
                f,
                "{}: spill checksum mismatch (header {claimed:08x}, body {actual:08x})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl SpillError {
    /// The spill file the error is about.
    pub fn path(&self) -> &Path {
        match self {
            SpillError::Io { path, .. }
            | SpillError::MissingHeader { path }
            | SpillError::MalformedHeader { path, .. }
            | SpillError::LengthMismatch { path, .. }
            | SpillError::ChecksumMismatch { path, .. } => path,
        }
    }
}

/// Filename-safe tag for a feature kind, stable across releases (it is
/// part of the on-disk spill naming scheme).
pub fn kind_tag(kind: FeatureKind) -> &'static str {
    match kind {
        FeatureKind::ColorHistogram => "colorhist",
        FeatureKind::SiftBow => "siftbow",
        FeatureKind::Cnn => "cnn",
    }
}

/// Path of the spill file for one frozen chunk of one feature slab.
pub fn spill_path(dir: &Path, kind: FeatureKind, dim: u32, chunk: usize) -> PathBuf {
    dir.join(format!("spill-{}-{dim}-{chunk}.bin", kind_tag(kind)))
}

/// Whether `name` is a spill artifact (including a staged `.tmp`) that
/// recovery should sweep on open.
pub fn is_spill_debris(name: &str) -> bool {
    name.starts_with("spill-") && (name.ends_with(".bin") || name.ends_with(".bin.tmp"))
}

/// Shared spill/reload counters, updated by the writer and by every
/// [`DiskChunkLoader`] handed out against it. Reads are diagnostic
/// (compaction reports), so plain monotonic counters suffice.
#[derive(Debug, Default)]
pub struct SpillStats {
    chunks_spilled: AtomicU64,
    bytes_spilled: AtomicU64,
    chunks_reloaded: AtomicU64,
    bytes_reloaded: AtomicU64,
}

impl SpillStats {
    /// Total chunks written to spill files so far.
    pub fn chunks_spilled(&self) -> u64 {
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counter; no ordering dependency with any other memory access")
        self.chunks_spilled.load(Ordering::Relaxed)
    }

    /// Total float bytes written to spill files so far.
    pub fn bytes_spilled(&self) -> u64 {
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counter; no ordering dependency with any other memory access")
        self.bytes_spilled.load(Ordering::Relaxed)
    }

    /// Total chunks reloaded from spill files so far.
    pub fn chunks_reloaded(&self) -> u64 {
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counter; no ordering dependency with any other memory access")
        self.chunks_reloaded.load(Ordering::Relaxed)
    }

    /// Total float bytes reloaded from spill files so far.
    pub fn bytes_reloaded(&self) -> u64 {
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counter; no ordering dependency with any other memory access")
        self.bytes_reloaded.load(Ordering::Relaxed)
    }
}

fn float_bytes(data: &[f32]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Writes one chunk's floats — and, when present, its quantized mirror
/// — to its spill file with the staged-rename protocol and returns the
/// body bytes written. If the file already exists (a re-spill of a
/// previously reloaded chunk) nothing is written — chunks are
/// write-once, so the existing copy is current — and `Ok(0)` is
/// returned.
pub fn write_spill(
    dir: &Path,
    kind: FeatureKind,
    dim: u32,
    chunk: usize,
    data: &[f32],
    quant: Option<&QuantChunk>,
    stats: &SpillStats,
) -> Result<u64, SpillError> {
    let path = spill_path(dir, kind, dim, chunk);
    if path.exists() {
        return Ok(0);
    }
    let mut body = float_bytes(data);
    if let Some(q) = quant {
        let p = q.params();
        body.extend_from_slice(&float_bytes(p.min()));
        body.extend_from_slice(&float_bytes(p.scale()));
        body.extend_from_slice(&p.eps().to_le_bytes());
        body.extend_from_slice(q.codes());
    }
    let mut contents = match quant {
        None => format!("tvdp-spill {} {:08x}\n", data.len(), crc32(&body)),
        Some(q) => format!(
            "tvdp-spill {} {:08x} {} {}\n",
            data.len(),
            crc32(&body),
            q.codes().len(),
            q.params().dim(),
        ),
    }
    .into_bytes();
    contents.extend_from_slice(&body);
    let tmp = path.with_file_name(format!("spill-{}-{dim}-{chunk}.bin.tmp", kind_tag(kind)));
    let io = |at: &Path| {
        let at = at.to_path_buf();
        move |source: std::io::Error| SpillError::Io { path: at, source }
    };
    {
        let mut f = File::create(&tmp).map_err(io(&tmp))?;
        f.write_all(&contents).map_err(io(&tmp))?;
        f.flush().map_err(io(&tmp))?;
        f.sync_all().map_err(io(&tmp))?;
    }
    std::fs::rename(&tmp, &path).map_err(io(&path))?;
    crate::persist::fsync_parent(&path).map_err(io(&path))?;
    // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counters; no ordering dependency with any other memory access")
    stats.chunks_spilled.fetch_add(1, Ordering::Relaxed);
    stats
        .bytes_spilled
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counters; no ordering dependency with any other memory access")
        .fetch_add(body.len() as u64, Ordering::Relaxed);
    Ok(body.len() as u64)
}

/// What a spill file holds: the chunk's floats plus its quantized
/// mirror when one was spilled alongside them.
#[derive(Debug)]
pub struct SpillPayload {
    /// The frozen chunk's row data, bit-exact.
    pub floats: Vec<f32>,
    /// The chunk's quantized mirror (v2 files only).
    pub quant: Option<QuantChunk>,
}

fn parse_floats(body: &[u8]) -> Vec<f32> {
    let mut out = Vec::with_capacity(body.len() / 4);
    for quad in body.chunks_exact(4) {
        out.push(f32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]]));
    }
    out
}

/// Reads a spill file back, verifying the header and CRC.
pub fn read_spill(path: &Path, expect_floats: usize) -> Result<SpillPayload, SpillError> {
    let contents = std::fs::read(path).map_err(|source| SpillError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let err_at = |detail: &'static str| SpillError::MalformedHeader {
        path: path.to_path_buf(),
        detail,
    };
    let nl =
        contents
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| SpillError::MissingHeader {
                path: path.to_path_buf(),
            })?;
    let header =
        std::str::from_utf8(&contents[..nl]).map_err(|_| err_at("non-utf8 header line"))?;
    let fields: Vec<&str> = header.split(' ').collect();
    if fields.first().copied() != Some("tvdp-spill") {
        return Err(err_at("bad magic"));
    }
    // v1 = magic + floats + crc; v2 adds codes + dim.
    if fields.len() != 3 && fields.len() != 5 {
        return Err(err_at("wrong field count"));
    }
    let floats: usize = fields[1].parse().map_err(|_| err_at("bad float count"))?;
    let crc_claimed =
        u32::from_str_radix(fields[2], 16).map_err(|_| err_at("bad checksum field"))?;
    let quant_geometry = if fields.len() == 5 {
        let codes: usize = fields[3].parse().map_err(|_| err_at("bad code count"))?;
        let qdim: usize = fields[4].parse().map_err(|_| err_at("bad code dim"))?;
        if qdim == 0 || codes % qdim != 0 {
            return Err(err_at("code count not a multiple of dim"));
        }
        Some((codes, qdim))
    } else {
        None
    };
    let body = &contents[nl + 1..];
    let quant_bytes = quant_geometry.map_or(0, |(codes, qdim)| qdim * 8 + 4 + codes);
    if floats != expect_floats || body.len() != floats * 4 + quant_bytes {
        return Err(SpillError::LengthMismatch {
            path: path.to_path_buf(),
            expected_floats: expect_floats,
            declared_floats: floats,
            body_bytes: body.len(),
        });
    }
    let actual = crc32(body);
    if actual != crc_claimed {
        return Err(SpillError::ChecksumMismatch {
            path: path.to_path_buf(),
            claimed: crc_claimed,
            actual,
        });
    }
    let quant = quant_geometry.map(|(codes, qdim)| {
        let mut at = floats * 4;
        let min = parse_floats(&body[at..at + qdim * 4]);
        at += qdim * 4;
        let scale = parse_floats(&body[at..at + qdim * 4]);
        at += qdim * 4;
        let eps = f32::from_le_bytes([body[at], body[at + 1], body[at + 2], body[at + 3]]);
        at += 4;
        QuantChunk::from_parts(min, scale, eps, body[at..at + codes].to_vec())
    });
    Ok(SpillPayload {
        floats: parse_floats(&body[..floats * 4]),
        quant,
    })
}

/// [`ChunkLoader`] that reloads spilled chunks from a durable store
/// directory, counting reloads into shared [`SpillStats`].
#[derive(Debug)]
pub struct DiskChunkLoader {
    dir: PathBuf,
    kind: FeatureKind,
    dim: u32,
    floats_per_chunk: usize,
    stats: Arc<SpillStats>,
}

impl DiskChunkLoader {
    /// A loader for the `(kind, dim)` slab spilled under `dir`.
    pub fn new(
        dir: PathBuf,
        kind: FeatureKind,
        dim: u32,
        floats_per_chunk: usize,
        stats: Arc<SpillStats>,
    ) -> DiskChunkLoader {
        DiskChunkLoader {
            dir,
            kind,
            dim,
            floats_per_chunk,
            stats,
        }
    }
}

impl ChunkLoader for DiskChunkLoader {
    fn load(&self, index: usize) -> Arc<[f32]> {
        let path = spill_path(&self.dir, self.kind, self.dim, index);
        let data = match read_spill(&path, self.floats_per_chunk) {
            Ok(payload) => payload.floats,
            Err(m) => {
                // tvdp-lint: allow(no_panic, reason = "a spilled chunk that cannot be reloaded is unrecoverable data corruption under the arena's infallible RowSource contract; aborting beats serving wrong feature vectors")
                panic!("spill reload failed: {m}");
            }
        };
        // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counters; no ordering dependency with any other memory access")
        self.stats.chunks_reloaded.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_reloaded
            // tvdp-lint: allow(atomic_ordering, reason = "monotonic diagnostic counters; no ordering dependency with any other memory access")
            .fetch_add((data.len() * 4) as u64, Ordering::Relaxed);
        Arc::from(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tvdp-spill-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn spill_roundtrips_bit_exactly() {
        let dir = temp_dir("roundtrip");
        let stats = SpillStats::default();
        let data: Vec<f32> = (0..512).map(|i| (i as f32).sin()).collect();
        let written = write_spill(&dir, FeatureKind::Cnn, 8, 3, &data, None, &stats).unwrap();
        assert_eq!(written, 512 * 4);
        assert_eq!(stats.chunks_spilled(), 1);
        let back = read_spill(&spill_path(&dir, FeatureKind::Cnn, 8, 3), 512).unwrap();
        assert_eq!(
            back.floats.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert!(back.quant.is_none());
        // Re-spill of an existing file is a no-op.
        assert_eq!(
            write_spill(&dir, FeatureKind::Cnn, 8, 3, &data, None, &stats).unwrap(),
            0
        );
        assert_eq!(stats.chunks_spilled(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_spill_roundtrips_codes_in_same_frame() {
        let dir = temp_dir("quant-roundtrip");
        let stats = SpillStats::default();
        let dim = 8usize;
        let data: Vec<f32> = (0..64 * dim).map(|i| (i as f32 * 0.37).cos()).collect();
        let quant = QuantChunk::encode(&data, dim);
        let written = write_spill(
            &dir,
            FeatureKind::Cnn,
            dim as u32,
            0,
            &data,
            Some(&quant),
            &stats,
        )
        .unwrap();
        // Body = floats + min + scale + eps + codes, all CRC-framed together.
        assert_eq!(written as usize, data.len() * 4 + dim * 8 + 4 + data.len());
        let back = read_spill(
            &spill_path(&dir, FeatureKind::Cnn, dim as u32, 0),
            data.len(),
        )
        .unwrap();
        assert_eq!(
            back.floats.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let q = back.quant.expect("quant section");
        assert_eq!(q.codes(), quant.codes());
        assert_eq!(q.params().eps().to_bits(), quant.params().eps().to_bits());
        for d in 0..dim {
            assert_eq!(
                q.params().min()[d].to_bits(),
                quant.params().min()[d].to_bits()
            );
            assert_eq!(
                q.params().scale()[d].to_bits(),
                quant.params().scale()[d].to_bits()
            );
        }
        // A flipped bit anywhere in the quant section trips the shared CRC.
        let path = spill_path(&dir, FeatureKind::Cnn, dim as u32, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1; // last code byte
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_spill(&path, data.len()),
            Err(SpillError::ChecksumMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loader_reloads_and_counts() {
        let dir = temp_dir("loader");
        let stats = Arc::new(SpillStats::default());
        let data: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        write_spill(&dir, FeatureKind::SiftBow, 4, 0, &data, None, &stats).unwrap();
        let loader = DiskChunkLoader::new(dir.clone(), FeatureKind::SiftBow, 4, 64, stats.clone());
        let back = loader.load(0);
        assert_eq!(&back[..], &data[..]);
        assert_eq!(stats.chunks_reloaded(), 1);
        assert_eq!(stats.bytes_reloaded(), 64 * 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_spill_detected() {
        let dir = temp_dir("corrupt");
        let stats = SpillStats::default();
        let data = vec![1.0f32; 16];
        write_spill(
            &dir,
            FeatureKind::ColorHistogram,
            16,
            1,
            &data,
            None,
            &stats,
        )
        .unwrap();
        let path = spill_path(&dir, FeatureKind::ColorHistogram, 16, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_spill(&path, 16).unwrap_err();
        match &err {
            SpillError::ChecksumMismatch {
                path: p,
                claimed,
                actual,
            } => {
                assert_eq!(p, &path);
                assert_ne!(claimed, actual);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("checksum"));
        assert!(err.to_string().contains(&path.display().to_string()));
        // Wrong expected length is also refused, with the path attached.
        let err = read_spill(&path, 15).unwrap_err();
        match &err {
            SpillError::LengthMismatch {
                path: p,
                expected_floats,
                declared_floats,
                ..
            } => {
                assert_eq!(p, &path);
                assert_eq!(*expected_floats, 15);
                assert_eq!(*declared_floats, 16);
            }
            other => panic!("expected length mismatch, got {other:?}"),
        }
        // A missing file carries the path through the Io variant.
        let gone = dir.join("spill-cnn-4-99.bin");
        assert!(matches!(read_spill(&gone, 1), Err(SpillError::Io { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn debris_naming() {
        assert!(is_spill_debris("spill-cnn-8-0.bin"));
        assert!(is_spill_debris("spill-cnn-8-0.bin.tmp"));
        assert!(!is_spill_debris("snapshot.json"));
        assert!(!is_spill_debris("wal-3.log"));
    }
}
