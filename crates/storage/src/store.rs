//! The concurrency-safe visual data store.

use std::collections::BTreeMap;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use tvdp_kernel::{FeatureSlab, RowRef, RowSource, SlabView};
use tvdp_vision::{FeatureKind, Image};

use crate::annotation::{Annotation, AnnotationSource, ClassificationScheme, RegionOfInterest};
use crate::ids::{AnnotationId, ClassificationId, ImageId};
use crate::record::{ImageMeta, ImageOrigin, ImageRecord};

/// Capacity of the upload idempotency table
/// ([`VisualStore::ingest_upload`]): at most this many marker keys are
/// remembered, and inserting past the bound evicts the oldest marker
/// (smallest sequence number). The table bounds memory; the window
/// bounds how stale a client retry can be and still deduplicate —
/// replays older than the window are ingested as fresh uploads.
pub const UPLOAD_MARKER_CAPACITY: usize = 4096;

/// Errors surfaced by store operations on bad references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The referenced image does not exist.
    UnknownImage(ImageId),
    /// The referenced classification scheme does not exist.
    UnknownClassification(ClassificationId),
    /// The label index exceeds the scheme's vocabulary.
    LabelOutOfRange {
        /// Scheme whose vocabulary was exceeded.
        classification: ClassificationId,
        /// Offending label index.
        label: usize,
        /// Vocabulary size.
        vocabulary: usize,
    },
    /// A scheme with this name already exists.
    DuplicateScheme(String),
    /// An explicit-id insert targeted an id that is already occupied.
    DuplicateId {
        /// The occupied id (raw value).
        id: u64,
        /// The table involved (`"image"`, `"annotation"`, or
        /// `"classification"`).
        table: &'static str,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownImage(id) => write!(f, "unknown image {id}"),
            StorageError::UnknownClassification(id) => write!(f, "unknown classification {id}"),
            StorageError::LabelOutOfRange {
                classification,
                label,
                vocabulary,
            } => write!(
                f,
                "label {label} out of range for {classification} (vocabulary size {vocabulary})"
            ),
            StorageError::DuplicateScheme(name) => write!(f, "duplicate scheme name {name}"),
            StorageError::DuplicateId { id, table } => {
                write!(f, "{table} id {id} is already occupied")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Referential-integrity failures found while rebuilding a store from a
/// snapshot ([`VisualStore::from_snapshot`]). A snapshot that decodes
/// structurally can still be inconsistent — rows naming ids that do not
/// exist, labels outside a scheme's vocabulary, pixel blobs whose byte
/// count disagrees with their declared dimensions — and loading such a
/// snapshot must fail loudly instead of panicking or building a corrupt
/// store.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Two image rows carry the same id.
    DuplicateImage(ImageId),
    /// A pixel blob's byte count disagrees with `width * height * 3`,
    /// or a dimension is zero.
    BlobShape {
        /// Image the blob belongs to.
        image: ImageId,
        /// Declared width in pixels.
        width: usize,
        /// Declared height in pixels.
        height: usize,
        /// Actual byte count of the raw payload.
        len: usize,
    },
    /// A pixel blob names an image id with no image row.
    DanglingBlob(ImageId),
    /// A feature row names an image id with no image row.
    DanglingFeature(ImageId),
    /// Two scheme rows carry the same id.
    DuplicateSchemeId(ClassificationId),
    /// A scheme has an empty or duplicated label vocabulary.
    BadScheme(ClassificationId),
    /// Two annotation rows carry the same id.
    DuplicateAnnotation(AnnotationId),
    /// An annotation names an image id with no image row.
    DanglingAnnotationImage {
        /// The offending annotation.
        annotation: AnnotationId,
        /// The missing image.
        image: ImageId,
    },
    /// An annotation names a scheme id with no scheme row.
    DanglingAnnotationScheme {
        /// The offending annotation.
        annotation: AnnotationId,
        /// The missing scheme.
        classification: ClassificationId,
    },
    /// An annotation's label index exceeds its scheme's vocabulary.
    LabelOutOfRange {
        /// The offending annotation.
        annotation: AnnotationId,
        /// Offending label index.
        label: usize,
        /// Vocabulary size of the named scheme.
        vocabulary: usize,
    },
    /// An annotation's confidence is outside `[0, 1]` or not a number.
    BadConfidence {
        /// The offending annotation.
        annotation: AnnotationId,
        /// The out-of-range value.
        confidence: f32,
    },
    /// Two upload-marker rows carry the same idempotency key.
    DuplicateMarker(String),
    /// An upload marker names an image id with no image row.
    DanglingMarker {
        /// The offending idempotency key.
        key: String,
        /// The missing image.
        image: ImageId,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::DuplicateImage(id) => write!(f, "duplicate image id {id}"),
            SnapshotError::BlobShape {
                image,
                width,
                height,
                len,
            } => write!(
                f,
                "blob for {image}: {len} bytes does not match {width}x{height}x3"
            ),
            SnapshotError::DanglingBlob(id) => write!(f, "blob references missing image {id}"),
            SnapshotError::DanglingFeature(id) => {
                write!(f, "feature references missing image {id}")
            }
            SnapshotError::DuplicateSchemeId(id) => write!(f, "duplicate scheme id {id}"),
            SnapshotError::BadScheme(id) => {
                write!(f, "scheme {id} has an empty or duplicated vocabulary")
            }
            SnapshotError::DuplicateAnnotation(id) => write!(f, "duplicate annotation id {id}"),
            SnapshotError::DanglingAnnotationImage { annotation, image } => {
                write!(
                    f,
                    "annotation {annotation} references missing image {image}"
                )
            }
            SnapshotError::DanglingAnnotationScheme {
                annotation,
                classification,
            } => write!(
                f,
                "annotation {annotation} references missing scheme {classification}"
            ),
            SnapshotError::LabelOutOfRange {
                annotation,
                label,
                vocabulary,
            } => write!(
                f,
                "annotation {annotation}: label {label} out of range (vocabulary size {vocabulary})"
            ),
            SnapshotError::BadConfidence {
                annotation,
                confidence,
            } => write!(
                f,
                "annotation {annotation}: confidence {confidence} outside [0, 1]"
            ),
            SnapshotError::DuplicateMarker(key) => {
                write!(f, "duplicate upload marker `{key}`")
            }
            SnapshotError::DanglingMarker { key, image } => {
                write!(f, "upload marker `{key}` references missing image {image}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serializable dump of every table (used by [`crate::persist`]).
///
/// Equality is structural over every table, which makes snapshots the
/// ground truth for crash-recovery tests: two stores are "the same
/// state" exactly when their snapshots compare equal.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    pub(crate) images: Vec<ImageRecord>,
    pub(crate) blobs: Vec<(ImageId, usize, usize, Vec<u8>)>,
    pub(crate) features: Vec<(ImageId, FeatureKind, Vec<f32>)>,
    pub(crate) schemes: Vec<ClassificationScheme>,
    pub(crate) annotations: Vec<Annotation>,
    /// Upload idempotency markers as `(key, image, sequence)`.
    pub(crate) markers: Vec<(String, ImageId, u64)>,
}

/// Stable address of one feature row in the store's arena: the slab is
/// keyed by `(kind, dim)` and `row` indexes into it. Handles never move
/// once issued (replacement repoints the handle at a fresh row), so
/// indexes can hold them across arbitrary later ingests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FeatureHandle {
    /// Feature family the row belongs to.
    pub kind: FeatureKind,
    /// Row dimensionality; `0` marks an empty vector (no slab row).
    pub dim: u32,
    /// Row index within the `(kind, dim)` slab.
    pub row: u32,
}

#[derive(Debug, Default)]
struct Tables {
    next_image: u64,
    next_annotation: u64,
    next_classification: u64,
    // All tables are ordered maps (never hash maps): table iteration
    // feeds query results and persisted snapshots, so iteration order
    // must be reproducible (lint rule L2).
    images: BTreeMap<ImageId, ImageRecord>,
    blobs: BTreeMap<ImageId, Image>,
    /// Per-(image, kind) handle into `slabs`; vector bytes live in the
    /// arena exactly once.
    features: BTreeMap<(ImageId, FeatureKind), FeatureHandle>,
    /// The feature arena: one append-only slab per `(kind, dim)` family.
    slabs: BTreeMap<(FeatureKind, u32), FeatureSlab>,
    schemes: BTreeMap<ClassificationId, ClassificationScheme>,
    annotations: BTreeMap<AnnotationId, Annotation>,
    annotations_by_image: BTreeMap<ImageId, Vec<AnnotationId>>,
    /// Incremental count of annotations per (scheme, label), serving
    /// the planner's selectivity estimates in O(log n).
    label_counts: BTreeMap<(ClassificationId, usize), usize>,
    /// Bounded upload idempotency table: marker key → (image the upload
    /// produced, insertion sequence for oldest-first eviction).
    upload_markers: BTreeMap<String, (ImageId, u64)>,
    /// Sequence counter stamping marker insertion order.
    next_marker_seq: u64,
}

impl Tables {
    /// Appends `vector` to the arena and repoints the `(image, kind)`
    /// handle. Replacement leaves the previous row in place (rows are
    /// write-once so outstanding snapshots stay valid); the orphaned
    /// row is reclaimed on the next snapshot/restore cycle.
    fn put_feature_row(&mut self, image: ImageId, kind: FeatureKind, vector: &[f32]) {
        let handle = if vector.is_empty() {
            FeatureHandle {
                kind,
                dim: 0,
                row: 0,
            }
        } else {
            let dim = vector.len() as u32;
            let slab = self
                .slabs
                .entry((kind, dim))
                .or_insert_with(|| FeatureSlab::new(vector.len()));
            let row = slab.push(vector);
            FeatureHandle { kind, dim, row }
        };
        self.features.insert((image, kind), handle);
    }

    /// The feature bytes a handle points at.
    fn feature_slice(&self, handle: &FeatureHandle) -> &[f32] {
        if handle.dim == 0 {
            &[]
        } else {
            self.slabs[&(handle.kind, handle.dim)].row(handle.row)
        }
    }
}

/// The TVDP visual data store: all Fig. 2 tables behind one
/// readers-writer lock. Clone-out semantics: getters return owned copies
/// so readers never hold the lock across user code.
///
/// ```
/// use tvdp_storage::{AnnotationSource, ImageMeta, ImageOrigin, UserId, VisualStore};
/// use tvdp_geo::GeoPoint;
///
/// let store = VisualStore::new();
/// let scheme = store.register_scheme("cleanliness", vec!["clean".into(), "dirty".into()])?;
/// let id = store.add_image(
///     ImageMeta {
///         uploader: UserId(1),
///         gps: GeoPoint::new(34.05, -118.25),
///         fov: None,
///         captured_at: 1_546_300_800,
///         uploaded_at: 1_546_300_900,
///         keywords: vec!["corner".into()],
///     },
///     ImageOrigin::Original,
///     None,
/// )?;
/// store.annotate(id, scheme, 1, 0.9, AnnotationSource::Human(UserId(1)), None)?;
/// assert_eq!(store.annotations_with_label(scheme, 1).len(), 1);
/// # Ok::<(), tvdp_storage::StorageError>(())
/// ```
#[derive(Debug, Default)]
pub struct VisualStore {
    inner: RwLock<Tables>,
}

impl VisualStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored images.
    pub fn len(&self) -> usize {
        self.inner.read().images.len()
    }

    /// Whether the store holds no images.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ingests an image row; `pixels` may be omitted for metadata-only
    /// rows (e.g. when only features were uploaded from an edge device).
    ///
    /// Returns the new row's id. Fails when an augmented origin
    /// references a missing parent.
    pub fn add_image(
        &self,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
    ) -> Result<ImageId, StorageError> {
        let mut t = self.inner.write();
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if !t.images.contains_key(parent) {
                return Err(StorageError::UnknownImage(*parent));
            }
        }
        let id = ImageId(t.next_image);
        t.next_image += 1;
        let (width, height) = pixels
            .as_ref()
            .map_or((0, 0), |img| (img.width(), img.height()));
        let record = ImageRecord::new(id, meta, origin, width, height);
        t.images.insert(id, record);
        if let Some(img) = pixels {
            t.blobs.insert(id, img);
        }
        Ok(id)
    }

    /// [`VisualStore::add_image`] at a caller-chosen id. A sharded
    /// platform allocates ids globally and routes rows to per-shard
    /// stores, and WAL replay re-inserts rows at their journaled ids —
    /// both need the id to be an input, not an output. Fails when the
    /// id is already occupied; the auto-assign counter advances past
    /// `id` so mixed explicit/auto inserts never collide.
    pub fn add_image_at(
        &self,
        id: ImageId,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
    ) -> Result<ImageId, StorageError> {
        let mut t = self.inner.write();
        if t.images.contains_key(&id) {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "image",
            });
        }
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if !t.images.contains_key(parent) {
                return Err(StorageError::UnknownImage(*parent));
            }
        }
        t.next_image = t.next_image.max(id.0.saturating_add(1));
        let (width, height) = pixels
            .as_ref()
            .map_or((0, 0), |img| (img.width(), img.height()));
        let record = ImageRecord::new(id, meta, origin, width, height);
        t.images.insert(id, record);
        if let Some(img) = pixels {
            t.blobs.insert(id, img);
        }
        Ok(id)
    }

    /// Atomically ingests one upload — image row, optional pixels, and
    /// feature vectors — deduplicated by idempotency `marker`. Returns
    /// `(id, replayed)`: when the marker is already present the stored
    /// image's id comes back with `replayed = true` and nothing is
    /// written, so a client retrying a partially acknowledged upload
    /// can never duplicate rows. All writes happen under a single
    /// write-lock acquisition, so readers never observe the image
    /// without its features. Markers beyond
    /// [`UPLOAD_MARKER_CAPACITY`] evict oldest-first.
    pub fn ingest_upload(
        &self,
        marker: &str,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
        features: &[(FeatureKind, Vec<f32>)],
    ) -> Result<(ImageId, bool), StorageError> {
        let mut t = self.inner.write();
        if let Some((id, _)) = t.upload_markers.get(marker) {
            return Ok((*id, true));
        }
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if !t.images.contains_key(parent) {
                return Err(StorageError::UnknownImage(*parent));
            }
        }
        let id = ImageId(t.next_image);
        t.next_image += 1;
        let (width, height) = pixels
            .as_ref()
            .map_or((0, 0), |img| (img.width(), img.height()));
        t.images
            .insert(id, ImageRecord::new(id, meta, origin, width, height));
        if let Some(img) = pixels {
            t.blobs.insert(id, img);
        }
        for (kind, vector) in features {
            t.put_feature_row(id, *kind, vector);
        }
        let seq = t.next_marker_seq;
        t.next_marker_seq += 1;
        t.upload_markers.insert(marker.to_string(), (id, seq));
        if t.upload_markers.len() > UPLOAD_MARKER_CAPACITY {
            let oldest = t
                .upload_markers
                .iter()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(k, _)| k.clone());
            if let Some(key) = oldest {
                t.upload_markers.remove(&key);
            }
        }
        Ok((id, false))
    }

    /// [`VisualStore::ingest_upload`] at a caller-chosen id (see
    /// [`VisualStore::add_image_at`]). A replayed marker returns the
    /// originally stored image and leaves `id` unused.
    pub fn ingest_upload_at(
        &self,
        marker: &str,
        id: ImageId,
        meta: ImageMeta,
        origin: ImageOrigin,
        pixels: Option<Image>,
        features: &[(FeatureKind, Vec<f32>)],
    ) -> Result<(ImageId, bool), StorageError> {
        let mut t = self.inner.write();
        if let Some((existing, _)) = t.upload_markers.get(marker) {
            return Ok((*existing, true));
        }
        if t.images.contains_key(&id) {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "image",
            });
        }
        if let ImageOrigin::Augmented { parent, .. } = &origin {
            if !t.images.contains_key(parent) {
                return Err(StorageError::UnknownImage(*parent));
            }
        }
        t.next_image = t.next_image.max(id.0.saturating_add(1));
        let (width, height) = pixels
            .as_ref()
            .map_or((0, 0), |img| (img.width(), img.height()));
        t.images
            .insert(id, ImageRecord::new(id, meta, origin, width, height));
        if let Some(img) = pixels {
            t.blobs.insert(id, img);
        }
        for (kind, vector) in features {
            t.put_feature_row(id, *kind, vector);
        }
        let seq = t.next_marker_seq;
        t.next_marker_seq += 1;
        t.upload_markers.insert(marker.to_string(), (id, seq));
        if t.upload_markers.len() > UPLOAD_MARKER_CAPACITY {
            let oldest = t
                .upload_markers
                .iter()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(k, _)| k.clone());
            if let Some(key) = oldest {
                t.upload_markers.remove(&key);
            }
        }
        Ok((id, false))
    }

    /// The image a previously acknowledged upload with this idempotency
    /// key produced, if the marker is still within the bounded window.
    pub fn upload_marker(&self, key: &str) -> Option<ImageId> {
        self.inner.read().upload_markers.get(key).map(|(id, _)| *id)
    }

    /// Number of live upload markers (≤ [`UPLOAD_MARKER_CAPACITY`]).
    pub fn upload_marker_count(&self) -> usize {
        self.inner.read().upload_markers.len()
    }

    /// The image row, if present.
    pub fn image(&self, id: ImageId) -> Option<ImageRecord> {
        self.inner.read().images.get(&id).cloned()
    }

    /// The pixel data, if stored.
    pub fn pixels(&self, id: ImageId) -> Option<Image> {
        self.inner.read().blobs.get(&id).cloned()
    }

    /// All image ids in insertion order.
    pub fn image_ids(&self) -> Vec<ImageId> {
        self.inner.read().images.keys().copied().collect()
    }

    /// Runs `f` over every image record (under the read lock; keep `f`
    /// cheap).
    pub fn for_each_image(&self, mut f: impl FnMut(&ImageRecord)) {
        for record in self.inner.read().images.values() {
            f(record);
        }
    }

    /// Runs `f` over the records of `ids` (in the given order, skipping
    /// absent ids) under a single read-lock acquisition — the
    /// zero-clone analogue of calling [`VisualStore::image`] in a loop.
    /// `f` must not call back into the store (the read lock is held and
    /// is not recursively acquirable).
    pub fn with_images(&self, ids: &[ImageId], mut f: impl FnMut(&ImageRecord)) {
        let t = self.inner.read();
        for id in ids {
            if let Some(record) = t.images.get(id) {
                f(record);
            }
        }
    }

    /// Runs `f` over `(record, feature)` for each id in `ids` that has a
    /// stored feature of `kind`, under a single read-lock acquisition.
    /// Ids without a stored feature of `kind` are skipped. The same
    /// no-reentrancy rule as [`VisualStore::with_images`] applies.
    pub fn with_image_features(
        &self,
        ids: &[ImageId],
        kind: FeatureKind,
        mut f: impl FnMut(&ImageRecord, &[f32]),
    ) {
        let t = self.inner.read();
        for id in ids {
            if let (Some(record), Some(handle)) = (t.images.get(id), t.features.get(&(*id, kind))) {
                f(record, t.feature_slice(handle));
            }
        }
    }

    /// Ids of images derived from `parent` by augmentation.
    pub fn augmented_children(&self, parent: ImageId) -> Vec<ImageId> {
        self.inner
            .read()
            .images
            .values()
            .filter(
                |r| matches!(&r.origin, ImageOrigin::Augmented { parent: p, .. } if *p == parent),
            )
            .map(|r| r.id)
            .collect()
    }

    /// Stores (or replaces) a feature vector for an image. The bytes
    /// land in the shared feature arena; replacement appends a fresh
    /// row and repoints the image's handle.
    pub fn put_feature(
        &self,
        image: ImageId,
        kind: FeatureKind,
        vector: Vec<f32>,
    ) -> Result<(), StorageError> {
        let mut t = self.inner.write();
        if !t.images.contains_key(&image) {
            return Err(StorageError::UnknownImage(image));
        }
        t.put_feature_row(image, kind, &vector);
        Ok(())
    }

    /// The stored feature vector, if any, as an owned copy. Prefer
    /// [`VisualStore::feature_ref`] on hot paths — it shares the arena
    /// allocation instead of cloning.
    pub fn feature(&self, image: ImageId, kind: FeatureKind) -> Option<Vec<f32>> {
        let t = self.inner.read();
        let handle = t.features.get(&(image, kind))?;
        Some(t.feature_slice(handle).to_vec())
    }

    /// A zero-copy reference to the stored feature vector, if any.
    /// The returned [`RowRef`] keeps the underlying arena chunk alive
    /// and derefs to `&[f32]`; no bytes are copied for rows in frozen
    /// chunks.
    pub fn feature_ref(&self, image: ImageId, kind: FeatureKind) -> Option<RowRef> {
        let t = self.inner.read();
        let handle = t.features.get(&(image, kind))?;
        if handle.dim == 0 {
            Some(RowRef::empty())
        } else {
            Some(t.slabs[&(handle.kind, handle.dim)].row_ref(handle.row))
        }
    }

    /// The arena handle for an image's feature of `kind`, if stored.
    pub fn feature_handle(&self, image: ImageId, kind: FeatureKind) -> Option<FeatureHandle> {
        self.inner.read().features.get(&(image, kind)).copied()
    }

    /// An `Arc`-sharing snapshot of the `(kind, dim)` feature slab.
    /// Row handles issued up to this call resolve against the view
    /// without taking the store lock again. Returns an empty view when
    /// no feature of that shape has been stored.
    pub fn slab_view(&self, kind: FeatureKind, dim: usize) -> SlabView {
        self.inner
            .read()
            .slabs
            .get(&(kind, dim as u32))
            .map(FeatureSlab::view)
            .unwrap_or_else(|| SlabView::empty(dim.max(1)))
    }

    /// Total resident bytes of trained quantized codes (plus their
    /// decode-parameter sidecars) across every feature family's arena —
    /// the compressed-scan working set this store keeps in memory.
    pub fn quant_code_bytes(&self) -> usize {
        self.inner
            .read()
            .slabs
            .values()
            .map(FeatureSlab::quant_code_bytes)
            .sum()
    }

    /// Number of arena rows in the `(kind, dim)` slab (monotonic; used
    /// to detect stale views cheaply).
    pub fn slab_rows(&self, kind: FeatureKind, dim: usize) -> usize {
        self.inner
            .read()
            .slabs
            .get(&(kind, dim as u32))
            .map_or(0, RowSource::rows)
    }

    /// Runs `f` against the live `(kind, dim)` slab under the store
    /// read lock — zero-copy row access for insert-time index
    /// maintenance. Keep `f` cheap; it blocks writers. Returns `None`
    /// when the slab does not exist.
    pub fn with_slab<R>(
        &self,
        kind: FeatureKind,
        dim: usize,
        f: impl FnOnce(&FeatureSlab) -> R,
    ) -> Option<R> {
        let t = self.inner.read();
        t.slabs.get(&(kind, dim as u32)).map(f)
    }

    /// Spills cold feature-arena chunks: every frozen chunk except the
    /// newest `keep_hot` per slab is handed to `spill` along with its
    /// quantized mirror; the callback must durably persist the floats
    /// (and codes) and return the
    /// [`ChunkLoader`](tvdp_kernel::ChunkLoader) that reloads the
    /// floats; the resident float memory is then released. The
    /// quantized codes stay resident — they are the compressed scan's
    /// working set — and spill only as a durable copy inside the same
    /// CRC frame. Chunks already spilled and not since reloaded are
    /// skipped. Returns `(chunks, float_bytes)` released from memory.
    /// Deterministic: slabs iterate in `(kind, dim)` order, chunks
    /// oldest-first.
    pub fn spill_cold_chunks<E>(
        &self,
        keep_hot: usize,
        mut spill: impl FnMut(
            FeatureKind,
            u32,
            usize,
            &[f32],
            &tvdp_kernel::quant::QuantChunk,
        ) -> Result<std::sync::Arc<dyn tvdp_kernel::ChunkLoader>, E>,
    ) -> Result<(usize, u64), E> {
        let mut t = self.inner.write();
        let mut chunks = 0usize;
        let mut bytes = 0u64;
        for (&(kind, dim), slab) in t.slabs.iter_mut() {
            let cold = slab.frozen_chunks().saturating_sub(keep_hot);
            for c in 0..cold {
                if !slab.chunk_in_memory(c) {
                    continue;
                }
                let quant = std::sync::Arc::clone(slab.chunk_quant(c));
                let loader = spill(kind, dim, c, slab.chunk_data(c), &quant)?;
                let floats = slab.chunk_data(c).len() as u64;
                slab.spill_frozen(c, loader);
                chunks += 1;
                bytes += floats * 4;
            }
        }
        Ok((chunks, bytes))
    }

    /// Images that have a stored feature of `kind`.
    pub fn images_with_feature(&self, kind: FeatureKind) -> Vec<ImageId> {
        let t = self.inner.read();
        // BTreeMap keys iterate sorted by (id, kind), so the filtered
        // ids are already ascending.
        t.features
            .keys()
            .filter(|(_, k)| *k == kind)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Registers a classification scheme with a unique name.
    pub fn register_scheme(
        &self,
        name: impl Into<String>,
        labels: Vec<String>,
    ) -> Result<ClassificationId, StorageError> {
        let name = name.into();
        let mut t = self.inner.write();
        if t.schemes.values().any(|s| s.name == name) {
            return Err(StorageError::DuplicateScheme(name));
        }
        let id = ClassificationId(t.next_classification);
        t.next_classification += 1;
        t.schemes
            .insert(id, ClassificationScheme::new(id, name, labels));
        Ok(id)
    }

    /// [`VisualStore::register_scheme`] at a caller-chosen id (see
    /// [`VisualStore::add_image_at`]). A sharded platform broadcasts
    /// each scheme to every shard store under one global id.
    pub fn register_scheme_at(
        &self,
        id: ClassificationId,
        name: impl Into<String>,
        labels: Vec<String>,
    ) -> Result<ClassificationId, StorageError> {
        let name = name.into();
        let mut t = self.inner.write();
        if t.schemes.values().any(|s| s.name == name) {
            return Err(StorageError::DuplicateScheme(name));
        }
        if t.schemes.contains_key(&id) {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "classification",
            });
        }
        t.next_classification = t.next_classification.max(id.0.saturating_add(1));
        t.schemes
            .insert(id, ClassificationScheme::new(id, name, labels));
        Ok(id)
    }

    /// The scheme row, if present.
    pub fn scheme(&self, id: ClassificationId) -> Option<ClassificationScheme> {
        self.inner.read().schemes.get(&id).cloned()
    }

    /// Looks a scheme up by name.
    pub fn scheme_by_name(&self, name: &str) -> Option<ClassificationScheme> {
        self.inner
            .read()
            .schemes
            .values()
            .find(|s| s.name == name)
            .cloned()
    }

    /// All registered schemes.
    pub fn schemes(&self) -> Vec<ClassificationScheme> {
        self.inner.read().schemes.values().cloned().collect()
    }

    /// Adds an annotation, validating every foreign key.
    pub fn annotate(
        &self,
        image: ImageId,
        classification: ClassificationId,
        label: usize,
        confidence: f32,
        source: AnnotationSource,
        region: Option<RegionOfInterest>,
    ) -> Result<AnnotationId, StorageError> {
        let mut t = self.inner.write();
        if !t.images.contains_key(&image) {
            return Err(StorageError::UnknownImage(image));
        }
        let vocabulary = match t.schemes.get(&classification) {
            None => return Err(StorageError::UnknownClassification(classification)),
            Some(s) => s.labels.len(),
        };
        if label >= vocabulary {
            return Err(StorageError::LabelOutOfRange {
                classification,
                label,
                vocabulary,
            });
        }
        let id = AnnotationId(t.next_annotation);
        t.next_annotation += 1;
        let ann = Annotation::new(id, image, classification, label, confidence, source, region);
        t.annotations.insert(id, ann);
        t.annotations_by_image.entry(image).or_default().push(id);
        *t.label_counts.entry((classification, label)).or_default() += 1;
        Ok(id)
    }

    /// [`VisualStore::annotate`] at a caller-chosen annotation id (see
    /// [`VisualStore::add_image_at`]): a sharded platform keeps
    /// annotation ids globally unique across per-shard stores.
    pub fn annotate_at(
        &self,
        id: AnnotationId,
        image: ImageId,
        classification: ClassificationId,
        label: usize,
        confidence: f32,
        source: AnnotationSource,
        region: Option<RegionOfInterest>,
    ) -> Result<AnnotationId, StorageError> {
        let mut t = self.inner.write();
        if t.annotations.contains_key(&id) {
            return Err(StorageError::DuplicateId {
                id: id.0,
                table: "annotation",
            });
        }
        if !t.images.contains_key(&image) {
            return Err(StorageError::UnknownImage(image));
        }
        let vocabulary = match t.schemes.get(&classification) {
            None => return Err(StorageError::UnknownClassification(classification)),
            Some(s) => s.labels.len(),
        };
        if label >= vocabulary {
            return Err(StorageError::LabelOutOfRange {
                classification,
                label,
                vocabulary,
            });
        }
        t.next_annotation = t.next_annotation.max(id.0.saturating_add(1));
        let ann = Annotation::new(id, image, classification, label, confidence, source, region);
        t.annotations.insert(id, ann);
        t.annotations_by_image.entry(image).or_default().push(id);
        *t.label_counts.entry((classification, label)).or_default() += 1;
        Ok(id)
    }

    /// Number of annotations carrying a given (scheme, label) pair —
    /// maintained incrementally so the query planner can estimate
    /// categorical selectivity without scanning the annotation table.
    pub fn label_count(&self, classification: ClassificationId, label: usize) -> usize {
        self.inner
            .read()
            .label_counts
            .get(&(classification, label))
            .copied()
            .unwrap_or(0)
    }

    /// Looks up a single annotation by id.
    pub fn annotation(&self, id: AnnotationId) -> Option<Annotation> {
        self.inner.read().annotations.get(&id).cloned()
    }

    /// All annotations on one image.
    pub fn annotations_of(&self, image: ImageId) -> Vec<Annotation> {
        let t = self.inner.read();
        t.annotations_by_image
            .get(&image)
            .map(|ids| ids.iter().map(|id| t.annotations[id].clone()).collect())
            .unwrap_or_default()
    }

    /// All annotations carrying a given (scheme, label) pair — the
    /// translational-query primitive ("all encampment images").
    pub fn annotations_with_label(
        &self,
        classification: ClassificationId,
        label: usize,
    ) -> Vec<Annotation> {
        self.inner
            .read()
            .annotations
            .values()
            .filter(|a| a.classification == classification && a.label == label)
            .cloned()
            .collect()
    }

    /// Whether `image` carries at least one annotation with the given
    /// (scheme, label) pair at or above `min_confidence` — exactly the
    /// membership predicate behind a categorical query, evaluated for
    /// one image without cloning any annotation. The query planner uses
    /// it to post-filter a small candidate set instead of materializing
    /// the full label posting.
    pub fn has_annotation(
        &self,
        image: ImageId,
        classification: ClassificationId,
        label: usize,
        min_confidence: f32,
    ) -> bool {
        let t = self.inner.read();
        t.annotations_by_image.get(&image).is_some_and(|ids| {
            ids.iter().any(|id| {
                t.annotations.get(id).is_some_and(|a| {
                    a.classification == classification
                        && a.label == label
                        && a.confidence >= min_confidence
                })
            })
        })
    }

    /// Total number of annotations.
    pub fn annotation_count(&self) -> usize {
        self.inner.read().annotations.len()
    }

    /// Serializable dump of every table.
    pub fn snapshot(&self) -> Snapshot {
        let t = self.inner.read();
        Snapshot {
            images: t.images.values().cloned().collect(),
            blobs: t
                .blobs
                .iter()
                .map(|(id, img)| (*id, img.width(), img.height(), img.raw().to_vec()))
                .collect(),
            features: t
                .features
                .iter()
                .map(|((id, kind), handle)| (*id, *kind, t.feature_slice(handle).to_vec()))
                .collect(),
            schemes: t.schemes.values().cloned().collect(),
            annotations: t.annotations.values().cloned().collect(),
            markers: t
                .upload_markers
                .iter()
                .map(|(key, (id, seq))| (key.clone(), *id, *seq))
                .collect(),
        }
    }

    /// Rebuilds a store from a snapshot, validating referential
    /// integrity: blob shapes must match their declared dimensions,
    /// every blob/feature/annotation must name an existing image,
    /// annotations must name an existing scheme with the label in
    /// range, and no table may repeat an id.
    pub fn from_snapshot(snap: Snapshot) -> Result<Self, SnapshotError> {
        let mut t = Tables::default();
        for rec in snap.images {
            t.next_image = t.next_image.max(rec.id.raw().saturating_add(1));
            let id = rec.id;
            if t.images.insert(id, rec).is_some() {
                return Err(SnapshotError::DuplicateImage(id));
            }
        }
        for (id, w, h, raw) in snap.blobs {
            if w == 0 || h == 0 || raw.len() != w.saturating_mul(h).saturating_mul(3) {
                return Err(SnapshotError::BlobShape {
                    image: id,
                    width: w,
                    height: h,
                    len: raw.len(),
                });
            }
            if !t.images.contains_key(&id) {
                return Err(SnapshotError::DanglingBlob(id));
            }
            t.blobs.insert(id, Image::from_raw(w, h, raw));
        }
        for (id, kind, v) in snap.features {
            if !t.images.contains_key(&id) {
                return Err(SnapshotError::DanglingFeature(id));
            }
            t.put_feature_row(id, kind, &v);
        }
        for s in snap.schemes {
            t.next_classification = t.next_classification.max(s.id.raw().saturating_add(1));
            let mut seen = std::collections::BTreeSet::new();
            if s.labels.is_empty() || !s.labels.iter().all(|l| seen.insert(l.as_str())) {
                return Err(SnapshotError::BadScheme(s.id));
            }
            let id = s.id;
            if t.schemes.insert(id, s).is_some() {
                return Err(SnapshotError::DuplicateSchemeId(id));
            }
        }
        for a in snap.annotations {
            t.next_annotation = t.next_annotation.max(a.id.raw().saturating_add(1));
            if !t.images.contains_key(&a.image) {
                return Err(SnapshotError::DanglingAnnotationImage {
                    annotation: a.id,
                    image: a.image,
                });
            }
            let vocabulary = match t.schemes.get(&a.classification) {
                None => {
                    return Err(SnapshotError::DanglingAnnotationScheme {
                        annotation: a.id,
                        classification: a.classification,
                    })
                }
                Some(s) => s.labels.len(),
            };
            if a.label >= vocabulary {
                return Err(SnapshotError::LabelOutOfRange {
                    annotation: a.id,
                    label: a.label,
                    vocabulary,
                });
            }
            if !(0.0..=1.0).contains(&a.confidence) {
                return Err(SnapshotError::BadConfidence {
                    annotation: a.id,
                    confidence: a.confidence,
                });
            }
            t.annotations_by_image
                .entry(a.image)
                .or_default()
                .push(a.id);
            *t.label_counts
                .entry((a.classification, a.label))
                .or_default() += 1;
            let id = a.id;
            if t.annotations.insert(id, a).is_some() {
                return Err(SnapshotError::DuplicateAnnotation(id));
            }
        }
        for (key, image, seq) in snap.markers {
            if !t.images.contains_key(&image) {
                return Err(SnapshotError::DanglingMarker { key, image });
            }
            t.next_marker_seq = t.next_marker_seq.max(seq.saturating_add(1));
            if t.upload_markers.insert(key.clone(), (image, seq)).is_some() {
                return Err(SnapshotError::DuplicateMarker(key));
            }
        }
        Ok(Self {
            inner: RwLock::new(t),
        })
    }

    /// The id the next [`VisualStore::add_image`] will assign. Only
    /// meaningful while the caller holds exclusive mutation rights (the
    /// WAL wrapper journals the peeked id before applying the op).
    pub fn peek_next_image_id(&self) -> ImageId {
        ImageId(self.inner.read().next_image)
    }

    /// The id the next [`VisualStore::register_scheme`] will assign.
    /// See [`VisualStore::peek_next_image_id`] for the exclusivity
    /// caveat.
    pub fn peek_next_classification_id(&self) -> ClassificationId {
        ClassificationId(self.inner.read().next_classification)
    }

    /// The id the next [`VisualStore::annotate`] will assign. See
    /// [`VisualStore::peek_next_image_id`] for the exclusivity caveat.
    pub fn peek_next_annotation_id(&self) -> AnnotationId {
        AnnotationId(self.inner.read().next_annotation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UserId;
    use tvdp_geo::GeoPoint;

    fn meta() -> ImageMeta {
        ImageMeta {
            uploader: UserId(1),
            gps: GeoPoint::new(34.0, -118.25),
            fov: None,
            captured_at: 100,
            uploaded_at: 110,
            keywords: vec!["test".into()],
        }
    }

    fn tiny_image() -> Image {
        Image::from_fn(4, 4, |x, y| [x as u8, y as u8, 0])
    }

    #[test]
    fn add_and_fetch_image() {
        let store = VisualStore::new();
        let id = store
            .add_image(meta(), ImageOrigin::Original, Some(tiny_image()))
            .unwrap();
        assert_eq!(store.len(), 1);
        let rec = store.image(id).unwrap();
        assert_eq!(rec.width, 4);
        assert_eq!(store.pixels(id).unwrap(), tiny_image());
        assert!(store.image(ImageId(99)).is_none());
    }

    #[test]
    fn augmented_requires_parent() {
        let store = VisualStore::new();
        let bad = store.add_image(
            meta(),
            ImageOrigin::Augmented {
                parent: ImageId(5),
                op: "flip_h".into(),
            },
            None,
        );
        assert_eq!(bad.unwrap_err(), StorageError::UnknownImage(ImageId(5)));
        let parent = store
            .add_image(meta(), ImageOrigin::Original, None)
            .unwrap();
        let child = store
            .add_image(
                meta(),
                ImageOrigin::Augmented {
                    parent,
                    op: "flip_h".into(),
                },
                None,
            )
            .unwrap();
        assert_eq!(store.augmented_children(parent), vec![child]);
    }

    #[test]
    fn features_keyed_by_kind() {
        let store = VisualStore::new();
        let id = store
            .add_image(meta(), ImageOrigin::Original, None)
            .unwrap();
        store
            .put_feature(id, FeatureKind::Cnn, vec![1.0, 2.0])
            .unwrap();
        store
            .put_feature(id, FeatureKind::ColorHistogram, vec![3.0])
            .unwrap();
        assert_eq!(store.feature(id, FeatureKind::Cnn).unwrap(), vec![1.0, 2.0]);
        assert_eq!(store.feature(id, FeatureKind::SiftBow), None);
        assert_eq!(store.images_with_feature(FeatureKind::Cnn), vec![id]);
        assert!(store
            .put_feature(ImageId(9), FeatureKind::Cnn, vec![])
            .is_err());
    }

    #[test]
    fn arena_handles_refs_and_replacement() {
        let store = VisualStore::new();
        let a = store
            .add_image(meta(), ImageOrigin::Original, None)
            .unwrap();
        let b = store
            .add_image(meta(), ImageOrigin::Original, None)
            .unwrap();
        store
            .put_feature(a, FeatureKind::Cnn, vec![1.0, 2.0])
            .unwrap();
        store
            .put_feature(b, FeatureKind::Cnn, vec![3.0, 4.0])
            .unwrap();

        let ha = store.feature_handle(a, FeatureKind::Cnn).unwrap();
        let hb = store.feature_handle(b, FeatureKind::Cnn).unwrap();
        assert_eq!((ha.dim, ha.row), (2, 0));
        assert_eq!((hb.dim, hb.row), (2, 1));

        // Zero-copy ref sees the same bytes as the cloning getter.
        let r = store.feature_ref(a, FeatureKind::Cnn).unwrap();
        assert_eq!(&*r, &[1.0, 2.0]);

        // A view snapshot resolves issued handles without the lock.
        let view = store.slab_view(FeatureKind::Cnn, 2);
        assert_eq!(view.rows(), 2);
        assert_eq!(view.row(hb.row), &[3.0, 4.0]);

        // Replacement appends a new row and repoints the handle; the
        // old row (and snapshots over it) stay valid.
        store
            .put_feature(a, FeatureKind::Cnn, vec![9.0, 9.0])
            .unwrap();
        let ha2 = store.feature_handle(a, FeatureKind::Cnn).unwrap();
        assert_eq!(ha2.row, 2);
        assert_eq!(store.feature(a, FeatureKind::Cnn).unwrap(), vec![9.0, 9.0]);
        assert_eq!(view.row(ha.row), &[1.0, 2.0]);
        assert_eq!(store.slab_rows(FeatureKind::Cnn, 2), 3);

        // Different dims of the same kind live in separate slabs.
        store
            .put_feature(b, FeatureKind::SiftBow, vec![7.0; 5])
            .unwrap();
        assert_eq!(store.slab_rows(FeatureKind::SiftBow, 5), 1);
        assert_eq!(
            store
                .with_slab(FeatureKind::SiftBow, 5, |slab| slab.row(0).to_vec())
                .unwrap(),
            vec![7.0; 5]
        );
        assert!(store.with_slab(FeatureKind::SiftBow, 9, |_| ()).is_none());

        // Empty vectors round-trip without a slab row.
        store
            .put_feature(b, FeatureKind::ColorHistogram, vec![])
            .unwrap();
        assert_eq!(
            store.feature(b, FeatureKind::ColorHistogram).unwrap(),
            Vec::<f32>::new()
        );
        assert!(store
            .feature_ref(b, FeatureKind::ColorHistogram)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn label_counts_track_annotations_and_snapshots() {
        let store = VisualStore::new();
        let cls = store
            .register_scheme("c", vec!["a".into(), "b".into()])
            .unwrap();
        let src = AnnotationSource::Human(UserId(1));
        for i in 0..5 {
            let img = store
                .add_image(meta(), ImageOrigin::Original, None)
                .unwrap();
            store.annotate(img, cls, i % 2, 1.0, src, None).unwrap();
        }
        assert_eq!(store.label_count(cls, 0), 3);
        assert_eq!(store.label_count(cls, 1), 2);
        assert_eq!(store.label_count(cls, 9), 0);
        let restored = VisualStore::from_snapshot(store.snapshot()).unwrap();
        assert_eq!(restored.label_count(cls, 0), 3);
        assert_eq!(restored.label_count(cls, 1), 2);
    }

    #[test]
    fn scheme_registration_and_lookup() {
        let store = VisualStore::new();
        let id = store
            .register_scheme("street-cleanliness", vec!["clean".into(), "dirty".into()])
            .unwrap();
        assert_eq!(store.scheme(id).unwrap().labels.len(), 2);
        assert_eq!(store.scheme_by_name("street-cleanliness").unwrap().id, id);
        let dup = store.register_scheme("street-cleanliness", vec!["x".into()]);
        assert!(matches!(dup, Err(StorageError::DuplicateScheme(_))));
        assert_eq!(store.schemes().len(), 1);
    }

    #[test]
    fn annotate_validates_foreign_keys() {
        let store = VisualStore::new();
        let img = store
            .add_image(meta(), ImageOrigin::Original, None)
            .unwrap();
        let cls = store
            .register_scheme("c", vec!["a".into(), "b".into()])
            .unwrap();
        let src = AnnotationSource::Human(UserId(1));
        assert!(matches!(
            store.annotate(ImageId(50), cls, 0, 1.0, src, None),
            Err(StorageError::UnknownImage(_))
        ));
        assert!(matches!(
            store.annotate(img, ClassificationId(50), 0, 1.0, src, None),
            Err(StorageError::UnknownClassification(_))
        ));
        assert!(matches!(
            store.annotate(img, cls, 7, 1.0, src, None),
            Err(StorageError::LabelOutOfRange { .. })
        ));
        let ann = store.annotate(img, cls, 1, 0.9, src, None).unwrap();
        assert_eq!(store.annotations_of(img).len(), 1);
        assert_eq!(store.annotations_of(img)[0].id, ann);
        assert_eq!(store.annotation_count(), 1);
    }

    #[test]
    fn annotations_with_label_filters() {
        let store = VisualStore::new();
        let cls = store
            .register_scheme("c", vec!["a".into(), "b".into()])
            .unwrap();
        let src = AnnotationSource::Human(UserId(1));
        let mut b_images = Vec::new();
        for i in 0..6 {
            let img = store
                .add_image(meta(), ImageOrigin::Original, None)
                .unwrap();
            let label = i % 2;
            store.annotate(img, cls, label, 1.0, src, None).unwrap();
            if label == 1 {
                b_images.push(img);
            }
        }
        let hits = store.annotations_with_label(cls, 1);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|a| b_images.contains(&a.image)));
    }

    #[test]
    fn snapshot_roundtrip() {
        let store = VisualStore::new();
        let img = store
            .add_image(meta(), ImageOrigin::Original, Some(tiny_image()))
            .unwrap();
        let cls = store.register_scheme("c", vec!["a".into()]).unwrap();
        store
            .put_feature(img, FeatureKind::Cnn, vec![0.5; 4])
            .unwrap();
        store
            .annotate(img, cls, 0, 1.0, AnnotationSource::Human(UserId(1)), None)
            .unwrap();
        let snap = store.snapshot();
        let restored = VisualStore::from_snapshot(snap).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored.pixels(img).unwrap(), tiny_image());
        assert_eq!(
            restored.feature(img, FeatureKind::Cnn).unwrap(),
            vec![0.5; 4]
        );
        assert_eq!(restored.annotations_of(img).len(), 1);
        // Id allocation continues past restored rows.
        let next = restored
            .add_image(meta(), ImageOrigin::Original, None)
            .unwrap();
        assert!(next.raw() > img.raw());
    }

    #[test]
    fn from_snapshot_rejects_inconsistencies() {
        let store = VisualStore::new();
        let img = store
            .add_image(meta(), ImageOrigin::Original, Some(tiny_image()))
            .unwrap();
        let cls = store
            .register_scheme("c", vec!["a".into(), "b".into()])
            .unwrap();
        store
            .annotate(img, cls, 0, 0.9, AnnotationSource::Human(UserId(1)), None)
            .unwrap();
        let good = store.snapshot();
        assert!(VisualStore::from_snapshot(good.clone()).is_ok());

        // Blob byte count disagreeing with declared dimensions.
        let mut bad = good.clone();
        bad.blobs[0].3.pop();
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::BlobShape { .. })
        ));

        // Zero-sized blob dimensions.
        let mut bad = good.clone();
        bad.blobs[0].1 = 0;
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::BlobShape { .. })
        ));

        // Blob, feature, and annotation naming a missing image.
        let mut bad = good.clone();
        bad.blobs[0].0 = ImageId(77);
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::DanglingBlob(ImageId(77)))
        ));
        let mut bad = good.clone();
        bad.features
            .push((ImageId(77), FeatureKind::Cnn, vec![1.0]));
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::DanglingFeature(ImageId(77)))
        ));
        let mut bad = good.clone();
        bad.annotations[0].image = ImageId(77);
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::DanglingAnnotationImage { .. })
        ));

        // Annotation naming a missing scheme or an out-of-range label.
        let mut bad = good.clone();
        bad.annotations[0].classification = ClassificationId(77);
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::DanglingAnnotationScheme { .. })
        ));
        let mut bad = good.clone();
        bad.annotations[0].label = 9;
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::LabelOutOfRange { .. })
        ));
        let mut bad = good.clone();
        bad.annotations[0].confidence = 1.5;
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::BadConfidence { .. })
        ));

        // Duplicate ids and degenerate vocabularies.
        let mut bad = good.clone();
        bad.images.push(bad.images[0].clone());
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::DuplicateImage(_))
        ));
        let mut bad = good.clone();
        bad.schemes.push(bad.schemes[0].clone());
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::DuplicateSchemeId(_))
        ));
        let mut bad = good.clone();
        bad.schemes[0].labels = vec!["a".into(), "a".into()];
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::BadScheme(_))
        ));
        let mut bad = good.clone();
        bad.annotations.push(bad.annotations[0].clone());
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::DuplicateAnnotation(_))
        ));
    }

    #[test]
    fn peeked_ids_match_assigned_ids() {
        let store = VisualStore::new();
        let peek_img = store.peek_next_image_id();
        let img = store
            .add_image(meta(), ImageOrigin::Original, None)
            .unwrap();
        assert_eq!(peek_img, img);
        let peek_cls = store.peek_next_classification_id();
        let cls = store.register_scheme("c", vec!["a".into()]).unwrap();
        assert_eq!(peek_cls, cls);
        let peek_ann = store.peek_next_annotation_id();
        let ann = store
            .annotate(img, cls, 0, 1.0, AnnotationSource::Human(UserId(1)), None)
            .unwrap();
        assert_eq!(peek_ann, ann);
        // Peeks advance with the store.
        assert_eq!(store.peek_next_image_id(), ImageId(img.raw() + 1));
    }

    #[test]
    fn ingest_upload_dedups_by_marker() {
        let store = VisualStore::new();
        let features = vec![(FeatureKind::Cnn, vec![1.0, 2.0])];
        let (id, replayed) = store
            .ingest_upload(
                "edge3-s41",
                meta(),
                ImageOrigin::Original,
                Some(tiny_image()),
                &features,
            )
            .unwrap();
        assert!(!replayed);
        assert_eq!(store.len(), 1);
        assert_eq!(store.upload_marker("edge3-s41"), Some(id));
        assert_eq!(store.feature(id, FeatureKind::Cnn).unwrap(), vec![1.0, 2.0]);

        // A retry of the same upload is acknowledged without writing.
        let (again, replayed) = store
            .ingest_upload(
                "edge3-s41",
                meta(),
                ImageOrigin::Original,
                Some(tiny_image()),
                &features,
            )
            .unwrap();
        assert!(replayed);
        assert_eq!(again, id);
        assert_eq!(store.len(), 1);
        assert_eq!(store.upload_marker_count(), 1);

        // A different marker is a fresh upload.
        let (other, replayed) = store
            .ingest_upload("edge3-s42", meta(), ImageOrigin::Original, None, &[])
            .unwrap();
        assert!(!replayed);
        assert_ne!(other, id);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn ingest_upload_validates_augmented_parent() {
        let store = VisualStore::new();
        let bad = store.ingest_upload(
            "k",
            meta(),
            ImageOrigin::Augmented {
                parent: ImageId(9),
                op: "flip_h".into(),
            },
            None,
            &[],
        );
        assert_eq!(bad.unwrap_err(), StorageError::UnknownImage(ImageId(9)));
        assert!(store.upload_marker("k").is_none(), "no marker on failure");
    }

    #[test]
    fn upload_marker_table_is_bounded_with_oldest_first_eviction() {
        let store = VisualStore::new();
        for i in 0..=UPLOAD_MARKER_CAPACITY {
            store
                .ingest_upload(&format!("m{i}"), meta(), ImageOrigin::Original, None, &[])
                .unwrap();
        }
        assert_eq!(store.upload_marker_count(), UPLOAD_MARKER_CAPACITY);
        assert!(
            store.upload_marker("m0").is_none(),
            "oldest marker evicted first"
        );
        assert!(store.upload_marker("m1").is_some());
        assert!(store
            .upload_marker(&format!("m{UPLOAD_MARKER_CAPACITY}"))
            .is_some());
        // Images themselves are never evicted, only dedup markers.
        assert_eq!(store.len(), UPLOAD_MARKER_CAPACITY + 1);
    }

    #[test]
    fn markers_roundtrip_through_snapshots_and_bad_ones_are_rejected() {
        let store = VisualStore::new();
        let (id, _) = store
            .ingest_upload("edge0-s1", meta(), ImageOrigin::Original, None, &[])
            .unwrap();
        let good = store.snapshot();
        assert_eq!(good.markers, vec![("edge0-s1".to_string(), id, 0)]);

        let restored = VisualStore::from_snapshot(good.clone()).unwrap();
        assert_eq!(restored.upload_marker("edge0-s1"), Some(id));
        // The sequence counter resumes past restored markers, so new
        // markers still evict in insertion order.
        let (_, replayed) = restored
            .ingest_upload("edge0-s1", meta(), ImageOrigin::Original, None, &[])
            .unwrap();
        assert!(replayed);
        assert_eq!(restored.snapshot(), good);

        let mut bad = good.clone();
        bad.markers[0].1 = ImageId(77);
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::DanglingMarker { .. })
        ));
        let mut bad = good.clone();
        bad.markers.push(bad.markers[0].clone());
        assert!(matches!(
            VisualStore::from_snapshot(bad),
            Err(SnapshotError::DuplicateMarker(_))
        ));
    }

    #[test]
    fn concurrent_ingest_is_safe() {
        use std::sync::Arc;
        let store = Arc::new(VisualStore::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    s.add_image(meta(), ImageOrigin::Original, None).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 200);
        // Ids are unique.
        let ids = store.image_ids();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
    }
}
