//! Append-only write-ahead log for [`crate::store::VisualStore`]
//! mutations.
//!
//! Every mutation is journaled — and fsynced — *before* it is applied
//! to the in-memory store, so an operation that returned `Ok` is
//! guaranteed to survive a crash. Records are framed as
//!
//! ```text
//! <len> <crc32> <payload>\n
//! ```
//!
//! where `len` is the payload's byte length in decimal, `crc32` is the
//! IEEE CRC-32 of the payload bytes as eight lowercase hex digits, and
//! `payload` is the op as one JSON object rendered by
//! [`crate::codec`]. The framing makes a torn tail detectable without
//! trusting the payload: a crash mid-append leaves a record whose
//! length, checksum, or terminator doesn't line up, and recovery
//! truncates the file back to the last intact record
//! ([`Wal::open_recover`]).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tvdp_vision::FeatureKind;

use crate::annotation::Annotation;
use crate::codec::{self, Value};
use crate::ids::{ClassificationId, ImageId};
use crate::record::{ImageMeta, ImageOrigin};

/// Errors from appending to or recovering a WAL.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record with an intact checksum carried an undecodable payload
    /// — version skew or a buggy writer, not a torn write; recovery
    /// refuses rather than silently dropping acknowledged operations.
    Corrupt {
        /// 0-based index of the bad record.
        record: usize,
        /// Decoder message.
        message: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt { record, message } => {
                write!(f, "corrupt wal record {record}: {message}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One journaled store mutation. Ops carry the ids the store assigned
/// (journaling happens under the mutation lock, after peeking the next
/// id), so replay can verify it reproduces the exact same rows.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// [`crate::store::VisualStore::add_image`] with its assigned id.
    AddImage {
        /// Id the store assigned.
        id: ImageId,
        /// Upload-time metadata.
        meta: ImageMeta,
        /// Provenance.
        origin: ImageOrigin,
        /// Pixel payload as `(width, height, raw RGB bytes)`, if any.
        pixels: Option<(usize, usize, Vec<u8>)>,
    },
    /// [`crate::store::VisualStore::put_feature`].
    PutFeature {
        /// Image the vector belongs to.
        image: ImageId,
        /// Feature family.
        kind: FeatureKind,
        /// The vector.
        vector: Vec<f32>,
    },
    /// [`crate::store::VisualStore::register_scheme`] with its assigned
    /// id.
    RegisterScheme {
        /// Id the store assigned.
        id: ClassificationId,
        /// Unique scheme name.
        name: String,
        /// Label vocabulary.
        labels: Vec<String>,
    },
    /// [`crate::store::VisualStore::annotate`]; the annotation carries
    /// its assigned id.
    Annotate(Annotation),
    /// [`crate::store::VisualStore::ingest_upload`] — one atomic
    /// composite record: the image row, its feature vectors, and the
    /// upload's idempotency marker land together or not at all. The
    /// WAL's all-or-nothing framing of this record is what makes an
    /// acked-once upload ingested-exactly-once across crashes: a torn
    /// append leaves neither the rows nor the marker, so the client's
    /// retry re-ingests cleanly; an intact record replays both, so the
    /// retry deduplicates.
    IngestUpload {
        /// Idempotency key the uploading client attached.
        marker: String,
        /// Id the store assigned.
        id: ImageId,
        /// Upload-time metadata.
        meta: ImageMeta,
        /// Provenance.
        origin: ImageOrigin,
        /// Pixel payload as `(width, height, raw RGB bytes)`, if any.
        pixels: Option<(usize, usize, Vec<u8>)>,
        /// Feature vectors uploaded alongside the image.
        features: Vec<(FeatureKind, Vec<f32>)>,
    },
}

impl WalOp {
    /// Renders the op as its JSON payload (unframed).
    pub fn encode(&self) -> String {
        let v = match self {
            WalOp::AddImage {
                id,
                meta,
                origin,
                pixels,
            } => {
                let pixels = match pixels {
                    None => Value::Null,
                    Some((w, h, raw)) => Value::Obj(vec![
                        ("width".into(), Value::num(*w)),
                        ("height".into(), Value::num(*h)),
                        ("raw".into(), Value::str(codec::hex_encode(raw))),
                    ]),
                };
                tag(
                    "AddImage",
                    Value::Obj(vec![
                        ("id".into(), Value::num(id.raw())),
                        ("meta".into(), codec::encode_meta(meta)),
                        ("origin".into(), codec::encode_origin(origin)),
                        ("pixels".into(), pixels),
                    ]),
                )
            }
            WalOp::PutFeature {
                image,
                kind,
                vector,
            } => tag(
                "PutFeature",
                Value::Obj(vec![
                    ("image".into(), Value::num(image.raw())),
                    ("kind".into(), codec::encode_kind(*kind)),
                    ("vector".into(), codec::encode_vector(vector)),
                ]),
            ),
            WalOp::RegisterScheme { id, name, labels } => tag(
                "RegisterScheme",
                Value::Obj(vec![
                    ("id".into(), Value::num(id.raw())),
                    ("name".into(), Value::str(name.clone())),
                    (
                        "labels".into(),
                        Value::Arr(labels.iter().map(|l| Value::str(l.clone())).collect()),
                    ),
                ]),
            ),
            WalOp::Annotate(a) => tag("Annotate", codec::encode_annotation(a)),
            WalOp::IngestUpload {
                marker,
                id,
                meta,
                origin,
                pixels,
                features,
            } => {
                let pixels = match pixels {
                    None => Value::Null,
                    Some((w, h, raw)) => Value::Obj(vec![
                        ("width".into(), Value::num(*w)),
                        ("height".into(), Value::num(*h)),
                        ("raw".into(), Value::str(codec::hex_encode(raw))),
                    ]),
                };
                let features = Value::Arr(
                    features
                        .iter()
                        .map(|(kind, vector)| {
                            Value::Obj(vec![
                                ("kind".into(), codec::encode_kind(*kind)),
                                ("vector".into(), codec::encode_vector(vector)),
                            ])
                        })
                        .collect(),
                );
                tag(
                    "IngestUpload",
                    Value::Obj(vec![
                        ("marker".into(), Value::str(marker.clone())),
                        ("id".into(), Value::num(id.raw())),
                        ("meta".into(), codec::encode_meta(meta)),
                        ("origin".into(), codec::encode_origin(origin)),
                        ("pixels".into(), pixels),
                        ("features".into(), features),
                    ]),
                )
            }
        };
        v.render()
    }

    /// Decodes an op from its JSON payload.
    pub fn decode(payload: &str) -> Result<WalOp, String> {
        let v = codec::parse(payload)?;
        let (name, body) = match &v {
            Value::Obj(fields) if fields.len() == 1 => (&fields[0].0, &fields[0].1),
            _ => return Err("expected a single-key op object".into()),
        };
        match name.as_str() {
            "AddImage" => {
                let pixels = match codec::field(body, "pixels")? {
                    Value::Null => None,
                    p => {
                        let raw = codec::hex_decode(codec::str_field(p, "raw")?)?;
                        Some((
                            codec::num_field(p, "width")?,
                            codec::num_field(p, "height")?,
                            raw,
                        ))
                    }
                };
                Ok(WalOp::AddImage {
                    id: ImageId(codec::num_field(body, "id")?),
                    meta: codec::decode_meta(codec::field(body, "meta")?)?,
                    origin: codec::decode_origin(codec::field(body, "origin")?)?,
                    pixels,
                })
            }
            "PutFeature" => Ok(WalOp::PutFeature {
                image: ImageId(codec::num_field(body, "image")?),
                kind: codec::decode_kind(codec::field(body, "kind")?)?,
                vector: codec::decode_vector(codec::field(body, "vector")?)?,
            }),
            "RegisterScheme" => {
                let labels = codec::arr_field(body, "labels")?
                    .iter()
                    .map(|l| match l {
                        Value::Str(s) => Ok(s.clone()),
                        _ => Err("labels: expected strings".to_string()),
                    })
                    .collect::<Result<_, _>>()?;
                Ok(WalOp::RegisterScheme {
                    id: ClassificationId(codec::num_field(body, "id")?),
                    name: codec::str_field(body, "name")?.to_string(),
                    labels,
                })
            }
            "Annotate" => Ok(WalOp::Annotate(codec::decode_annotation(body)?)),
            "IngestUpload" => {
                let pixels = match codec::field(body, "pixels")? {
                    Value::Null => None,
                    p => {
                        let raw = codec::hex_decode(codec::str_field(p, "raw")?)?;
                        Some((
                            codec::num_field(p, "width")?,
                            codec::num_field(p, "height")?,
                            raw,
                        ))
                    }
                };
                let features = codec::arr_field(body, "features")?
                    .iter()
                    .map(|entry| {
                        Ok((
                            codec::decode_kind(codec::field(entry, "kind")?)?,
                            codec::decode_vector(codec::field(entry, "vector")?)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(WalOp::IngestUpload {
                    marker: codec::str_field(body, "marker")?.to_string(),
                    id: ImageId(codec::num_field(body, "id")?),
                    meta: codec::decode_meta(codec::field(body, "meta")?)?,
                    origin: codec::decode_origin(codec::field(body, "origin")?)?,
                    pixels,
                    features,
                })
            }
            other => Err(format!("unknown op tag `{other}`")),
        }
    }
}

fn tag(name: &str, payload: Value) -> Value {
    Value::Obj(vec![(name.to_string(), payload)])
}

/// IEEE CRC-32 (the polynomial used by zip/gzip/PNG), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Frames one op payload as a full WAL record
/// (`<len> <crc32> <payload>\n`). Exposed so fault-injection tests can
/// materialize arbitrary crash prefixes of an append.
pub fn frame(payload: &str) -> String {
    format!(
        "{} {:08x} {payload}\n",
        payload.len(),
        crc32(payload.as_bytes())
    )
}

/// Result of scanning raw WAL bytes: the intact records and where they
/// end.
struct Scan {
    ops: Vec<WalOp>,
    /// Byte offset just past the last intact record; everything after
    /// is a torn tail.
    valid_len: usize,
}

/// Scans raw WAL bytes, stopping at the first torn record. A record
/// whose checksum verifies but whose payload doesn't decode is a hard
/// error (see [`WalError::Corrupt`]).
fn scan(bytes: &[u8]) -> Result<Scan, WalError> {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let start = pos;
        let torn = |ops: Vec<WalOp>| Scan {
            ops,
            valid_len: start,
        };
        // <len> as ASCII decimal, capped well below overflow; a longer
        // length prefix is torn garbage, not a real record.
        let mut len: usize = 0;
        let mut digits = 0;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() && digits < 12 {
            len = len * 10 + (bytes[pos] - b'0') as usize;
            digits += 1;
            pos += 1;
        }
        if digits == 0 || digits >= 12 || bytes.get(pos) != Some(&b' ') {
            return Ok(torn(ops));
        }
        // 8 hex digits, a space, `len` payload bytes, a newline.
        let crc_end = pos + 9;
        let payload_start = crc_end + 1;
        let Some(payload_end) = payload_start.checked_add(len) else {
            return Ok(torn(ops));
        };
        if payload_end >= bytes.len()
            || bytes.get(crc_end) != Some(&b' ')
            || bytes[payload_end] != b'\n'
        {
            return Ok(torn(ops));
        }
        let crc_claimed = std::str::from_utf8(&bytes[pos + 1..crc_end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        let payload = &bytes[payload_start..payload_end];
        match crc_claimed {
            Some(c) if crc32(payload) == c => {}
            _ => return Ok(torn(ops)),
        }
        let text = std::str::from_utf8(payload).map_err(|_| WalError::Corrupt {
            record: ops.len(),
            message: "non-utf8 payload with intact checksum".into(),
        })?;
        let op = WalOp::decode(text).map_err(|message| WalError::Corrupt {
            record: ops.len(),
            message,
        })?;
        ops.push(op);
        pos = payload_end + 1;
    }
    Ok(Scan {
        ops,
        valid_len: pos,
    })
}

/// An open write-ahead log. Appends go straight to disk and are
/// fsynced before returning, so an `Ok` from [`Wal::append`] means the
/// op survives a crash.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Bytes known to hold only intact, fsynced records. A failed
    /// append may leave torn bytes past this mark;
    /// [`Wal::repair_tail`] truncates back to it.
    valid_len: u64,
    /// Optional injected write-fault script (chaos tests only).
    fault: Option<Arc<crate::fault::WriteFaultPlan>>,
}

impl Wal {
    /// Creates a fresh, empty WAL at `path` (truncating any existing
    /// file) and fsyncs it plus its parent directory so the file
    /// itself survives a crash.
    pub fn create(path: &Path) -> Result<Wal, WalError> {
        let file = File::create(path)?;
        file.sync_all()?;
        crate::persist::fsync_parent(path)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            valid_len: 0,
            fault: None,
        })
    }

    /// Opens the WAL at `path` (creating it empty if absent), recovers
    /// every intact record, and truncates any torn tail left by a
    /// crash mid-append. Returns the log handle positioned for
    /// appending, the recovered ops in append order, and how many torn
    /// bytes were dropped.
    pub fn open_recover(path: &Path) -> Result<(Wal, Vec<WalOp>, u64), WalError> {
        if !path.exists() {
            let wal = Wal::create(path)?;
            return Ok((wal, Vec::new(), 0));
        }
        let bytes = std::fs::read(path)?;
        let scanned = scan(&bytes)?;
        let torn = (bytes.len() - scanned.valid_len) as u64;
        if torn > 0 {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(scanned.valid_len as u64)?;
            file.sync_all()?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                valid_len: scanned.valid_len as u64,
                fault: None,
            },
            scanned.ops,
            torn,
        ))
    }

    /// Installs (or removes) an injected write-fault script. Every
    /// later [`Wal::append`] / [`Wal::append_batch`] consults the plan
    /// before touching the file; an armed plan makes the write leave
    /// only its torn prefix on disk and fail with the plan's error.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<crate::fault::WriteFaultPlan>>) {
        self.fault = plan;
    }

    /// One guarded physical append: fault plan first, then
    /// `write_all` + `sync_data`, advancing the valid-byte mark only
    /// on full success.
    fn guarded_write(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        if let Some(plan) = &self.fault {
            if let Some((prefix, e)) = plan.intercept(bytes.len()) {
                // The torn prefix really lands on disk (and is synced)
                // so recovery sees exactly what a crashed or
                // out-of-space append would have left behind.
                if prefix > 0 {
                    self.file.write_all(&bytes[..prefix])?;
                    self.file.sync_data()?;
                }
                return Err(WalError::Io(e));
            }
        }
        self.file.write_all(bytes)?;
        self.file.sync_data()?;
        self.valid_len += bytes.len() as u64;
        Ok(())
    }

    /// Truncates any torn bytes a failed append left past the last
    /// intact record and syncs, returning how many bytes were dropped.
    /// After `Ok`, the log is byte-identical to one that never saw the
    /// failed append, and appending may resume.
    pub fn repair_tail(&mut self) -> Result<u64, WalError> {
        let on_disk = self.file.metadata()?.len();
        let torn = on_disk.saturating_sub(self.valid_len);
        if torn > 0 {
            self.file.set_len(self.valid_len)?;
            // A freshly created WAL writes through a plain (non-append)
            // handle whose cursor the torn write advanced; park it back
            // at the truncation point or the next append would leave a
            // NUL gap that recovery reads as a torn tail.
            self.file.seek(SeekFrom::Start(self.valid_len))?;
            self.file.sync_all()?;
        }
        Ok(torn)
    }

    /// Appends one op and fsyncs before returning.
    pub fn append(&mut self, op: &WalOp) -> Result<(), WalError> {
        let record = frame(&op.encode());
        self.guarded_write(record.as_bytes())
    }

    /// Group commit: appends every op as its own framed record but pays
    /// a *single* `write_all` + `sync_data` for the whole batch. On-disk
    /// bytes are identical to `ops.iter().map(append)` — recovery sees
    /// per-op records either way — so a crash mid-batch recovers an
    /// in-order prefix of the batch (all-or-prefix), and an `Ok` return
    /// means every op in the batch survives. An empty batch is a no-op
    /// (no write, no fsync).
    pub fn append_batch(&mut self, ops: &[WalOp]) -> Result<(), WalError> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut buf = String::new();
        for op in ops {
            buf.push_str(&frame(&op.encode()));
        }
        self.guarded_write(buf.as_bytes())
    }

    /// Scans every record of the WAL at `path` without opening it for
    /// appending and without truncating anything: returns the intact
    /// ops plus the torn trailing byte count. Used for *sealed* WAL
    /// segments, which are never written again — a torn tail there is
    /// the caller's decision to reject, not silently repair.
    pub fn read_all(path: &Path) -> Result<(Vec<WalOp>, u64), WalError> {
        let bytes = std::fs::read(path)?;
        let scanned = scan(&bytes)?;
        let torn = (bytes.len() - scanned.valid_len) as u64;
        Ok((scanned.ops, torn))
    }

    /// Current size of the log in bytes.
    pub fn len_bytes(&self) -> Result<u64, WalError> {
        Ok(self.file.metadata()?.len())
    }

    /// The path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::AnnotationSource;
    use crate::ids::{AnnotationId, UserId};
    use tvdp_geo::GeoPoint;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::AddImage {
                id: ImageId(0),
                meta: ImageMeta {
                    uploader: UserId(1),
                    gps: GeoPoint::new(34.0, -118.25),
                    fov: None,
                    captured_at: 100,
                    uploaded_at: 110,
                    keywords: vec!["wal \"quoted\"".into()],
                },
                origin: ImageOrigin::Original,
                pixels: Some((1, 1, vec![7, 8, 9])),
            },
            WalOp::RegisterScheme {
                id: ClassificationId(0),
                name: "c".into(),
                labels: vec!["a".into(), "b".into()],
            },
            WalOp::PutFeature {
                image: ImageId(0),
                kind: FeatureKind::Cnn,
                vector: vec![0.1, -2.5],
            },
            WalOp::Annotate(Annotation {
                id: AnnotationId(0),
                image: ImageId(0),
                classification: ClassificationId(0),
                label: 1,
                confidence: 0.9,
                source: AnnotationSource::Human(UserId(1)),
                region: None,
            }),
            WalOp::IngestUpload {
                marker: "edge7-s13".into(),
                id: ImageId(1),
                meta: ImageMeta {
                    uploader: UserId(2),
                    gps: GeoPoint::new(34.1, -118.2),
                    fov: None,
                    captured_at: 200,
                    uploaded_at: 210,
                    keywords: vec![],
                },
                origin: ImageOrigin::Original,
                pixels: Some((1, 2, vec![1, 2, 3, 4, 5, 6])),
                features: vec![
                    (FeatureKind::Cnn, vec![0.5, -1.5]),
                    (FeatureKind::ColorHistogram, vec![]),
                ],
            },
        ]
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tvdp-wal-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn ops_roundtrip_through_encode_decode() {
        for op in sample_ops() {
            let back = WalOp::decode(&op.encode()).unwrap();
            assert_eq!(back, op);
        }
    }

    #[test]
    fn append_and_recover_roundtrip() {
        let path = temp_path("roundtrip");
        std::fs::remove_file(&path).ok();
        let mut wal = Wal::create(&path).unwrap();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);
        let (_, ops, torn) = Wal::open_recover(&path).unwrap();
        assert_eq!(ops, sample_ops());
        assert_eq!(torn, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncated_at_every_prefix() {
        let ops = sample_ops();
        let mut full = String::new();
        for op in &ops {
            full.push_str(&frame(&op.encode()));
        }
        let path = temp_path("torn");
        for cut in 0..full.len() {
            std::fs::write(&path, &full.as_bytes()[..cut]).unwrap();
            let (_, recovered, _) = Wal::open_recover(&path).unwrap();
            // The recovered prefix is exactly the ops whose full
            // records fit in the cut.
            let mut expect = Vec::new();
            let mut consumed = 0;
            for op in &ops {
                let rec = frame(&op.encode());
                if consumed + rec.len() <= cut {
                    consumed += rec.len();
                    expect.push(op.clone());
                } else {
                    break;
                }
            }
            assert_eq!(recovered, expect, "cut at byte {cut}");
            // After recovery the file holds exactly the intact
            // records.
            assert_eq!(std::fs::metadata(&path).unwrap().len(), consumed as u64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_batch_matches_per_op_bytes_and_recovers() {
        let ops = sample_ops();
        let per_op = temp_path("batch-perop");
        let batched = temp_path("batch-grouped");
        std::fs::remove_file(&per_op).ok();
        std::fs::remove_file(&batched).ok();
        let mut a = Wal::create(&per_op).unwrap();
        for op in &ops {
            a.append(op).unwrap();
        }
        let mut b = Wal::create(&batched).unwrap();
        b.append_batch(&ops).unwrap();
        b.append_batch(&[]).unwrap(); // no-op, no bytes
        drop((a, b));
        assert_eq!(
            std::fs::read(&per_op).unwrap(),
            std::fs::read(&batched).unwrap(),
            "group commit must be byte-identical to per-op appends"
        );
        let (_, recovered, torn) = Wal::open_recover(&batched).unwrap();
        assert_eq!(recovered, ops);
        assert_eq!(torn, 0);
        std::fs::remove_file(&per_op).ok();
        std::fs::remove_file(&batched).ok();
    }

    #[test]
    fn crash_mid_batch_recovers_all_or_prefix() {
        // A torn group-committed batch must recover as an in-order
        // prefix of the batch at every possible crash offset.
        let ops = sample_ops();
        let mut full = String::new();
        let mut boundaries = vec![0usize];
        for op in &ops {
            full.push_str(&frame(&op.encode()));
            boundaries.push(full.len());
        }
        let path = temp_path("batch-torn");
        for cut in 0..=full.len() {
            std::fs::write(&path, &full.as_bytes()[..cut]).unwrap();
            let (_, recovered, _) = Wal::open_recover(&path).unwrap();
            let intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(recovered, ops[..intact].to_vec(), "cut at byte {cut}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bitflip_in_payload_detected_as_torn() {
        let op = &sample_ops()[1];
        let mut bytes = frame(&op.encode()).into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let path = temp_path("bitflip");
        std::fs::write(&path, &bytes).unwrap();
        let (_, ops, torn) = Wal::open_recover(&path).unwrap();
        assert!(ops.is_empty());
        assert!(torn > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovered_wal_accepts_new_appends() {
        let path = temp_path("reappend");
        std::fs::remove_file(&path).ok();
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&sample_ops()[1]).unwrap();
        drop(wal);
        // Simulate a torn append after the good record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"999 deadbeef {\"half").unwrap();
        drop(f);
        let (mut wal, ops, torn) = Wal::open_recover(&path).unwrap();
        assert_eq!(ops.len(), 1);
        assert!(torn > 0);
        wal.append(&sample_ops()[2]).unwrap();
        drop(wal);
        let (_, ops, torn) = Wal::open_recover(&path).unwrap();
        assert_eq!(ops, vec![sample_ops()[1].clone(), sample_ops()[2].clone()]);
        assert_eq!(torn, 0);
        std::fs::remove_file(&path).ok();
    }
}
