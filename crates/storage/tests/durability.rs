//! Crash-safety torture suite: kill every write at every byte offset
//! and prove recovery always lands on the pre- or post-write state.
//!
//! The deterministic fault model: a crash during a write leaves an
//! arbitrary prefix of the intended bytes on disk
//! ([`FailingWriter`]). For each offset, these tests materialize that
//! exact prefix as the on-disk file, reopen the store through full
//! recovery, and compare [`VisualStore::snapshot`] equality against
//! the enumerated legal states — a torn third state is a failure.

use std::io::Write;
use std::path::{Path, PathBuf};

use tvdp_geo::GeoPoint;
use tvdp_storage::fault::FailingWriter;
use tvdp_storage::persist::{self, render_snapshot};
use tvdp_storage::store::Snapshot;
use tvdp_storage::{
    Annotation, AnnotationSource, DurableStore, HealthState, ImageMeta, ImageOrigin, UserId,
    VisualStore, WalOp, WriteFaultPlan,
};
use tvdp_vision::{FeatureKind, Image};

fn meta(keyword: &str) -> ImageMeta {
    ImageMeta {
        uploader: UserId(1),
        gps: GeoPoint::new(34.05, -118.25),
        fov: None,
        captured_at: 100,
        uploaded_at: 110,
        keywords: vec![keyword.into()],
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tvdp-durability-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// Lays a durable-store directory down from raw bytes.
fn write_dir(dir: &Path, snapshot: Option<&[u8]>, wal_epoch: u64, wal: &[u8]) {
    std::fs::remove_dir_all(dir).ok();
    std::fs::create_dir_all(dir).unwrap();
    if let Some(s) = snapshot {
        std::fs::write(dir.join("snapshot.json"), s).unwrap();
    }
    std::fs::write(dir.join(format!("wal-{wal_epoch}.log")), wal).unwrap();
}

/// The crash prefix a write killed after `budget` bytes leaves behind.
fn crash_prefix(bytes: &[u8], budget: usize) -> Vec<u8> {
    let mut w = FailingWriter::new(budget);
    let _ = w.write_all(bytes);
    w.into_written()
}

/// Byte offsets at which each WAL record ends (plus leading 0), parsed
/// from the length prefixes of well-formed records.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut bounds = vec![0];
    let mut pos = 0;
    while pos < bytes.len() {
        let sp = bytes[pos..].iter().position(|&c| c == b' ').unwrap();
        let len: usize = std::str::from_utf8(&bytes[pos..pos + sp])
            .unwrap()
            .parse()
            .unwrap();
        pos += sp + 1 + 8 + 1 + len + 1;
        bounds.push(pos);
    }
    assert_eq!(pos, bytes.len());
    bounds
}

fn base_store() -> VisualStore {
    let store = VisualStore::new();
    let img = store
        .add_image(
            meta("base"),
            ImageOrigin::Original,
            Some(Image::from_fn(1, 1, |_, _| [10, 20, 30])),
        )
        .unwrap();
    let cls = store
        .register_scheme("cleanliness", vec!["clean".into(), "dirty".into()])
        .unwrap();
    store
        .put_feature(img, FeatureKind::ColorHistogram, vec![0.5, 0.25, 0.125])
        .unwrap();
    store
        .annotate(img, cls, 0, 0.9, AnnotationSource::Human(UserId(1)), None)
        .unwrap();
    store
}

/// Replays a scripted mutation sequence against a fresh durable dir
/// seeded with the base snapshot, returning the WAL bytes it produced
/// and the store state after each op (index 0 = pre-mutation state).
fn scripted_mutations(scratch: &Path) -> (Vec<u8>, Vec<Snapshot>) {
    let base = base_store().snapshot();
    write_dir(scratch, Some(render_snapshot(&base, 0).as_bytes()), 0, b"");
    let (ds, _) = DurableStore::open(scratch).unwrap();
    let mut states = vec![ds.store().snapshot()];
    assert_eq!(states[0], base);

    let img = ds
        .add_image(
            meta("wal-born"),
            ImageOrigin::Original,
            Some(Image::from_fn(1, 1, |_, _| [1, 2, 3])),
        )
        .unwrap();
    states.push(ds.store().snapshot());
    ds.put_feature(img, FeatureKind::Cnn, vec![0.1, -2.5])
        .unwrap();
    states.push(ds.store().snapshot());
    let cls = ds
        .register_scheme("graffiti", vec!["none".into(), "tagged".into()])
        .unwrap();
    states.push(ds.store().snapshot());
    ds.annotate(img, cls, 1, 0.7, AnnotationSource::Human(UserId(2)), None)
        .unwrap();
    states.push(ds.store().snapshot());

    let wal_bytes = std::fs::read(scratch.join("wal-0.log")).unwrap();
    (wal_bytes, states)
}

#[test]
fn save_killed_at_every_offset_preserves_the_old_snapshot() {
    let old = base_store().snapshot();
    let old_bytes = render_snapshot(&old, 0);

    // The new state a crashed save was trying to persist.
    let store = VisualStore::from_snapshot(old.clone()).unwrap();
    store
        .add_image(meta("new"), ImageOrigin::Original, None)
        .unwrap();
    let new = store.snapshot();
    let new_bytes = render_snapshot(&new, 0);

    let dir = temp_dir("save-torture");
    for cut in 0..=new_bytes.len() {
        // Crash mid-staging: the real snapshot is untouched, the
        // staging file holds whatever prefix made it to disk.
        write_dir(&dir, Some(old_bytes.as_bytes()), 0, b"");
        std::fs::write(
            persist::staging_path(&dir.join("snapshot.json")).unwrap(),
            crash_prefix(new_bytes.as_bytes(), cut),
        )
        .unwrap();
        let (ds, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(ds.store().snapshot(), old, "staging cut at byte {cut}");
        assert!(report.debris_removed >= 1);
    }

    // Crash after the rename committed: the new snapshot is complete.
    write_dir(&dir, Some(new_bytes.as_bytes()), 0, b"");
    let (ds, _) = DurableStore::open(&dir).unwrap();
    assert_eq!(ds.store().snapshot(), new);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_append_killed_at_every_offset_is_pre_or_post_never_torn() {
    let scratch = temp_dir("wal-torture-scratch");
    let (wal_bytes, states) = scripted_mutations(&scratch);
    std::fs::remove_dir_all(&scratch).ok();
    let bounds = record_boundaries(&wal_bytes);
    assert_eq!(bounds.len(), states.len());

    let base_bytes = render_snapshot(&states[0], 0);
    let dir = temp_dir("wal-torture");
    for cut in 0..=wal_bytes.len() {
        write_dir(
            &dir,
            Some(base_bytes.as_bytes()),
            0,
            &crash_prefix(&wal_bytes, cut),
        );
        let (ds, report) = DurableStore::open(&dir).unwrap();
        // The store must equal the state after the last op whose
        // record fully made it to disk — nothing in between.
        let intact = bounds.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(
            ds.store().snapshot(),
            states[intact],
            "wal cut at byte {cut}: expected state after {intact} op(s)"
        );
        assert_eq!(report.replayed_ops, intact);
        if bounds.binary_search(&cut).is_err() {
            assert!(report.torn_bytes > 0, "cut at byte {cut} should be torn");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journaled_mutation_that_returned_ok_survives_reopen() {
    let dir = temp_dir("acked");
    let (ds, _) = DurableStore::open(&dir).unwrap();
    // After each acknowledged mutation, a crash (drop without
    // compaction or any explicit flush) must not lose it.
    let img = ds
        .add_image(
            meta("acked"),
            ImageOrigin::Original,
            Some(Image::from_fn(1, 1, |_, _| [9, 9, 9])),
        )
        .unwrap();
    let after_add = ds.store().snapshot();
    drop(ds);
    let (ds, _) = DurableStore::open(&dir).unwrap();
    assert_eq!(ds.store().snapshot(), after_add);

    let cls = ds
        .register_scheme("acked-scheme", vec!["yes".into(), "no".into()])
        .unwrap();
    ds.put_feature(img, FeatureKind::SiftBow, vec![1.0; 8])
        .unwrap();
    ds.annotate(img, cls, 0, 1.0, AnnotationSource::Human(UserId(3)), None)
        .unwrap();
    let after_all = ds.store().snapshot();
    drop(ds);
    let (ds, _) = DurableStore::open(&dir).unwrap();
    assert_eq!(ds.store().snapshot(), after_all);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_plus_wal_replay_equals_live_store() {
    let dir = temp_dir("replay-equality");
    let (ds, _) = DurableStore::open(&dir).unwrap();
    let img = ds
        .add_image(
            meta("live"),
            ImageOrigin::Original,
            Some(Image::from_fn(2, 3, |x, y| [x as u8, y as u8, 7])),
        )
        .unwrap();
    let cls = ds
        .register_scheme("lighting", vec!["lit".into(), "dark".into()])
        .unwrap();
    ds.compact().unwrap();
    // Post-compaction mutations live only in the WAL.
    let child = ds
        .add_image(
            meta("child"),
            ImageOrigin::Augmented {
                parent: img,
                op: "flip_h".into(),
            },
            None,
        )
        .unwrap();
    ds.put_feature(child, FeatureKind::Cnn, vec![0.25; 4])
        .unwrap();
    ds.annotate(child, cls, 1, 0.6, AnnotationSource::Human(UserId(1)), None)
        .unwrap();
    let live = ds.store().snapshot();
    drop(ds);

    let (reopened, report) = DurableStore::open(&dir).unwrap();
    assert_eq!(report.replayed_ops, 3);
    assert_eq!(reopened.store().snapshot(), live);
    // Ids keep advancing from where the live store left off.
    let next = reopened
        .add_image(meta("next"), ImageOrigin::Original, None)
        .unwrap();
    assert!(next.raw() > child.raw());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_preserves_state_and_shrinks_the_log() {
    let dir = temp_dir("compaction");
    let (ds, _) = DurableStore::open(&dir).unwrap();
    for i in 0..8 {
        let img = ds
            .add_image(
                meta(&format!("img-{i}")),
                ImageOrigin::Original,
                Some(Image::from_fn(4, 4, |x, y| [x as u8, y as u8, i])),
            )
            .unwrap();
        ds.put_feature(img, FeatureKind::Cnn, vec![f32::from(i); 16])
            .unwrap();
    }
    let live = ds.store().snapshot();
    let wal_before = ds.wal_bytes().unwrap();
    let report = ds.compact().unwrap();
    assert_eq!(report.wal_bytes_before, wal_before);
    assert!(wal_before > 0);
    assert_eq!(ds.wal_bytes().unwrap(), 0);
    assert_eq!(ds.store().snapshot(), live);
    drop(ds);
    let (reopened, recovery) = DurableStore::open(&dir).unwrap();
    assert_eq!(recovery.epoch, 1);
    assert_eq!(recovery.replayed_ops, 0);
    assert_eq!(reopened.store().snapshot(), live);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_crash_windows_never_lose_or_double_apply() {
    // Reconstruct the three crash windows of an incremental compaction
    // by hand and check each recovers to exactly the live pre-crash
    // state under the epoch protocol (snapshot base B => replay every
    // segment with epoch >= B, ascending).
    let scratch = temp_dir("compact-crash-scratch");
    let (wal_bytes, states) = scripted_mutations(&scratch);
    std::fs::remove_dir_all(&scratch).ok();
    let base = &states[0];
    let live = states.last().unwrap();
    let base_bytes = render_snapshot(base, 0);
    let live_bytes_epoch1 = render_snapshot(live, 1);

    let dir = temp_dir("compact-crash");

    // Window 1: live segment sealed and the next epoch's WAL created,
    // snapshot not yet published. Both segments are >= the old base, so
    // the sealed tier replays and nothing is lost.
    write_dir(&dir, Some(base_bytes.as_bytes()), 0, &wal_bytes);
    std::fs::write(dir.join("wal-1.log"), b"").unwrap();
    let (ds, report) = DurableStore::open(&dir).unwrap();
    assert_eq!(ds.store().snapshot(), *live);
    assert_eq!(report.epoch, 1);
    assert_eq!(report.replayed_ops, states.len() - 1);
    assert_eq!(report.debris_removed, 0);
    drop(ds);

    // Window 2: snapshot published at base 1, folded segment not yet
    // removed. Replaying the folded segment here would double-apply —
    // its epoch is below the base, so it is swept instead.
    write_dir(&dir, Some(live_bytes_epoch1.as_bytes()), 1, b"");
    std::fs::write(dir.join("wal-0.log"), &wal_bytes).unwrap();
    let (ds, report) = DurableStore::open(&dir).unwrap();
    assert_eq!(ds.store().snapshot(), *live);
    assert_eq!(report.epoch, 1);
    assert_eq!(report.replayed_ops, 0);
    assert_eq!(report.debris_removed, 1); // the superseded wal-0.log
    drop(ds);

    // Window 3: crash mid-publish — staging file partially written,
    // both the sealed segment and the old snapshot intact.
    write_dir(&dir, Some(base_bytes.as_bytes()), 0, &wal_bytes);
    std::fs::write(
        persist::staging_path(&dir.join("snapshot.json")).unwrap(),
        crash_prefix(live_bytes_epoch1.as_bytes(), live_bytes_epoch1.len() / 2),
    )
    .unwrap();
    std::fs::write(dir.join("wal-1.log"), b"").unwrap();
    let (ds, report) = DurableStore::open(&dir).unwrap();
    assert_eq!(ds.store().snapshot(), *live);
    assert_eq!(report.epoch, 1);
    assert_eq!(report.replayed_ops, states.len() - 1);
    assert_eq!(report.debris_removed, 1); // the torn staging file
    drop(ds);

    std::fs::remove_dir_all(&dir).ok();
}

/// The scripted ops of [`scripted_mutations`] as explicit-id
/// [`WalOp`]s, for journaling through the group-commit path.
fn scripted_batch(ds: &DurableStore) -> Vec<WalOp> {
    let img = ds.store().peek_next_image_id();
    let cls = ds.store().peek_next_classification_id();
    let ann = ds.store().peek_next_annotation_id();
    vec![
        WalOp::AddImage {
            id: img,
            meta: meta("wal-born"),
            origin: ImageOrigin::Original,
            pixels: Some((1, 1, vec![1, 2, 3])),
        },
        WalOp::PutFeature {
            image: img,
            kind: FeatureKind::Cnn,
            vector: vec![0.1, -2.5],
        },
        WalOp::RegisterScheme {
            id: cls,
            name: "graffiti".into(),
            labels: vec!["none".into(), "tagged".into()],
        },
        WalOp::Annotate(Annotation {
            id: ann,
            image: img,
            classification: cls,
            label: 1,
            confidence: 0.7,
            source: AnnotationSource::Human(UserId(2)),
            region: None,
        }),
    ]
}

#[test]
fn group_commit_batch_killed_at_every_offset_is_all_or_prefix() {
    // Per-op appends and one append_batch of the same ops must lay down
    // byte-identical WAL bytes, so a crash mid-batch recovers an exact
    // record prefix of the batch — never a torn or reordered state.
    let scratch = temp_dir("batch-torture-scratch");
    let (per_op_bytes, states) = scripted_mutations(&scratch);
    std::fs::remove_dir_all(&scratch).ok();

    // Journal the same ops through the group-commit path.
    let scratch2 = temp_dir("batch-torture-scratch2");
    let base_bytes = render_snapshot(&states[0], 0);
    write_dir(&scratch2, Some(base_bytes.as_bytes()), 0, b"");
    let (ds, _) = DurableStore::open(&scratch2).unwrap();
    ds.apply_batch(scripted_batch(&ds)).unwrap();
    assert_eq!(ds.store().snapshot(), *states.last().unwrap());
    drop(ds);
    let batch_bytes = std::fs::read(scratch2.join("wal-0.log")).unwrap();
    std::fs::remove_dir_all(&scratch2).ok();
    assert_eq!(
        batch_bytes, per_op_bytes,
        "group commit must journal byte-identical frames"
    );

    let bounds = record_boundaries(&batch_bytes);
    let dir = temp_dir("batch-torture");
    for cut in 0..=batch_bytes.len() {
        write_dir(
            &dir,
            Some(base_bytes.as_bytes()),
            0,
            &crash_prefix(&batch_bytes, cut),
        );
        let (ds, report) = DurableStore::open(&dir).unwrap();
        let intact = bounds.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(
            ds.store().snapshot(),
            states[intact],
            "batch cut at byte {cut}: expected the first {intact} op(s)"
        );
        assert_eq!(report.replayed_ops, intact);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn acked_group_commit_batch_survives_reopen() {
    let dir = temp_dir("batch-acked");
    let (ds, _) = DurableStore::open(&dir).unwrap();
    ds.apply_batch(scripted_batch(&ds)).unwrap();
    let live = ds.store().snapshot();
    drop(ds); // crash without flush or compaction
    let (ds, report) = DurableStore::open(&dir).unwrap();
    assert_eq!(report.replayed_ops, 4);
    assert_eq!(ds.store().snapshot(), live);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn group_commit_enospc_at_every_byte_sheds_batch_and_degrades() {
    // The volume fills mid-way through a batched group-commit frame.
    // Whatever byte the fault lands on, the live store must shed the
    // whole batch (journal-before-apply: nothing half-applied), keep
    // serving reads from its pre-batch state, report a degraded
    // (read-only) health state instead of panicking, and a reopen must
    // recover exactly the acked state plus whichever record prefix made
    // it to disk — never a torn third state.
    let scratch = temp_dir("enospc-scratch");
    let (batch_bytes, states) = scripted_mutations(&scratch);
    std::fs::remove_dir_all(&scratch).ok();
    let base_bytes = render_snapshot(&states[0], 0);

    let dir = temp_dir("enospc-torture");
    for cut in 0..=batch_bytes.len() {
        write_dir(&dir, Some(base_bytes.as_bytes()), 0, b"");
        let (ds, _) = DurableStore::open(&dir).unwrap();
        let plan = WriteFaultPlan::new();
        ds.set_write_fault_plan(Some(plan.clone()));
        plan.arm_enospc(cut);

        let err = ds.apply_batch(scripted_batch(&ds)).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("os error 28") || msg.to_lowercase().contains("no space"),
            "fault at byte {cut} must surface ENOSPC, got: {msg}"
        );
        // Read-consistent: the shed batch left no partial application.
        assert_eq!(ds.store().snapshot(), states[0], "cut at byte {cut}");
        let health = ds.health();
        assert_eq!(health.state, HealthState::ReadOnly, "cut at byte {cut}");
        assert_eq!(health.write_faults, 1);
        assert!(health.last_error.is_some());

        // While the disk stays full, further mutations are shed with the
        // typed read-only error — still no panic, still serving reads.
        let shed = ds
            .add_image(meta("while-full"), ImageOrigin::Original, None)
            .unwrap_err();
        assert!(
            shed.to_string().contains("read-only"),
            "expected typed read-only shed, got: {shed}"
        );
        assert_eq!(ds.store().snapshot(), states[0]);
        drop(ds);

        // Crash while full: the shed mutation's repair probe already
        // truncated the unacked batch debris back to the acked prefix,
        // so recovery lands on exactly the acked state — the journal
        // never resurrects ops the caller was told had failed.
        let (reopened, report) = DurableStore::open(&dir).unwrap();
        assert_eq!(
            reopened.store().snapshot(),
            states[0],
            "reopen after cut at byte {cut}"
        );
        assert_eq!(report.replayed_ops, 0);
        assert_eq!(
            reopened.health().state,
            HealthState::Ok,
            "a fresh open with a healthy disk starts Ok"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn write_fault_cycle_degrades_then_recovers_to_ok() {
    // Full health cycle on a live store: Ok → (fault) → ReadOnly →
    // (space freed, first good write) → Degraded → (second good write)
    // → Ok, with reads served throughout and the tail repaired so the
    // journal stays append-clean.
    let dir = temp_dir("fault-cycle");
    let (ds, _) = DurableStore::open(&dir).unwrap();
    let img = ds
        .add_image(meta("acked"), ImageOrigin::Original, None)
        .unwrap();
    let acked = ds.store().snapshot();
    assert_eq!(ds.health().state, HealthState::Ok);

    let plan = WriteFaultPlan::new();
    ds.set_write_fault_plan(Some(plan.clone()));
    plan.arm_enospc(3); // three bytes of torn debris, then no space

    ds.put_feature(img, FeatureKind::Cnn, vec![1.0; 4])
        .unwrap_err();
    assert_eq!(ds.health().state, HealthState::ReadOnly);
    assert_eq!(ds.store().snapshot(), acked, "reads keep working");

    // Still full: mutations shed, fault counter climbs deterministically.
    ds.register_scheme("shed", vec!["a".into()]).unwrap_err();
    assert_eq!(ds.health().state, HealthState::ReadOnly);
    assert_eq!(ds.health().write_faults, 2);

    // Operator frees space; the next mutation repairs the torn tail,
    // lands durably, and the store enters probation.
    plan.clear();
    ds.put_feature(img, FeatureKind::Cnn, vec![2.0; 4]).unwrap();
    assert_eq!(ds.health().state, HealthState::Degraded);
    let cls = ds.register_scheme("healed", vec!["ok".into()]).unwrap();
    assert_eq!(ds.health().state, HealthState::Ok);
    assert!(ds.health().last_error.is_none());
    ds.annotate(img, cls, 0, 1.0, AnnotationSource::Human(UserId(1)), None)
        .unwrap();

    // Everything acked across the cycle survives a crash/reopen.
    let live = ds.store().snapshot();
    drop(ds);
    let (reopened, _) = DurableStore::open(&dir).unwrap();
    assert_eq!(reopened.store().snapshot(), live);
    std::fs::remove_dir_all(&dir).ok();
}

/// Copies a durable-store directory byte-for-byte, freezing the state a
/// crash at that instant would leave on disk.
fn freeze_dir(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

#[test]
fn crash_at_every_incremental_compaction_boundary_preserves_state() {
    let dir = temp_dir("fold-crash");
    let (ds, _) = DurableStore::open(&dir).unwrap();
    ds.apply_batch(scripted_batch(&ds)).unwrap();
    ds.seal().unwrap(); // two L0 tiers for the fold to merge
    let img2 = ds
        .add_image(meta("tier-two"), ImageOrigin::Original, None)
        .unwrap();
    ds.put_feature(img2, FeatureKind::SiftBow, vec![2.0; 4])
        .unwrap();
    let live = ds.store().snapshot();

    // Crash between every pair of increments: freeze the directory,
    // reopen the frozen copy, and require the exact live state.
    let frozen = temp_dir("fold-crash-frozen");
    let pool = tvdp_kernel::Pool::serial();
    let mut task = ds.begin_compaction().unwrap();
    let mut boundary = 0usize;
    let report = loop {
        freeze_dir(&dir, &frozen);
        let (frozen_ds, _) = DurableStore::open(&frozen).unwrap();
        assert_eq!(
            frozen_ds.store().snapshot(),
            live,
            "crash before increment {boundary} lost or doubled ops"
        );
        drop(frozen_ds);
        boundary += 1;
        if let Some(r) = task.step(&pool).unwrap() {
            break r;
        }
    };
    drop(task);
    assert_eq!(report.tiers_merged, 2);
    assert!(boundary >= 2, "fold ran as at least two increments");

    // And after the publish itself.
    freeze_dir(&dir, &frozen);
    let (frozen_ds, report) = DurableStore::open(&frozen).unwrap();
    assert_eq!(frozen_ds.store().snapshot(), live);
    assert_eq!(report.replayed_ops, 0);
    drop(frozen_ds);

    std::fs::remove_dir_all(&frozen).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spill_file_killed_at_every_offset_never_reads_back_wrong() {
    use tvdp_storage::spill::{read_spill, spill_path, write_spill, SpillStats};
    // A complete spill file reads back bit-exact; any FailingWriter
    // prefix of it must be rejected by the header/CRC checks, never
    // silently served as feature data.
    let dir = temp_dir("spill-torture");
    std::fs::create_dir_all(&dir).unwrap();
    let data: Vec<f32> = (0..64).map(|i| (i as f32) * 0.5 - 7.0).collect();
    let stats = SpillStats::default();
    // Quantized (v2) layout: codes ride in the same CRC frame, so the
    // torture covers the larger format.
    let quant = tvdp_kernel::quant::QuantChunk::encode(&data, 2);
    write_spill(&dir, FeatureKind::Cnn, 2, 0, &data, Some(&quant), &stats).unwrap();
    let path = spill_path(&dir, FeatureKind::Cnn, 2, 0);
    let full = std::fs::read(&path).unwrap();
    let payload = read_spill(&path, data.len()).unwrap();
    assert_eq!(payload.floats, data);
    assert_eq!(payload.quant.unwrap().codes(), quant.codes());

    let torn = dir.join("torn.bin");
    for cut in 0..full.len() {
        std::fs::write(&torn, crash_prefix(&full, cut)).unwrap();
        assert!(
            read_spill(&torn, data.len()).is_err(),
            "prefix of {cut} byte(s) must not pass validation"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
