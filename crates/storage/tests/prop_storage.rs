//! Property-based tests: arbitrary store contents survive the snapshot
//! and persistence round trips intact.

use proptest::prelude::*;
use tvdp_geo::GeoPoint;
use tvdp_storage::{AnnotationSource, ImageMeta, ImageOrigin, UserId, VisualStore};
use tvdp_vision::{FeatureKind, Image};

#[derive(Debug, Clone)]
struct Row {
    lat: f64,
    lon: f64,
    captured: i64,
    keywords: Vec<String>,
    label: usize,
    confidence: f32,
    feature: Vec<f32>,
    with_pixels: bool,
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        33.5f64..34.5,
        -119.0f64..-118.0,
        0i64..1_000_000,
        proptest::collection::vec("[a-z]{1,8}", 0..3),
        0usize..3,
        0.0f32..=1.0,
        proptest::collection::vec(-10.0f32..10.0, 4),
        any::<bool>(),
    )
        .prop_map(
            |(lat, lon, captured, keywords, label, confidence, feature, with_pixels)| Row {
                lat,
                lon,
                captured,
                keywords,
                label,
                confidence,
                feature,
                with_pixels,
            },
        )
}

fn populate(rows: &[Row]) -> VisualStore {
    let store = VisualStore::new();
    let scheme = store
        .register_scheme("s", vec!["a".into(), "b".into(), "c".into()])
        .unwrap();
    for (i, row) in rows.iter().enumerate() {
        let meta = ImageMeta {
            uploader: UserId(i as u64 % 4),
            gps: GeoPoint::new(row.lat, row.lon),
            fov: None,
            captured_at: row.captured,
            uploaded_at: row.captured + 1,
            keywords: row.keywords.clone(),
        };
        let pixels = row
            .with_pixels
            .then(|| Image::from_fn(4, 4, |x, y| [(x + i) as u8, y as u8, row.label as u8]));
        let id = store
            .add_image(meta, ImageOrigin::Original, pixels)
            .unwrap();
        store
            .put_feature(id, FeatureKind::Cnn, row.feature.clone())
            .unwrap();
        store
            .annotate(
                id,
                scheme,
                row.label,
                row.confidence,
                AnnotationSource::Human(UserId(0)),
                None,
            )
            .unwrap();
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_roundtrip_preserves_everything(rows in proptest::collection::vec(arb_row(), 1..20)) {
        let store = populate(&rows);
        let restored = VisualStore::from_snapshot(store.snapshot()).unwrap();
        prop_assert_eq!(restored.len(), store.len());
        prop_assert_eq!(restored.annotation_count(), store.annotation_count());
        for id in store.image_ids() {
            prop_assert_eq!(restored.image(id), store.image(id));
            prop_assert_eq!(restored.pixels(id), store.pixels(id));
            prop_assert_eq!(
                restored.feature(id, FeatureKind::Cnn),
                store.feature(id, FeatureKind::Cnn)
            );
            prop_assert_eq!(restored.annotations_of(id), store.annotations_of(id));
        }
    }

    #[test]
    fn persistence_roundtrip_preserves_everything(rows in proptest::collection::vec(arb_row(), 1..12)) {
        let store = populate(&rows);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "tvdp-prop-{}-{}.jsonl",
            std::process::id(),
            rows.len() * 1000 + rows.first().map_or(0, |r| r.label)
        ));
        tvdp_storage::persist::save(&store, &path).unwrap();
        let restored = tvdp_storage::persist::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(restored.len(), store.len());
        for id in store.image_ids() {
            prop_assert_eq!(restored.image(id), store.image(id));
            prop_assert_eq!(restored.pixels(id), store.pixels(id));
        }
        // Label queries agree.
        let scheme = store.scheme_by_name("s").unwrap().id;
        for label in 0..3 {
            prop_assert_eq!(
                restored.annotations_with_label(scheme, label).len(),
                store.annotations_with_label(scheme, label).len()
            );
        }
    }

    #[test]
    fn id_allocation_never_collides_after_restore(rows in proptest::collection::vec(arb_row(), 1..10)) {
        let store = populate(&rows);
        let restored = VisualStore::from_snapshot(store.snapshot()).unwrap();
        let before = restored.image_ids();
        let meta = ImageMeta {
            uploader: UserId(0),
            gps: GeoPoint::new(34.0, -118.5),
            fov: None,
            captured_at: 0,
            uploaded_at: 1,
            keywords: vec![],
        };
        let new_id = restored.add_image(meta, ImageOrigin::Original, None).unwrap();
        prop_assert!(!before.contains(&new_id), "fresh id {new_id} collides");
    }
}
