//! Image augmentation operators.
//!
//! The paper's storage layer distinguishes *original* from *augmented*
//! visual data, citing the Python `Augmentor` library for synthesizing
//! augmented images via cropping, rotation, etc. This module provides the
//! corresponding operators; the storage crate records augmentation lineage.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::image::Image;

/// A deterministic augmentation operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Augmentation {
    /// Mirror around the vertical axis.
    FlipHorizontal,
    /// Mirror around the horizontal axis.
    FlipVertical,
    /// Rotate 90° clockwise.
    Rotate90,
    /// Rotate 180°.
    Rotate180,
    /// Rotate 270° clockwise.
    Rotate270,
    /// Crop a centred region covering `fraction` of each axis, then resize
    /// back to the original size. `fraction` in `(0, 1]`.
    CenterCropZoom {
        /// Fraction of each axis kept.
        fraction: f32,
    },
    /// Add `delta` to every channel (saturating).
    Brightness {
        /// Additive shift in `[-255, 255]`.
        delta: i16,
    },
    /// Scale contrast around mid-gray by `factor`.
    Contrast {
        /// Multiplicative factor; 1.0 is identity.
        factor: f32,
    },
    /// Add seeded Gaussian pixel noise with standard deviation `sigma`.
    GaussianNoise {
        /// Noise standard deviation in 8-bit units.
        sigma: f32,
        /// RNG seed so augmentation is reproducible.
        seed: u64,
    },
}

impl Augmentation {
    /// Applies the operator, producing a new image.
    pub fn apply(&self, img: &Image) -> Image {
        let (w, h) = (img.width(), img.height());
        match *self {
            Augmentation::FlipHorizontal => Image::from_fn(w, h, |x, y| img.get(w - 1 - x, y)),
            Augmentation::FlipVertical => Image::from_fn(w, h, |x, y| img.get(x, h - 1 - y)),
            Augmentation::Rotate90 => Image::from_fn(h, w, |x, y| img.get(y, h - 1 - x)),
            Augmentation::Rotate180 => Image::from_fn(w, h, |x, y| img.get(w - 1 - x, h - 1 - y)),
            Augmentation::Rotate270 => Image::from_fn(h, w, |x, y| img.get(w - 1 - y, x)),
            Augmentation::CenterCropZoom { fraction } => {
                let f = fraction.clamp(0.05, 1.0);
                let cw = ((w as f32 * f).round() as usize).max(1);
                let ch = ((h as f32 * f).round() as usize).max(1);
                let x0 = (w - cw) / 2;
                let y0 = (h - ch) / 2;
                img.crop(x0, y0, cw, ch).resize(w, h)
            }
            Augmentation::Brightness { delta } => Image::from_fn(w, h, |x, y| {
                let px = img.get(x, y);
                [
                    (px[0] as i16 + delta).clamp(0, 255) as u8,
                    (px[1] as i16 + delta).clamp(0, 255) as u8,
                    (px[2] as i16 + delta).clamp(0, 255) as u8,
                ]
            }),
            Augmentation::Contrast { factor } => Image::from_fn(w, h, |x, y| {
                let px = img.get(x, y);
                let adjust = |v: u8| ((v as f32 - 128.0) * factor + 128.0).clamp(0.0, 255.0) as u8;
                [adjust(px[0]), adjust(px[1]), adjust(px[2])]
            }),
            Augmentation::GaussianNoise { sigma, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                Image::from_fn(w, h, |x, y| {
                    let px = img.get(x, y);
                    let mut out = [0u8; 3];
                    for c in 0..3 {
                        let u1: f32 = rng.gen_range(1e-7..1.0f32);
                        let u2: f32 = rng.gen_range(0.0..1.0f32);
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                        out[c] = (px[c] as f32 + z * sigma).clamp(0.0, 255.0) as u8;
                    }
                    out
                })
            }
        }
    }

    /// A short machine-readable name for provenance records.
    pub fn tag(&self) -> String {
        match self {
            Augmentation::FlipHorizontal => "flip_h".into(),
            Augmentation::FlipVertical => "flip_v".into(),
            Augmentation::Rotate90 => "rot90".into(),
            Augmentation::Rotate180 => "rot180".into(),
            Augmentation::Rotate270 => "rot270".into(),
            Augmentation::CenterCropZoom { fraction } => format!("crop{fraction:.2}"),
            Augmentation::Brightness { delta } => format!("bright{delta:+}"),
            Augmentation::Contrast { factor } => format!("contrast{factor:.2}"),
            Augmentation::GaussianNoise { sigma, .. } => format!("noise{sigma:.1}"),
        }
    }
}

/// Applies a sequence of augmentations left-to-right.
pub fn apply_pipeline(img: &Image, ops: &[Augmentation]) -> Image {
    let mut out = img.clone();
    for op in ops {
        out = op.apply(&out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image {
        Image::from_fn(8, 6, |x, y| [(x * 10) as u8, (y * 10) as u8, 7])
    }

    #[test]
    fn double_flip_is_identity() {
        let img = sample();
        let back = Augmentation::FlipHorizontal.apply(&Augmentation::FlipHorizontal.apply(&img));
        assert_eq!(back, img);
        let back_v = Augmentation::FlipVertical.apply(&Augmentation::FlipVertical.apply(&img));
        assert_eq!(back_v, img);
    }

    #[test]
    fn four_rot90_is_identity() {
        let img = sample();
        let mut r = img.clone();
        for _ in 0..4 {
            r = Augmentation::Rotate90.apply(&r);
        }
        assert_eq!(r, img);
    }

    #[test]
    fn rotations_compose() {
        let img = sample();
        let r180 = Augmentation::Rotate180.apply(&img);
        let r90_twice = Augmentation::Rotate90.apply(&Augmentation::Rotate90.apply(&img));
        assert_eq!(r180, r90_twice);
        let r270 = Augmentation::Rotate270.apply(&img);
        let r90_thrice = Augmentation::Rotate90.apply(&r90_twice);
        assert_eq!(r270, r90_thrice);
    }

    #[test]
    fn rotate_swaps_dimensions() {
        let img = sample();
        let r = Augmentation::Rotate90.apply(&img);
        assert_eq!((r.width(), r.height()), (6, 8));
    }

    #[test]
    fn brightness_clamps() {
        let img = Image::from_fn(2, 2, |_, _| [250, 5, 128]);
        let up = Augmentation::Brightness { delta: 20 }.apply(&img);
        assert_eq!(up.get(0, 0), [255, 25, 148]);
        let down = Augmentation::Brightness { delta: -20 }.apply(&img);
        assert_eq!(down.get(0, 0), [230, 0, 108]);
    }

    #[test]
    fn contrast_identity_at_one() {
        let img = sample();
        let same = Augmentation::Contrast { factor: 1.0 }.apply(&img);
        assert_eq!(same, img);
        // Zero factor collapses to mid-gray.
        let flat = Augmentation::Contrast { factor: 0.0 }.apply(&img);
        assert!(flat.raw().iter().all(|&v| v == 128));
    }

    #[test]
    fn crop_zoom_keeps_size() {
        let img = sample();
        let z = Augmentation::CenterCropZoom { fraction: 0.5 }.apply(&img);
        assert_eq!((z.width(), z.height()), (8, 6));
    }

    #[test]
    fn noise_deterministic_and_bounded() {
        let img = sample();
        let op = Augmentation::GaussianNoise {
            sigma: 10.0,
            seed: 3,
        };
        let a = op.apply(&img);
        let b = op.apply(&img);
        assert_eq!(a, b);
        assert_ne!(a, img);
    }

    #[test]
    fn pipeline_applies_in_order() {
        let img = sample();
        let ops = [Augmentation::Rotate90, Augmentation::FlipHorizontal];
        let p = apply_pipeline(&img, &ops);
        let manual = Augmentation::FlipHorizontal.apply(&Augmentation::Rotate90.apply(&img));
        assert_eq!(p, manual);
    }

    #[test]
    fn tags_are_distinct() {
        let tags: Vec<String> = [
            Augmentation::FlipHorizontal,
            Augmentation::Rotate90,
            Augmentation::Brightness { delta: 5 },
            Augmentation::Contrast { factor: 1.2 },
        ]
        .iter()
        .map(Augmentation::tag)
        .collect();
        let mut dedup = tags.clone();
        dedup.dedup();
        assert_eq!(tags, dedup);
    }
}
