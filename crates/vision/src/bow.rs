//! Bag-of-visual-words encoding over SIFT descriptors.
//!
//! The paper builds its SIFT-BoW features by clustering SIFT key points
//! from 80% of the dataset into 1000 visual words with k-means, then
//! representing each image as a histogram of word occurrences.

use tvdp_ml::KMeans;

use crate::image::Image;
use crate::sift::SiftExtractor;
use crate::{FeatureExtractor, FeatureKind};

/// A fitted BoW encoder: a visual-word dictionary plus the SIFT extractor
/// used to produce descriptors.
#[derive(Debug, Clone)]
pub struct BowEncoder {
    dictionary: KMeans,
    sift: SiftExtractor,
}

impl BowEncoder {
    /// Builds the visual dictionary by clustering the descriptors of the
    /// `training` images into `vocabulary_size` words.
    ///
    /// # Panics
    ///
    /// Panics when the training images yield fewer descriptors than
    /// `vocabulary_size` (the dictionary would be degenerate).
    pub fn train(
        training: &[Image],
        sift: SiftExtractor,
        vocabulary_size: usize,
        seed: u64,
    ) -> Self {
        let mut descriptors = Vec::new();
        for img in training {
            for (_, d) in sift.detect_and_describe(img) {
                descriptors.push(d);
            }
        }
        assert!(
            descriptors.len() >= vocabulary_size,
            "only {} descriptors for a {vocabulary_size}-word vocabulary",
            descriptors.len()
        );
        let dictionary = KMeans::fit(&descriptors, vocabulary_size, 25, seed);
        Self { dictionary, sift }
    }

    /// Builds an encoder from pre-extracted descriptors (used when the
    /// platform has stored descriptors and wants to avoid re-detection).
    pub fn from_descriptors(
        descriptors: &[Vec<f32>],
        sift: SiftExtractor,
        vocabulary_size: usize,
        seed: u64,
    ) -> Self {
        assert!(descriptors.len() >= vocabulary_size, "too few descriptors");
        let dictionary = KMeans::fit(descriptors, vocabulary_size, 25, seed);
        Self { dictionary, sift }
    }

    /// Vocabulary size.
    pub fn vocabulary_size(&self) -> usize {
        self.dictionary.k()
    }

    /// Quantizes one descriptor to its visual-word index.
    pub fn quantize(&self, descriptor: &[f32]) -> usize {
        self.dictionary.assign(descriptor)
    }
}

impl FeatureExtractor for BowEncoder {
    fn dim(&self) -> usize {
        self.dictionary.k()
    }

    fn kind(&self) -> FeatureKind {
        FeatureKind::SiftBow
    }

    fn extract(&self, image: &Image) -> Vec<f32> {
        let mut hist = vec![0.0f32; self.dim()];
        let pairs = self.sift.detect_and_describe(image);
        for (_, d) in &pairs {
            hist[self.dictionary.assign(d)] += 1.0;
        }
        // L1-normalize so images with different keypoint counts compare.
        // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
        let total: f32 = hist.iter().sum();
        if total > 0.0 {
            for h in &mut hist {
                *h /= total;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(seed: u8) -> Image {
        // Deterministic texture with blob structure varying by seed.
        Image::from_fn(48, 48, |x, y| {
            let v = ((x * (3 + seed as usize) + y * 7) % 23) as u8 * 11;
            let blob = {
                let dx = x as f32 - 16.0 - seed as f32;
                let dy = y as f32 - 24.0;
                if (dx * dx + dy * dy).sqrt() < 7.0 {
                    200
                } else {
                    0
                }
            };
            [v.saturating_add(blob), v, v / 2]
        })
    }

    fn trained_encoder() -> BowEncoder {
        let imgs: Vec<Image> = (0..6).map(textured).collect();
        BowEncoder::train(&imgs, SiftExtractor::new(), 8, 42)
    }

    #[test]
    fn encoding_is_normalized_histogram() {
        let enc = trained_encoder();
        assert_eq!(enc.vocabulary_size(), 8);
        let h = enc.extract(&textured(3));
        assert_eq!(h.len(), 8);
        let sum: f32 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        assert!(h.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn flat_image_encodes_to_zero_histogram() {
        let enc = trained_encoder();
        let flat = Image::from_fn(48, 48, |_, _| [90, 90, 90]);
        let h = enc.extract(&flat);
        assert!(h.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn quantize_in_vocab_range() {
        let enc = trained_encoder();
        let pairs = SiftExtractor::new().detect_and_describe(&textured(1));
        for (_, d) in pairs {
            assert!(enc.quantize(&d) < 8);
        }
    }

    #[test]
    fn deterministic_training() {
        let imgs: Vec<Image> = (0..6).map(textured).collect();
        let a = BowEncoder::train(&imgs, SiftExtractor::new(), 8, 7);
        let b = BowEncoder::train(&imgs, SiftExtractor::new(), 8, 7);
        assert_eq!(a.extract(&textured(2)), b.extract(&textured(2)));
    }

    #[test]
    #[should_panic(expected = "descriptors")]
    fn too_small_training_set_panics() {
        let flat = vec![Image::from_fn(16, 16, |_, _| [50, 50, 50])];
        let _ = BowEncoder::train(&flat, SiftExtractor::new(), 100, 0);
    }
}
