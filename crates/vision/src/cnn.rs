//! Seeded random-convolution CNN feature extractor.
//!
//! Stands in for the paper's fine-tuned Caffe CNN features. The network is
//! a real convolutional pipeline — 3×3 convolutions, ReLU, 2×2 max
//! pooling, repeated over several stages — whose filter weights are drawn
//! once from a seeded Gaussian (He-scaled) instead of being learned.
//! Random-feature convnets are a well-studied approximation of trained
//! embeddings: they genuinely respond to multi-scale spatial structure,
//! which is what lets them dominate color histograms and BoW in the
//! reproduction of the paper's Fig. 6 ordering.
//!
//! The final descriptor concatenates per-channel averages over a 2×2
//! spatial grid of the last feature map, preserving coarse layout, then
//! L2-normalizes.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::image::Image;
use crate::{FeatureExtractor, FeatureKind};

/// Network architecture and determinism knobs.
#[derive(Debug, Clone)]
pub struct CnnConfig {
    /// Input images are bilinearly resized to this square size first.
    pub input_size: usize,
    /// Output channels per stage; each stage halves spatial resolution.
    pub stage_channels: Vec<usize>,
    /// Seed for the filter weights.
    pub seed: u64,
    /// Cells per axis in the final spatial-grid pooling (2 ⇒ 2×2 grid).
    pub pool_grid: usize,
}

impl Default for CnnConfig {
    fn default() -> Self {
        Self {
            input_size: 48,
            stage_channels: vec![12, 24, 48],
            seed: 0x7dbf,
            pool_grid: 3,
        }
    }
}

/// One convolution stage: 3×3 kernels, `in_ch → out_ch`.
#[derive(Debug, Clone)]
struct ConvStage {
    in_ch: usize,
    out_ch: usize,
    /// Weights laid out `[out][in][ky][kx]`, flattened.
    weights: Vec<f32>,
}

impl ConvStage {
    fn new(in_ch: usize, out_ch: usize, rng: &mut StdRng) -> Self {
        let fan_in = (in_ch * 9) as f32;
        let scale = (2.0 / fan_in).sqrt(); // He initialization
        let weights = (0..out_ch * in_ch * 9)
            .map(|_| {
                // Box-Muller from two uniforms for a Gaussian sample.
                let u1: f32 = rng.gen_range(1e-7..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                z * scale
            })
            .collect();
        Self {
            in_ch,
            out_ch,
            weights,
        }
    }

    #[inline]
    fn w(&self, o: usize, i: usize, ky: usize, kx: usize) -> f32 {
        self.weights[((o * self.in_ch + i) * 3 + ky) * 3 + kx]
    }

    /// conv3x3 (same padding, clamped borders) + ReLU + 2x2 max pool.
    fn forward(&self, input: &FeatureMap) -> FeatureMap {
        debug_assert_eq!(input.channels, self.in_ch);
        let (w, h) = (input.width, input.height);
        let mut conv = FeatureMap::zeros(self.out_ch, w, h);
        for o in 0..self.out_ch {
            for y in 0..h {
                for x in 0..w {
                    let mut acc = 0.0f32;
                    for i in 0..self.in_ch {
                        for ky in 0..3usize {
                            for kx in 0..3usize {
                                let sy = (y + ky).saturating_sub(1).min(h - 1);
                                let sx = (x + kx).saturating_sub(1).min(w - 1);
                                // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
                                acc += self.w(o, i, ky, kx) * input.get(i, sx, sy);
                            }
                        }
                    }
                    conv.set(o, x, y, acc.max(0.0)); // ReLU
                }
            }
        }
        conv.max_pool2()
    }
}

/// A multi-channel feature map.
#[derive(Debug, Clone)]
struct FeatureMap {
    channels: usize,
    width: usize,
    height: usize,
    data: Vec<f32>, // [channel][y][x]
}

impl FeatureMap {
    fn zeros(channels: usize, width: usize, height: usize) -> Self {
        Self {
            channels,
            width,
            height,
            data: vec![0.0; channels * width * height],
        }
    }

    #[inline]
    fn get(&self, c: usize, x: usize, y: usize) -> f32 {
        self.data[(c * self.height + y) * self.width + x]
    }

    #[inline]
    fn set(&mut self, c: usize, x: usize, y: usize, v: f32) {
        self.data[(c * self.height + y) * self.width + x] = v;
    }

    fn max_pool2(&self) -> FeatureMap {
        let nw = (self.width / 2).max(1);
        let nh = (self.height / 2).max(1);
        let mut out = FeatureMap::zeros(self.channels, nw, nh);
        for c in 0..self.channels {
            for y in 0..nh {
                for x in 0..nw {
                    let mut m = f32::NEG_INFINITY;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let sy = (y * 2 + dy).min(self.height - 1);
                            let sx = (x * 2 + dx).min(self.width - 1);
                            m = m.max(self.get(c, sx, sy));
                        }
                    }
                    out.set(c, x, y, m);
                }
            }
        }
        out
    }
}

/// The random-convolution feature extractor.
#[derive(Debug, Clone)]
pub struct CnnExtractor {
    config: CnnConfig,
    stages: Vec<ConvStage>,
}

impl CnnExtractor {
    /// Builds the network with default architecture (32×32 input,
    /// 8→16→32 channels, 2×2 grid pooling ⇒ 128-d descriptor).
    pub fn new() -> Self {
        Self::with_config(CnnConfig::default())
    }

    /// Builds the network from an explicit configuration.
    pub fn with_config(config: CnnConfig) -> Self {
        assert!(config.input_size >= 8, "input too small");
        assert!(!config.stage_channels.is_empty(), "need at least one stage");
        assert!(config.pool_grid >= 1, "pool grid must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut stages = Vec::with_capacity(config.stage_channels.len());
        let mut in_ch = 3;
        for &out_ch in &config.stage_channels {
            assert!(out_ch > 0, "zero-channel stage");
            stages.push(ConvStage::new(in_ch, out_ch, &mut rng));
            in_ch = out_ch;
        }
        Self { config, stages }
    }

    fn image_to_map(&self, image: &Image) -> FeatureMap {
        let resized = image.resize(self.config.input_size, self.config.input_size);
        let s = self.config.input_size;
        let mut map = FeatureMap::zeros(3, s, s);
        for y in 0..s {
            for x in 0..s {
                let px = resized.get(x, y);
                for (c, &v) in px.iter().enumerate() {
                    map.set(c, x, y, v as f32 / 255.0 - 0.5);
                }
            }
        }
        map
    }
}

impl Default for CnnExtractor {
    fn default() -> Self {
        Self::new()
    }
}

impl FeatureExtractor for CnnExtractor {
    fn dim(&self) -> usize {
        // Per channel: one average per grid cell plus one global max.
        // tvdp-lint: allow(no_panic, reason = "constructor asserts stage_channels is non-empty")
        let last = *self.config.stage_channels.last().expect("non-empty stages");
        last * (self.config.pool_grid * self.config.pool_grid + 1)
    }

    fn kind(&self) -> FeatureKind {
        FeatureKind::Cnn
    }

    fn extract(&self, image: &Image) -> Vec<f32> {
        let mut map = self.image_to_map(image);
        for stage in &self.stages {
            map = stage.forward(&map);
        }
        // Spatial-grid average pooling plus a global max per channel.
        let g = self.config.pool_grid;
        let per_chan = g * g + 1;
        let mut out = vec![0.0f32; self.dim()];
        for c in 0..map.channels {
            let mut global_max = f32::NEG_INFINITY;
            for gy in 0..g {
                for gx in 0..g {
                    let x0 = map.width * gx / g;
                    let x1 = (map.width * (gx + 1) / g).max(x0 + 1).min(map.width);
                    let y0 = map.height * gy / g;
                    let y1 = (map.height * (gy + 1) / g).max(y0 + 1).min(map.height);
                    let mut acc = 0.0f32;
                    let mut count = 0usize;
                    for y in y0..y1 {
                        for x in x0..x1 {
                            let v = map.get(c, x, y);
                            // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
                            acc += v;
                            global_max = global_max.max(v);
                            count += 1;
                        }
                    }
                    out[c * per_chan + gy * g + gx] = acc / count.max(1) as f32;
                }
            }
            out[c * per_chan + g * g] = global_max;
        }
        tvdp_kernel::normalize(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene(kind: u8) -> Image {
        Image::from_fn(48, 48, |x, y| match kind {
            // Vertical stripes.
            0 => {
                if x % 8 < 4 {
                    [220, 220, 220]
                } else {
                    [30, 30, 30]
                }
            }
            // Horizontal stripes.
            1 => {
                if y % 8 < 4 {
                    [220, 220, 220]
                } else {
                    [30, 30, 30]
                }
            }
            // Centre blob.
            _ => {
                let dx = x as f32 - 24.0;
                let dy = y as f32 - 24.0;
                if (dx * dx + dy * dy).sqrt() < 10.0 {
                    [200, 60, 60]
                } else {
                    [60, 60, 200]
                }
            }
        })
    }

    #[test]
    fn default_dim_is_480() {
        let cnn = CnnExtractor::new();
        assert_eq!(cnn.dim(), 480, "48 channels x (3x3 grid + global max)");
        assert_eq!(cnn.kind(), FeatureKind::Cnn);
    }

    #[test]
    fn output_unit_norm_and_correct_len() {
        let cnn = CnnExtractor::new();
        let f = cnn.extract(&scene(2));
        assert_eq!(f.len(), 480);
        let norm: f32 = f.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = CnnExtractor::new().extract(&scene(0));
        let b = CnnExtractor::new().extract(&scene(0));
        assert_eq!(a, b);
        let other_seed = CnnExtractor::with_config(CnnConfig {
            seed: 99,
            ..Default::default()
        });
        assert_ne!(a, other_seed.extract(&scene(0)));
    }

    #[test]
    fn distinguishes_structures_color_cannot() {
        // Vertical vs horizontal stripes have identical color statistics
        // but different spatial structure: CNN embeddings must differ
        // substantially.
        let cnn = CnnExtractor::new();
        let v = cnn.extract(&scene(0));
        let h = cnn.extract(&scene(1));
        let cos: f32 = v.iter().zip(&h).map(|(a, b)| a * b).sum();
        assert!(
            cos < 0.995,
            "stripe orientations indistinguishable (cos={cos})"
        );
        // Same structure is self-similar.
        let v2 = cnn.extract(&scene(0));
        let self_cos: f32 = v.iter().zip(&v2).map(|(a, b)| a * b).sum();
        assert!(self_cos > 0.999);
    }

    #[test]
    fn embedding_stable_under_small_brightness_change() {
        let base = scene(2);
        let brighter = Image::from_fn(48, 48, |x, y| {
            let px = base.get(x, y);
            [
                px[0].saturating_add(10),
                px[1].saturating_add(10),
                px[2].saturating_add(10),
            ]
        });
        let cnn = CnnExtractor::new();
        let a = cnn.extract(&base);
        let b = cnn.extract(&brighter);
        let cos: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!(
            cos > 0.95,
            "brightness shift destroyed embedding: cos={cos}"
        );
    }

    #[test]
    fn handles_non_square_input() {
        let img = Image::from_fn(64, 32, |x, _| [(x * 4) as u8, 0, 0]);
        let f = CnnExtractor::new().extract(&img);
        assert_eq!(f.len(), 480);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
