//! HSV color space and color-histogram features.
//!
//! The paper's evaluation extracts color features in HSV with the histogram
//! "divided into 20, 20, and 10 bins in H, S, and V respectively"; the
//! default [`ColorHistogramExtractor`] reproduces exactly that layout
//! (concatenated marginal histograms, L1-normalized).

use crate::image::Image;
use crate::{FeatureExtractor, FeatureKind};

/// Converts an RGB pixel (0–255) to HSV: hue in `[0, 360)`, saturation and
/// value in `[0, 1]`.
pub fn rgb_to_hsv(rgb: [u8; 3]) -> (f32, f32, f32) {
    let r = rgb[0] as f32 / 255.0;
    let g = rgb[1] as f32 / 255.0;
    let b = rgb[2] as f32 / 255.0;
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let delta = max - min;
    let h = if delta == 0.0 {
        0.0
    } else if max == r {
        60.0 * (((g - b) / delta).rem_euclid(6.0))
    } else if max == g {
        60.0 * ((b - r) / delta + 2.0)
    } else {
        60.0 * ((r - g) / delta + 4.0)
    };
    let s = if max == 0.0 { 0.0 } else { delta / max };
    (h.rem_euclid(360.0), s, max)
}

/// HSV marginal color-histogram extractor.
#[derive(Debug, Clone)]
pub struct ColorHistogramExtractor {
    h_bins: usize,
    s_bins: usize,
    v_bins: usize,
}

impl ColorHistogramExtractor {
    /// The paper's configuration: 20 hue, 20 saturation, 10 value bins.
    pub fn paper_default() -> Self {
        Self::new(20, 20, 10)
    }

    /// Custom bin counts; each must be positive.
    pub fn new(h_bins: usize, s_bins: usize, v_bins: usize) -> Self {
        assert!(h_bins > 0 && s_bins > 0 && v_bins > 0, "zero bins");
        Self {
            h_bins,
            s_bins,
            v_bins,
        }
    }
}

impl FeatureExtractor for ColorHistogramExtractor {
    fn dim(&self) -> usize {
        self.h_bins + self.s_bins + self.v_bins
    }

    fn kind(&self) -> FeatureKind {
        FeatureKind::ColorHistogram
    }

    fn extract(&self, image: &Image) -> Vec<f32> {
        let mut hist = vec![0.0f32; self.dim()];
        let (hb, sb, vb) = (self.h_bins, self.s_bins, self.v_bins);
        for y in 0..image.height() {
            for x in 0..image.width() {
                let (h, s, v) = rgb_to_hsv(image.get(x, y));
                let hi = ((h / 360.0 * hb as f32) as usize).min(hb - 1);
                let si = ((s * sb as f32) as usize).min(sb - 1);
                let vi = ((v * vb as f32) as usize).min(vb - 1);
                hist[hi] += 1.0;
                hist[hb + si] += 1.0;
                hist[hb + sb + vi] += 1.0;
            }
        }
        // Each marginal sums to the pixel count; L1-normalize the whole
        // vector so images of different sizes are comparable.
        // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
        let total: f32 = hist.iter().sum();
        if total > 0.0 {
            for h in &mut hist {
                *h /= total;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_hsv_conversions() {
        // Pure red.
        let (h, s, v) = rgb_to_hsv([255, 0, 0]);
        assert!((h - 0.0).abs() < 1e-3 && (s - 1.0).abs() < 1e-6 && (v - 1.0).abs() < 1e-6);
        // Pure green.
        let (h, _, _) = rgb_to_hsv([0, 255, 0]);
        assert!((h - 120.0).abs() < 1e-3);
        // Pure blue.
        let (h, _, _) = rgb_to_hsv([0, 0, 255]);
        assert!((h - 240.0).abs() < 1e-3);
        // Gray: zero saturation.
        let (_, s, v) = rgb_to_hsv([128, 128, 128]);
        assert_eq!(s, 0.0);
        assert!((v - 128.0 / 255.0).abs() < 1e-3);
        // Black.
        let (_, s, v) = rgb_to_hsv([0, 0, 0]);
        assert_eq!((s, v), (0.0, 0.0));
    }

    #[test]
    fn hsv_ranges_hold_for_all_corners() {
        for r in [0u8, 127, 255] {
            for g in [0u8, 127, 255] {
                for b in [0u8, 127, 255] {
                    let (h, s, v) = rgb_to_hsv([r, g, b]);
                    assert!((0.0..360.0).contains(&h), "h={h}");
                    assert!((0.0..=1.0).contains(&s));
                    assert!((0.0..=1.0).contains(&v));
                }
            }
        }
    }

    #[test]
    fn paper_default_dim() {
        let e = ColorHistogramExtractor::paper_default();
        assert_eq!(e.dim(), 50);
        assert_eq!(e.kind(), FeatureKind::ColorHistogram);
    }

    #[test]
    fn histogram_normalized_and_localized() {
        let e = ColorHistogramExtractor::paper_default();
        // All-red image: hue bin 0 gets every pixel.
        let img = Image::from_fn(8, 8, |_, _| [255, 0, 0]);
        let h = e.extract(&img);
        assert!((h.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!((h[0] - 1.0 / 3.0).abs() < 1e-5, "hue bin share {}", h[0]);
        // Saturation 1.0 lands in the last S bin, value 1.0 in the last V bin.
        assert!((h[20 + 19] - 1.0 / 3.0).abs() < 1e-5);
        assert!((h[40 + 9] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn different_colors_produce_different_histograms() {
        let e = ColorHistogramExtractor::paper_default();
        let red = e.extract(&Image::from_fn(4, 4, |_, _| [255, 0, 0]));
        let green = e.extract(&Image::from_fn(4, 4, |_, _| [0, 255, 0]));
        assert_ne!(red, green);
    }

    #[test]
    fn histogram_size_invariant() {
        let e = ColorHistogramExtractor::new(5, 5, 5);
        let small = e.extract(&Image::from_fn(4, 4, |_, _| [10, 200, 60]));
        let big = e.extract(&Image::from_fn(32, 32, |_, _| [10, 200, 60]));
        for (a, b) in small.iter().zip(&big) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
