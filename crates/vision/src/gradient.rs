//! Grayscale buffers, Gaussian smoothing, and Sobel gradients.
//!
//! Shared plumbing for the SIFT-style detector and the CNN extractor.

/// A row-major grayscale image with `f32` samples.
#[derive(Debug, Clone)]
pub struct GrayImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Samples, row-major, length `width * height`.
    pub data: Vec<f32>,
}

impl GrayImage {
    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != width * height`.
    pub fn new(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "buffer size mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// A zero-filled buffer.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Sample at `(x, y)` with clamped coordinates.
    #[inline]
    pub fn get(&self, x: isize, y: isize) -> f32 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Sets sample at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        self.data[y * self.width + x] = v;
    }
}

/// 1-D Gaussian kernel with the given sigma, truncated at 3σ, normalized.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as isize;
    let mut k: Vec<f32> = (-radius..=radius)
        .map(|i| (-(i as f32).powi(2) / (2.0 * sigma * sigma)).exp())
        .collect();
    // tvdp-lint: allow(float_reduction, reason = "sequential iterator reduction in fixed index order; single-threaded, bit-stable across runs and thread counts")
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Separable Gaussian blur.
pub fn gaussian_blur(src: &GrayImage, sigma: f32) -> GrayImage {
    let kernel = gaussian_kernel(sigma);
    let radius = (kernel.len() / 2) as isize;
    // Horizontal pass.
    let mut tmp = GrayImage::zeros(src.width, src.height);
    for y in 0..src.height {
        for x in 0..src.width {
            let mut acc = 0.0;
            for (i, &w) in kernel.iter().enumerate() {
                // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
                acc += w * src.get(x as isize + i as isize - radius, y as isize);
            }
            tmp.set(x, y, acc);
        }
    }
    // Vertical pass.
    let mut out = GrayImage::zeros(src.width, src.height);
    for y in 0..src.height {
        for x in 0..src.width {
            let mut acc = 0.0;
            for (i, &w) in kernel.iter().enumerate() {
                // tvdp-lint: allow(float_reduction, reason = "in-order loop accumulation over a fixed traversal; single-threaded, bit-stable across runs and thread counts")
                acc += w * tmp.get(x as isize, y as isize + i as isize - radius);
            }
            out.set(x, y, acc);
        }
    }
    out
}

/// Sobel gradients: returns `(gx, gy)` buffers.
pub fn sobel(src: &GrayImage) -> (GrayImage, GrayImage) {
    let mut gx = GrayImage::zeros(src.width, src.height);
    let mut gy = GrayImage::zeros(src.width, src.height);
    for y in 0..src.height {
        for x in 0..src.width {
            let (xi, yi) = (x as isize, y as isize);
            let tl = src.get(xi - 1, yi - 1);
            let tc = src.get(xi, yi - 1);
            let tr = src.get(xi + 1, yi - 1);
            let ml = src.get(xi - 1, yi);
            let mr = src.get(xi + 1, yi);
            let bl = src.get(xi - 1, yi + 1);
            let bc = src.get(xi, yi + 1);
            let br = src.get(xi + 1, yi + 1);
            gx.set(x, y, (tr + 2.0 * mr + br) - (tl + 2.0 * ml + bl));
            gy.set(x, y, (bl + 2.0 * bc + br) - (tl + 2.0 * tc + tr));
        }
    }
    (gx, gy)
}

/// Gradient magnitude and orientation (radians, `[-π, π]`) at one pixel.
#[inline]
pub fn mag_ori(gx: f32, gy: f32) -> (f32, f32) {
    ((gx * gx + gy * gy).sqrt(), gy.atan2(gx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_normalized_and_symmetric() {
        let k = gaussian_kernel(1.5);
        assert!((k.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        let n = k.len();
        for i in 0..n / 2 {
            assert!((k[i] - k[n - 1 - i]).abs() < 1e-6);
        }
        // Peak at centre.
        assert!(k[n / 2] >= *k.iter().fold(&0.0f32, |a, b| if b > a { b } else { a }) - 1e-6);
    }

    #[test]
    fn blur_preserves_constant_image() {
        let img = GrayImage::new(8, 8, vec![0.5; 64]);
        let b = gaussian_blur(&img, 1.2);
        for v in &b.data {
            assert!((v - 0.5).abs() < 1e-5);
        }
    }

    #[test]
    fn blur_reduces_peak() {
        let mut img = GrayImage::zeros(9, 9);
        img.set(4, 4, 1.0);
        let b = gaussian_blur(&img, 1.0);
        assert!(b.get(4, 4) < 0.5);
        assert!(b.get(4, 4) > b.get(0, 0));
        // Mass roughly preserved (interior impulse, truncation loss small).
        let sum: f32 = b.data.iter().sum();
        assert!((sum - 1.0).abs() < 0.01, "sum {sum}");
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        // Left half dark, right half bright: strong gx, zero gy.
        let img = GrayImage::new(
            8,
            8,
            (0..64).map(|i| if i % 8 < 4 { 0.0 } else { 1.0 }).collect(),
        );
        let (gx, gy) = sobel(&img);
        assert!(gx.get(3, 4).abs() > 1.0);
        assert!(gy.get(3, 4).abs() < 1e-5);
    }

    #[test]
    fn mag_ori_basics() {
        let (m, o) = mag_ori(1.0, 0.0);
        assert!((m - 1.0).abs() < 1e-6);
        assert!(o.abs() < 1e-6);
        let (m2, o2) = mag_ori(0.0, 2.0);
        assert!((m2 - 2.0).abs() < 1e-6);
        assert!((o2 - std::f32::consts::FRAC_PI_2).abs() < 1e-6);
    }
}
