//! In-memory RGB images.

use serde::{Deserialize, Serialize};

/// An 8-bit RGB raster image, row-major, interleaved channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Image {
    /// A black image of the given size.
    ///
    /// # Panics
    ///
    /// Panics on zero width or height.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "degenerate image {width}x{height}");
        Self {
            width,
            height,
            data: vec![0; width * height * 3],
        }
    }

    /// Builds an image by evaluating `f(x, y) -> [r, g, b]` per pixel.
    pub fn from_fn<F: FnMut(usize, usize) -> [u8; 3]>(
        width: usize,
        height: usize,
        mut f: F,
    ) -> Self {
        let mut img = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Reconstructs an image from raw interleaved RGB bytes.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != width * height * 3`.
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "degenerate image {width}x{height}");
        assert_eq!(data.len(), width * height * 3, "raw buffer size mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw interleaved RGB bytes.
    pub fn raw(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the image, returning its raw bytes.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y * self.width + x) * 3
    }

    /// Pixel at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        let i = self.idx(x, y);
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Sets pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        let i = self.idx(x, y);
        self.data[i] = rgb[0];
        self.data[i + 1] = rgb[1];
        self.data[i + 2] = rgb[2];
    }

    /// Pixel with coordinates clamped to the image bounds.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> [u8; 3] {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.get(cx, cy)
    }

    /// Luminance (Rec. 601) in `[0, 1]` as a row-major buffer.
    pub fn to_gray(&self) -> Vec<f32> {
        self.data
            .chunks_exact(3)
            .map(|px| (0.299 * px[0] as f32 + 0.587 * px[1] as f32 + 0.114 * px[2] as f32) / 255.0)
            .collect()
    }

    /// Bilinear resize to `(new_w, new_h)`.
    pub fn resize(&self, new_w: usize, new_h: usize) -> Image {
        assert!(new_w > 0 && new_h > 0, "degenerate target size");
        let mut out = Image::new(new_w, new_h);
        let sx = self.width as f32 / new_w as f32;
        let sy = self.height as f32 / new_h as f32;
        for y in 0..new_h {
            for x in 0..new_w {
                let fx = (x as f32 + 0.5) * sx - 0.5;
                let fy = (y as f32 + 0.5) * sy - 0.5;
                let x0 = fx.floor() as isize;
                let y0 = fy.floor() as isize;
                let dx = fx - x0 as f32;
                let dy = fy - y0 as f32;
                let mut px = [0u8; 3];
                let p00 = self.get_clamped(x0, y0);
                let p10 = self.get_clamped(x0 + 1, y0);
                let p01 = self.get_clamped(x0, y0 + 1);
                let p11 = self.get_clamped(x0 + 1, y0 + 1);
                for (c, out) in px.iter_mut().enumerate() {
                    let v = p00[c] as f32 * (1.0 - dx) * (1.0 - dy)
                        + p10[c] as f32 * dx * (1.0 - dy)
                        + p01[c] as f32 * (1.0 - dx) * dy
                        + p11[c] as f32 * dx * dy;
                    *out = v.round().clamp(0.0, 255.0) as u8;
                }
                out.set(x, y, px);
            }
        }
        out
    }

    /// Crops the rectangle `[x, x+w) x [y, y+h)`.
    ///
    /// # Panics
    ///
    /// Panics when the rectangle exceeds the image bounds.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Image {
        assert!(w > 0 && h > 0, "degenerate crop");
        assert!(
            x + w <= self.width && y + h <= self.height,
            "crop out of bounds"
        );
        Image::from_fn(w, h, |cx, cy| self.get(x + cx, y + cy))
    }

    /// Mean per-channel value, useful for exposure statistics.
    pub fn mean_rgb(&self) -> [f32; 3] {
        let mut acc = [0.0f64; 3];
        for px in self.data.chunks_exact(3) {
            for c in 0..3 {
                acc[c] += px[c] as f64;
            }
        }
        let n = (self.width * self.height) as f64;
        [
            (acc[0] / n) as f32,
            (acc[1] / n) as f32,
            (acc[2] / n) as f32,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::new(4, 3);
        img.set(2, 1, [10, 20, 30]);
        assert_eq!(img.get(2, 1), [10, 20, 30]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn from_fn_layout() {
        let img = Image::from_fn(3, 2, |x, y| [x as u8, y as u8, 0]);
        assert_eq!(img.get(2, 1), [2, 1, 0]);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
    }

    #[test]
    fn raw_roundtrip() {
        let img = Image::from_fn(2, 2, |x, y| [(x * 50) as u8, (y * 50) as u8, 7]);
        let raw = img.clone().into_raw();
        let back = Image::from_raw(2, 2, raw);
        assert_eq!(back, img);
    }

    #[test]
    fn gray_range_and_extremes() {
        let mut img = Image::new(2, 1);
        img.set(0, 0, [255, 255, 255]);
        let g = img.to_gray();
        assert!((g[0] - 1.0).abs() < 1e-5);
        assert_eq!(g[1], 0.0);
    }

    #[test]
    fn resize_preserves_constant_image() {
        let img = Image::from_fn(8, 8, |_, _| [100, 150, 200]);
        let r = img.resize(4, 4);
        assert_eq!(r.width(), 4);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(r.get(x, y), [100, 150, 200]);
            }
        }
        // Upscale too.
        let up = img.resize(16, 16);
        assert_eq!(up.get(8, 8), [100, 150, 200]);
    }

    #[test]
    fn resize_interpolates_gradient() {
        let img = Image::from_fn(10, 1, |x, _| [(x * 25) as u8, 0, 0]);
        let r = img.resize(5, 1);
        // Red channel should remain monotone.
        let reds: Vec<u8> = (0..5).map(|x| r.get(x, 0)[0]).collect();
        assert!(reds.windows(2).all(|w| w[0] <= w[1]), "{reds:?}");
    }

    #[test]
    fn crop_extracts_region() {
        let img = Image::from_fn(6, 6, |x, y| [(x + 10 * y) as u8, 0, 0]);
        let c = img.crop(2, 3, 2, 2);
        assert_eq!(c.get(0, 0)[0], (2 + 30) as u8);
        assert_eq!(c.get(1, 1)[0], (3 + 40) as u8);
    }

    #[test]
    #[should_panic(expected = "crop out of bounds")]
    fn crop_rejects_overflow() {
        let img = Image::new(4, 4);
        let _ = img.crop(2, 2, 4, 1);
    }

    #[test]
    fn mean_rgb_of_known_image() {
        let img = Image::from_fn(2, 1, |x, _| if x == 0 { [0, 0, 0] } else { [200, 100, 50] });
        let m = img.mean_rgb();
        assert_eq!(m, [100.0, 50.0, 25.0]);
    }
}
