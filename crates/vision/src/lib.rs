//! Visual substrate for the Translational Visual Data Platform.
//!
//! Implements the *visual descriptors* of the TVDP data model (paper
//! Section IV-A) as genuine pixel-level computation:
//!
//! * [`color::ColorHistogramExtractor`] — HSV color histogram with the
//!   paper's 20/20/10 bin layout,
//! * [`sift`] + [`bow`] — a SIFT-style keypoint detector/descriptor and a
//!   k-means bag-of-visual-words encoder (the paper clusters SIFT key
//!   points into a 1000-word dictionary),
//! * [`cnn::CnnExtractor`] — a seeded random-convolution network producing
//!   dense embeddings (the stand-in for the paper's fine-tuned Caffe CNN;
//!   see DESIGN.md for the substitution argument),
//! * [`augment`] — the image-augmentation operators the paper's storage
//!   layer tracks as *augmented* (vs original) visual data.
//!
//! All extractors implement [`FeatureExtractor`] so the analysis and
//! platform layers can treat feature families uniformly.

pub mod augment;
pub mod bow;
pub mod cnn;
pub mod color;
pub mod gradient;
pub mod image;
pub mod sift;

pub use augment::Augmentation;
pub use bow::BowEncoder;
pub use cnn::{CnnConfig, CnnExtractor};
pub use color::{rgb_to_hsv, ColorHistogramExtractor};
pub use image::Image;
pub use sift::{Keypoint, SiftConfig, SiftExtractor};

use serde::{Deserialize, Serialize};

/// The feature families of the paper's evaluation (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// HSV color histogram.
    ColorHistogram,
    /// SIFT bag-of-visual-words.
    SiftBow,
    /// CNN embedding.
    Cnn,
}

impl FeatureKind {
    /// Display name matching the paper's figure labels.
    pub fn label(&self) -> &'static str {
        match self {
            FeatureKind::ColorHistogram => "Color Histogram",
            FeatureKind::SiftBow => "SIFT-BoW",
            FeatureKind::Cnn => "CNN",
        }
    }
}

/// Extracts a fixed-dimensional feature vector from an image.
pub trait FeatureExtractor {
    /// Output dimensionality (constant per extractor instance).
    fn dim(&self) -> usize;

    /// Which feature family this extractor produces.
    fn kind(&self) -> FeatureKind;

    /// Computes the feature vector; output length equals [`Self::dim`].
    fn extract(&self, image: &Image) -> Vec<f32>;

    /// Extracts features for a batch of images.
    fn extract_batch(&self, images: &[Image]) -> Vec<Vec<f32>> {
        images.iter().map(|img| self.extract(img)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_kind_labels() {
        assert_eq!(FeatureKind::ColorHistogram.label(), "Color Histogram");
        assert_eq!(FeatureKind::SiftBow.label(), "SIFT-BoW");
        assert_eq!(FeatureKind::Cnn.label(), "CNN");
    }
}
