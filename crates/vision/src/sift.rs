//! SIFT-style keypoint detection and description.
//!
//! A compact re-implementation of the pipeline the paper uses for its
//! SIFT-BoW features: difference-of-Gaussians keypoint detection on a
//! small scale stack, dominant-orientation assignment, and the classic
//! 4×4-cell × 8-orientation-bin = 128-dimensional gradient descriptor
//! (Lowe 2004), with descriptor normalization and the 0.2 clamping step.

use crate::gradient::{gaussian_blur, mag_ori, sobel, GrayImage};
use crate::image::Image;

/// Detector/descriptor configuration.
#[derive(Debug, Clone, Copy)]
pub struct SiftConfig {
    /// Base smoothing sigma.
    pub base_sigma: f32,
    /// Multiplicative sigma step between stack levels.
    pub sigma_step: f32,
    /// Number of Gaussian levels (yields `levels - 1` DoG layers).
    pub levels: usize,
    /// Absolute DoG response threshold for a keypoint.
    pub contrast_threshold: f32,
    /// Keep at most this many strongest keypoints per image.
    pub max_keypoints: usize,
}

impl Default for SiftConfig {
    fn default() -> Self {
        Self {
            base_sigma: 1.0,
            sigma_step: 1.6,
            levels: 4,
            contrast_threshold: 0.015,
            max_keypoints: 120,
        }
    }
}

/// A detected interest point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Keypoint {
    /// Column in pixels.
    pub x: usize,
    /// Row in pixels.
    pub y: usize,
    /// Index of the DoG layer the extremum was found in.
    pub scale: usize,
    /// Absolute DoG response (strength).
    pub response: f32,
    /// Dominant gradient orientation in radians.
    pub orientation: f32,
}

/// SIFT-style extractor producing 128-d descriptors.
#[derive(Debug, Clone, Default)]
pub struct SiftExtractor {
    config: SiftConfig,
}

/// Dimensionality of a single SIFT descriptor (4×4 cells × 8 bins).
pub const DESCRIPTOR_DIM: usize = 128;

impl SiftExtractor {
    /// Extractor with default configuration.
    pub fn new() -> Self {
        Self {
            config: SiftConfig::default(),
        }
    }

    /// Extractor with explicit configuration.
    pub fn with_config(config: SiftConfig) -> Self {
        assert!(config.levels >= 3, "need at least 3 levels for DoG extrema");
        assert!(config.sigma_step > 1.0, "sigma step must exceed 1");
        Self { config }
    }

    /// Detects keypoints in an image.
    pub fn detect(&self, image: &Image) -> Vec<Keypoint> {
        let gray = GrayImage::new(image.width(), image.height(), image.to_gray());
        let (stack, dogs) = self.build_scale_space(&gray);
        let mut kps = self.find_extrema(&dogs);
        // Orientation from the blur level nearest each keypoint's scale.
        for kp in &mut kps {
            kp.orientation = Self::dominant_orientation(&stack[kp.scale + 1], kp.x, kp.y);
        }
        kps.sort_by(|a, b| b.response.total_cmp(&a.response));
        kps.truncate(self.config.max_keypoints);
        kps
    }

    /// Detects keypoints and computes their 128-d descriptors.
    pub fn detect_and_describe(&self, image: &Image) -> Vec<(Keypoint, Vec<f32>)> {
        let gray = GrayImage::new(image.width(), image.height(), image.to_gray());
        let (stack, dogs) = self.build_scale_space(&gray);
        let mut kps = self.find_extrema(&dogs);
        for kp in &mut kps {
            kp.orientation = Self::dominant_orientation(&stack[kp.scale + 1], kp.x, kp.y);
        }
        kps.sort_by(|a, b| b.response.total_cmp(&a.response));
        kps.truncate(self.config.max_keypoints);
        kps.into_iter()
            .map(|kp| {
                let desc = Self::describe(&stack[kp.scale + 1], &kp);
                (kp, desc)
            })
            .collect()
    }

    fn build_scale_space(&self, gray: &GrayImage) -> (Vec<GrayImage>, Vec<GrayImage>) {
        let mut stack = Vec::with_capacity(self.config.levels);
        let mut sigma = self.config.base_sigma;
        for _ in 0..self.config.levels {
            stack.push(gaussian_blur(gray, sigma));
            sigma *= self.config.sigma_step;
        }
        let dogs: Vec<GrayImage> = stack
            .windows(2)
            .map(|w| {
                let mut d = GrayImage::zeros(gray.width, gray.height);
                for i in 0..d.data.len() {
                    d.data[i] = w[1].data[i] - w[0].data[i];
                }
                d
            })
            .collect();
        (stack, dogs)
    }

    /// Local extrema in scale space. Simplification relative to full SIFT:
    /// a keypoint must be a *strict* extremum in its 8-neighbourhood within
    /// one DoG layer and dominate (non-strictly) the same pixel in the
    /// adjacent layers. The non-strict scale test keeps blob centres whose
    /// scale response is monotone over our short scale stack.
    fn find_extrema(&self, dogs: &[GrayImage]) -> Vec<Keypoint> {
        let mut kps = Vec::new();
        let threshold = self.config.contrast_threshold;
        for s in 1..dogs.len() - 1 {
            let (w, h) = (dogs[s].width, dogs[s].height);
            for y in 1..h.saturating_sub(1) {
                for x in 1..w.saturating_sub(1) {
                    let v = dogs[s].get(x as isize, y as isize);
                    if v.abs() < threshold {
                        continue;
                    }
                    let mut is_max = true;
                    let mut is_min = true;
                    'nbr: for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            if dy == 0 && dx == 0 {
                                continue;
                            }
                            let n = dogs[s].get(x as isize + dx, y as isize + dy);
                            if n >= v {
                                is_max = false;
                            }
                            if n <= v {
                                is_min = false;
                            }
                            if !is_max && !is_min {
                                break 'nbr;
                            }
                        }
                    }
                    if !is_max && !is_min {
                        continue;
                    }
                    let below = dogs[s - 1].get(x as isize, y as isize);
                    let above = dogs[s + 1].get(x as isize, y as isize);
                    let scale_ok = if is_max {
                        v >= below && v >= above
                    } else {
                        v <= below && v <= above
                    };
                    if scale_ok {
                        kps.push(Keypoint {
                            x,
                            y,
                            scale: s,
                            response: v.abs(),
                            orientation: 0.0,
                        });
                    }
                }
            }
        }
        kps
    }

    /// Peak of a 36-bin gradient-orientation histogram around `(x, y)`.
    fn dominant_orientation(level: &GrayImage, x: usize, y: usize) -> f32 {
        const BINS: usize = 36;
        let mut hist = [0.0f32; BINS];
        let radius = 6isize;
        let (gx_img, gy_img) = sobel(level);
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                let (px, py) = (x as isize + dx, y as isize + dy);
                let (m, o) = mag_ori(gx_img.get(px, py), gy_img.get(px, py));
                let w =
                    (-((dx * dx + dy * dy) as f32) / (2.0 * (radius as f32 / 2.0).powi(2))).exp();
                let bin =
                    (((o + std::f32::consts::PI) / (2.0 * std::f32::consts::PI) * BINS as f32)
                        as usize)
                        .min(BINS - 1);
                hist[bin] += m * w;
            }
        }
        let best = hist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        (best as f32 + 0.5) / BINS as f32 * 2.0 * std::f32::consts::PI - std::f32::consts::PI
    }

    /// The 4×4×8 gradient-histogram descriptor, rotated to the keypoint
    /// orientation, normalized with 0.2 clamping.
    fn describe(level: &GrayImage, kp: &Keypoint) -> Vec<f32> {
        const CELLS: usize = 4;
        const OBINS: usize = 8;
        const PATCH: isize = 8; // half-width: 16x16 patch
        let mut desc = vec![0.0f32; CELLS * CELLS * OBINS];
        let (sin_o, cos_o) = kp.orientation.sin_cos();
        let (gx_img, gy_img) = sobel(level);
        for dy in -PATCH..PATCH {
            for dx in -PATCH..PATCH {
                // Rotate the sample offset into the keypoint frame.
                let rx = cos_o * dx as f32 + sin_o * dy as f32;
                let ry = -sin_o * dx as f32 + cos_o * dy as f32;
                let cell_x = ((rx + PATCH as f32) / (2.0 * PATCH as f32) * CELLS as f32)
                    .floor()
                    .clamp(0.0, (CELLS - 1) as f32) as usize;
                let cell_y = ((ry + PATCH as f32) / (2.0 * PATCH as f32) * CELLS as f32)
                    .floor()
                    .clamp(0.0, (CELLS - 1) as f32) as usize;
                let (px, py) = (kp.x as isize + dx, kp.y as isize + dy);
                let (m, o) = mag_ori(gx_img.get(px, py), gy_img.get(px, py));
                let rel = o - kp.orientation;
                let rel = rel.rem_euclid(2.0 * std::f32::consts::PI);
                let bin =
                    ((rel / (2.0 * std::f32::consts::PI) * OBINS as f32) as usize).min(OBINS - 1);
                desc[(cell_y * CELLS + cell_x) * OBINS + bin] += m;
            }
        }
        // Normalize, clamp at 0.2, renormalize (illumination robustness).
        normalize(&mut desc);
        for v in &mut desc {
            *v = v.min(0.2);
        }
        normalize(&mut desc);
        desc
    }
}

use tvdp_kernel::normalize;

#[cfg(test)]
mod tests {
    use super::*;

    /// An image with a bright blob on dark background — a classic corner-rich
    /// target for DoG detection.
    fn blob_image() -> Image {
        Image::from_fn(48, 48, |x, y| {
            let dx = x as f32 - 24.0;
            let dy = y as f32 - 24.0;
            let d = (dx * dx + dy * dy).sqrt();
            if d < 6.0 {
                [255, 255, 255]
            } else {
                [20, 20, 20]
            }
        })
    }

    #[test]
    fn flat_image_has_no_keypoints() {
        let img = Image::from_fn(48, 48, |_, _| [128, 128, 128]);
        let kps = SiftExtractor::new().detect(&img);
        assert!(
            kps.is_empty(),
            "found {} keypoints on flat image",
            kps.len()
        );
    }

    #[test]
    fn blob_yields_keypoints_near_center() {
        let kps = SiftExtractor::new().detect(&blob_image());
        assert!(!kps.is_empty(), "no keypoints detected");
        let near = kps
            .iter()
            .any(|kp| (kp.x as f32 - 24.0).abs() < 8.0 && (kp.y as f32 - 24.0).abs() < 8.0);
        assert!(near, "no keypoint near the blob: {kps:?}");
    }

    #[test]
    fn descriptors_are_unit_norm_128d() {
        let pairs = SiftExtractor::new().detect_and_describe(&blob_image());
        assert!(!pairs.is_empty());
        for (_, d) in &pairs {
            assert_eq!(d.len(), DESCRIPTOR_DIM);
            let norm: f32 = d.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-3, "norm {norm}");
            assert!(d.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn keypoints_sorted_by_response_and_capped() {
        let config = SiftConfig {
            max_keypoints: 5,
            ..Default::default()
        };
        let kps = SiftExtractor::with_config(config).detect(&blob_image());
        assert!(kps.len() <= 5);
        for w in kps.windows(2) {
            assert!(w[0].response >= w[1].response);
        }
    }

    #[test]
    fn higher_threshold_fewer_keypoints() {
        let img = blob_image();
        let loose = SiftExtractor::with_config(SiftConfig {
            contrast_threshold: 0.005,
            ..Default::default()
        })
        .detect(&img)
        .len();
        let strict = SiftExtractor::with_config(SiftConfig {
            contrast_threshold: 0.08,
            ..Default::default()
        })
        .detect(&img)
        .len();
        assert!(strict <= loose, "strict {strict} > loose {loose}");
    }

    #[test]
    fn descriptor_similar_under_small_shift() {
        // The descriptor of the blob centre should resemble the descriptor
        // of the same blob shifted by two pixels.
        let a = blob_image();
        let b = Image::from_fn(48, 48, |x, y| a.get_clamped(x as isize - 2, y as isize));
        let ea = SiftExtractor::new().detect_and_describe(&a);
        let eb = SiftExtractor::new().detect_and_describe(&b);
        let (_, da) = &ea[0];
        let (_, db) = &eb[0];
        let dot: f32 = da.iter().zip(db.iter()).map(|(x, y)| x * y).sum();
        assert!(dot > 0.5, "shift destroyed descriptor similarity: {dot}");
    }
}
