//! Property-based tests of the visual substrate.

use proptest::prelude::*;
use tvdp_vision::{rgb_to_hsv, Augmentation, ColorHistogramExtractor, FeatureExtractor, Image};

fn arb_image() -> impl Strategy<Value = Image> {
    (4usize..24, 4usize..24, any::<u64>()).prop_map(|(w, h, seed)| {
        Image::from_fn(w, h, |x, y| {
            // SplitMix-style deterministic pixels.
            let mut z = seed ^ ((x as u64) << 32) ^ (y as u64);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            [(z >> 8) as u8, (z >> 24) as u8, (z >> 40) as u8]
        })
    })
}

proptest! {
    #[test]
    fn hsv_in_range_for_all_pixels(r in 0u8..=255, g in 0u8..=255, b in 0u8..=255) {
        let (h, s, v) = rgb_to_hsv([r, g, b]);
        prop_assert!((0.0..360.0).contains(&h));
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((0.0..=1.0).contains(&v));
        // Achromatic pixels have zero saturation.
        if r == g && g == b {
            prop_assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn color_histogram_invariant_under_flips(img in arb_image()) {
        // Flips and rotations permute pixels, never change them, so the
        // color histogram must be bit-identical.
        let extractor = ColorHistogramExtractor::new(8, 8, 8);
        let base = extractor.extract(&img);
        for op in [
            Augmentation::FlipHorizontal,
            Augmentation::FlipVertical,
            Augmentation::Rotate90,
            Augmentation::Rotate180,
            Augmentation::Rotate270,
        ] {
            let transformed = extractor.extract(&op.apply(&img));
            prop_assert_eq!(&base, &transformed, "histogram changed under {:?}", op);
        }
    }

    #[test]
    fn histogram_l1_normalized(img in arb_image()) {
        let extractor = ColorHistogramExtractor::paper_default();
        let h = extractor.extract(&img);
        prop_assert_eq!(h.len(), 50);
        let sum: f32 = h.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {}", sum);
        prop_assert!(h.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn flips_are_involutions(img in arb_image()) {
        for op in [Augmentation::FlipHorizontal, Augmentation::FlipVertical, Augmentation::Rotate180] {
            prop_assert_eq!(op.apply(&op.apply(&img)), img.clone(), "{:?} not an involution", op);
        }
    }

    #[test]
    fn rotations_preserve_pixel_multiset(img in arb_image()) {
        let mut base: Vec<[u8; 3]> = Vec::new();
        for y in 0..img.height() {
            for x in 0..img.width() {
                base.push(img.get(x, y));
            }
        }
        base.sort_unstable();
        let rotated = Augmentation::Rotate90.apply(&img);
        let mut rot: Vec<[u8; 3]> = Vec::new();
        for y in 0..rotated.height() {
            for x in 0..rotated.width() {
                rot.push(rotated.get(x, y));
            }
        }
        rot.sort_unstable();
        prop_assert_eq!(base, rot);
    }

    #[test]
    fn brightness_monotone(img in arb_image(), delta in 1i16..80) {
        let brighter = Augmentation::Brightness { delta }.apply(&img);
        for (a, b) in img.raw().iter().zip(brighter.raw()) {
            prop_assert!(b >= a, "brightness lowered a pixel");
        }
        let darker = Augmentation::Brightness { delta: -delta }.apply(&img);
        for (a, b) in img.raw().iter().zip(darker.raw()) {
            prop_assert!(b <= a, "darkening raised a pixel");
        }
    }

    #[test]
    fn resize_preserves_value_range(img in arb_image(), w in 2usize..32, h in 2usize..32) {
        let resized = img.resize(w, h);
        prop_assert_eq!(resized.width(), w);
        prop_assert_eq!(resized.height(), h);
        let (min, max) = img.raw().iter().fold((255u8, 0u8), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        // Bilinear interpolation cannot exceed the source extremes.
        for &v in resized.raw() {
            prop_assert!(v >= min && v <= max, "{v} outside [{min}, {max}]");
        }
    }
}
