//! Fixture: the conforming counterpart of `l4_transport_wall_clock.rs`
//! — a miniature retry loop on a caller-advanced virtual clock with a
//! seeded RNG, the shape `tvdp_edge::transport` actually uses. The
//! linter must pass it with no findings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Virtual milliseconds; advanced explicitly, never read from the host.
#[derive(Debug, Clone, Copy)]
pub struct VirtualClock {
    now_ms: i64,
}

impl VirtualClock {
    /// A clock starting at `start_ms`.
    pub fn new(start_ms: i64) -> Self {
        VirtualClock { now_ms: start_ms }
    }

    /// The virtual analogue of sleeping.
    pub fn advance(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms as i64);
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> i64 {
        self.now_ms
    }
}

/// Seeded-jitter exponential backoff: replayable for a given seed.
pub fn backoff_ms(retry: u32, base_ms: u64, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed ^ retry as u64);
    let raw = base_ms.saturating_mul(1u64 << retry.min(16));
    let factor: f64 = rng.gen_range(0.8..1.2);
    (raw as f64 * factor) as u64
}

/// A retry loop that only ever advances the virtual clock.
pub fn drain_retries(clock: &mut VirtualClock, attempts: u32, base_ms: u64, seed: u64) -> i64 {
    for retry in 0..attempts {
        clock.advance(backoff_ms(retry, base_ms, seed));
    }
    clock.now_ms()
}
