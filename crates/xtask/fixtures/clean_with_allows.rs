//! Fixture: a file the linter must pass — conforming code plus
//! correctly annotated escape hatches.

use std::collections::{BTreeMap, HashMap};

/// Ordered collections keep iteration reproducible.
pub fn totals(by_key: BTreeMap<u64, f64>) -> Vec<(u64, f64)> {
    by_key.into_iter().collect()
}

/// Order-insensitive folds over hash maps are sound; the escape hatch
/// documents why.
pub fn sum(values: &HashMap<u64, f64>) -> f64 {
    // tvdp-lint: allow(determinism, reason = "addition order does not reach results after the final sort upstream")
    // tvdp-lint: allow(float_reduction, reason = "fixture exercises stacked allows; order is absorbed upstream")
    values.values().sum()
}

/// A documented invariant justifies an unwrap.
pub fn head(xs: &[u64]) -> u64 {
    let first = xs.first();
    // tvdp-lint: allow(no_panic, reason = "callers guarantee non-empty input; fixture exercises the escape hatch")
    *first.unwrap()
}
