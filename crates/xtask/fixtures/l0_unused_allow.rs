//! Fixture: L0 violation — a well-formed allow annotation whose rule
//! never fires on the annotated line. Stale suppressions would mask
//! the next real regression at that line, so they must be deleted.

/// The code below the allow is clean; the suppression is dead weight.
pub fn add_one(x: u64) -> u64 {
    // tvdp-lint: allow(no_panic, reason = "left behind after the unwrap was refactored away")
    x + 1
}
