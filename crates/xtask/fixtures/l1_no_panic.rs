//! Fixture: L1 no-panic violations. `cargo xtask lint` must exit
//! nonzero on this file.

/// Panics when the option is empty — forbidden in library code.
pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Panics with a message — also forbidden.
pub fn must(x: Option<u32>) -> u32 {
    x.expect("value required")
}

/// Unfinished code paths may not ship.
pub fn later() {
    todo!()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: this unwrap must NOT be flagged.
    #[test]
    fn in_tests_unwrap_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
