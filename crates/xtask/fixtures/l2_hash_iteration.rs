//! Fixture: L2 determinism violations — iterating hash collections
//! whose order can leak into results.

use std::collections::{HashMap, HashSet};

/// Iteration order of a `HashMap` is nondeterministic; collecting it
/// into an output vector leaks that order to callers.
pub fn scores_to_vec(scores: HashMap<u64, f64>) -> Vec<(u64, f64)> {
    scores.into_iter().collect()
}

/// Same bug class through a `for` loop over a `HashSet`.
pub fn first_ids(ids: HashSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for id in ids {
        out.push(id);
    }
    out
}

/// Lookup-only use is fine and must NOT be flagged.
pub fn lookup(m: &HashMap<u64, f64>, k: u64) -> Option<f64> {
    m.get(&k).copied()
}
