//! Fixture: L3 pool-only-threading violation — spawning threads
//! outside `tvdp-kernel` bypasses the deterministic work pool.

/// Ad-hoc threads make output placement depend on the scheduler.
pub fn fan_out(items: Vec<u64>) -> Vec<u64> {
    let handle = std::thread::spawn(move || items.into_iter().map(|x| x * 2).collect());
    handle.join().unwrap_or_default()
}
