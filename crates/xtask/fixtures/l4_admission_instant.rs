//! Fixture: L4 violations — wall-clock *types* with no `::now()` call
//! in sight. An admission ticket that stores an `Instant`, or a
//! deadline threaded through as `SystemTime`, smuggles host time into
//! the decision path just as surely as calling the clock inline; the
//! decisions stop replaying.

use std::time::{Duration, SystemTime};

/// Admission ticket stamped with a host-clock point instead of the
/// caller's virtual `now_ms`.
pub struct Ticket {
    pub admitted_at: std::time::Instant,
}

/// Deadline as a wall-clock point instead of virtual-clock ms.
pub fn push_deadline(start: SystemTime, budget_ms: u64) -> SystemTime {
    start + Duration::from_millis(budget_ms)
}
