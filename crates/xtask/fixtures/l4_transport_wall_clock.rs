//! Fixture: L4 violations in transport-shaped code — the exact
//! mistakes the resilience layer must not make. Retry timing read from
//! the host clock and jitter from an unseeded RNG would make a chaos
//! schedule unreplayable.

use std::time::{Instant, SystemTime};

/// Backoff deadline derived from the host clock.
pub fn retry_deadline_ms(budget_ms: u64) -> u64 {
    let started = Instant::now();
    budget_ms.saturating_sub(started.elapsed().as_millis() as u64)
}

/// Upload stamped with ambient wall-clock time.
pub fn stamp_upload() -> u64 {
    match SystemTime::now().elapsed() {
        Ok(d) => d.as_millis() as u64,
        Err(_) => 0,
    }
}

/// Jitter from an unseeded RNG differs per process.
pub fn backoff_jitter(base_ms: u64) -> u64 {
    let mut rng = rand::thread_rng();
    base_ms + rng.gen_range(0..base_ms.max(1))
}
