//! Fixture: L4 violations — ambient wall-clock time and randomness in
//! a result path make answers irreproducible.

use std::time::Instant;

/// Timing-dependent results cannot be replayed.
pub fn elapsed_score(base: f64) -> f64 {
    let t = Instant::now();
    base + t.elapsed().as_secs_f64()
}

/// Unseeded randomness differs per process.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}
