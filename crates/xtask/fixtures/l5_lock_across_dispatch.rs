//! Fixture: L5 violations — a lock guard held across a pool dispatch,
//! and a nested lock acquisition while another guard is live.

use parking_lot::Mutex;
use tvdp_kernel::Pool;

/// Holds the writer lock across a pool fan-out: the dispatch blocks on
/// worker threads while the guard serializes every one of them.
pub fn held_across_dispatch(state: &Mutex<Vec<u64>>, pool: &Pool) -> Vec<u64> {
    let guard = state.lock();
    pool.map_index(guard.len(), |i| guard[i] * 2)
}

/// Acquires `b` while `a`'s guard is still live — the ABBA half.
pub fn nested_acquisition(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let ga = a.lock();
    let gb = b.lock();
    *ga + *gb
}
