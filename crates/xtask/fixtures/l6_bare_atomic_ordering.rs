//! Fixture: L6 violation — explicit atomic orderings without the
//! mandatory reviewed `allow(atomic_ordering)` annotation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A bare `SeqCst` load: which fence semantics this site actually
/// needs was never reviewed.
pub fn unreviewed_load(x: &AtomicU64) -> u64 {
    x.load(Ordering::SeqCst)
}

/// A bare `Relaxed` store — cheap, but is relaxed actually sufficient
/// here? The annotation would have to say.
pub fn unreviewed_store(x: &AtomicU64, v: u64) {
    x.store(v, Ordering::Relaxed);
}

/// The reviewed form passes: ordering choice plus its justification.
pub fn reviewed_increment(x: &AtomicU64) -> u64 {
    // tvdp-lint: allow(atomic_ordering, reason = "counter is monotonic and read only after join; Relaxed suffices")
    x.fetch_add(1, Ordering::Relaxed)
}
