//! Fixture: L7 violations — ad-hoc floating-point reductions whose
//! result bits depend on traversal order.

/// Bare float sum.
pub fn mean(xs: &[f64]) -> f64 {
    let total: f64 = xs.iter().sum();
    total / xs.len() as f64
}

/// Fold with a float accumulator.
pub fn weighted(xs: &[f32], ws: &[f32]) -> f32 {
    xs.iter().zip(ws).fold(0.0, |acc, (x, w)| acc + x * w)
}

/// `+=` accumulation loop.
pub fn energy(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for x in xs {
        acc += x * x;
    }
    acc
}

/// Integer sums stay legal even when cast to float afterwards.
pub fn ratio(counts: &[usize]) -> f64 {
    (counts.iter().sum::<usize>() as f64) / counts.len() as f64
}

/// Order-insensitive min/max folds stay legal.
pub fn peak(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}
