//! `cargo xtask` — workspace automation for TVDP.
//!
//! The only subcommand today is `lint`, a dependency-free static
//! analysis pass enforcing the platform's four reproducibility
//! invariants (see [`rules`]): city-scale query serving needs answers
//! that are crash-free (L1), bit-reproducible across runs and thread
//! counts (L2, L3), and independent of ambient time/randomness (L4).
//!
//! Run as `cargo xtask lint` (whole workspace) or
//! `cargo xtask lint <file>...` (specific files, strict policy).

pub mod rules;
pub mod source;
pub mod walk;

use std::io;
use std::path::Path;

pub use rules::{Finding, Policy, Rule};
pub use source::SourceModel;
pub use walk::{lint_file, lint_workspace, policy_for, workspace_sources, FileFinding};

/// Runs the lint over the workspace (no file args) or the given files
/// (strict policy), printing findings to `out`. Returns the number of
/// findings.
pub fn run_lint<W: io::Write>(root: &Path, files: &[String], out: &mut W) -> io::Result<usize> {
    let findings = if files.is_empty() {
        lint_workspace(root)?
    } else {
        let mut all = Vec::new();
        for rel in files {
            all.extend(lint_file(root, rel, policy_for(rel))?);
        }
        all
    };
    for f in &findings {
        writeln!(
            out,
            "{}:{}:{}: [{}/{}] {}\n    {}",
            f.path,
            f.finding.line,
            f.finding.col,
            f.finding.rule.id(),
            f.finding.rule.name(),
            f.finding.message,
            f.snippet,
        )?;
    }
    if findings.is_empty() {
        writeln!(out, "tvdp-lint: clean")?;
    } else {
        writeln!(
            out,
            "tvdp-lint: {} violation(s); suppress a true positive with \
             `// tvdp-lint: allow(<rule>, reason = \"...\")`",
            findings.len()
        )?;
    }
    Ok(findings.len())
}
