//! `cargo xtask` — workspace automation for TVDP.
//!
//! The only subcommand today is `lint`, a dependency-free static
//! analysis pass enforcing the platform's reproducibility invariants
//! (see [`rules`]): city-scale query serving needs answers that are
//! crash-free (L1), bit-reproducible across runs and thread counts
//! (L2, L3, L5, L7), and independent of ambient time/randomness (L4),
//! with every explicit atomic ordering carrying a reviewed
//! justification (L6).
//!
//! Run as `cargo xtask lint` (whole workspace) or
//! `cargo xtask lint <file>...` (specific files, strict policy). Add
//! `--format json` for machine-readable output (CI annotations).

pub mod rules;
pub mod source;
pub mod walk;

use std::io;
use std::path::Path;

pub use rules::{Finding, Policy, Rule};
pub use source::SourceModel;
pub use walk::{lint_file, lint_workspace, policy_for, workspace_sources, FileFinding};

/// Report format for [`run_lint_with_format`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable `path:line:col: [Lx/rule] message` lines.
    #[default]
    Text,
    /// One JSON object with a `findings` array (CI annotations). The
    /// encoder is hand-rolled: the linter stays dependency-free.
    Json,
}

/// Runs the lint over the workspace (no file args) or the given files
/// (strict policy), printing findings to `out` as text. Returns the
/// number of findings.
pub fn run_lint<W: io::Write>(root: &Path, files: &[String], out: &mut W) -> io::Result<usize> {
    run_lint_with_format(root, files, OutputFormat::Text, out)
}

/// [`run_lint`] with an explicit report format.
pub fn run_lint_with_format<W: io::Write>(
    root: &Path,
    files: &[String],
    format: OutputFormat,
    out: &mut W,
) -> io::Result<usize> {
    let findings = if files.is_empty() {
        lint_workspace(root)?
    } else {
        let mut all = Vec::new();
        for rel in files {
            all.extend(lint_file(root, rel, policy_for(rel))?);
        }
        all
    };
    match format {
        OutputFormat::Text => {
            for f in &findings {
                writeln!(
                    out,
                    "{}:{}:{}: [{}/{}] {}\n    {}",
                    f.path,
                    f.finding.line,
                    f.finding.col,
                    f.finding.rule.id(),
                    f.finding.rule.name(),
                    f.finding.message,
                    f.snippet,
                )?;
            }
            if findings.is_empty() {
                writeln!(out, "tvdp-lint: clean")?;
            } else {
                writeln!(
                    out,
                    "tvdp-lint: {} violation(s); suppress a true positive with \
                     `// tvdp-lint: allow(<rule>, reason = \"...\")`",
                    findings.len()
                )?;
            }
        }
        OutputFormat::Json => {
            writeln!(out, "{}", findings_to_json(&findings))?;
        }
    }
    Ok(findings.len())
}

/// Serializes findings as one JSON document:
/// `{"findings":[{"file":..,"line":..,"col":..,"rule":..,"name":..,
/// "message":..,"snippet":..},..],"count":N}`.
pub fn findings_to_json(findings: &[FileFinding]) -> String {
    let mut s = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"file\":");
        json_string(&mut s, &f.path);
        s.push_str(",\"line\":");
        s.push_str(&f.finding.line.to_string());
        s.push_str(",\"col\":");
        s.push_str(&f.finding.col.to_string());
        s.push_str(",\"rule\":");
        json_string(&mut s, f.finding.rule.id());
        s.push_str(",\"name\":");
        json_string(&mut s, f.finding.rule.name());
        s.push_str(",\"message\":");
        json_string(&mut s, &f.finding.message);
        s.push_str(",\"snippet\":");
        json_string(&mut s, &f.snippet);
        s.push('}');
    }
    s.push_str("],\"count\":");
    s.push_str(&findings.len().to_string());
    s.push('}');
    s
}

/// Appends `value` to `out` as a JSON string literal (RFC 8259
/// escaping: quote, backslash, and control characters).
fn json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::{Finding, Rule};

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        let mut s = String::new();
        json_string(&mut s, "say \"hi\"\n\tdone\u{1}");
        assert_eq!(s, "\"say \\\"hi\\\"\\n\\tdone\\u0001\"");
    }

    #[test]
    fn json_report_shape_is_stable() {
        let findings = vec![FileFinding {
            path: "crates/x/src/lib.rs".into(),
            snippet: "let t = x.unwrap();".into(),
            finding: Finding {
                rule: Rule::NoPanic,
                line: 3,
                col: 11,
                message: "`.unwrap()` can panic".into(),
            },
        }];
        let json = findings_to_json(&findings);
        assert_eq!(
            json,
            "{\"findings\":[{\"file\":\"crates/x/src/lib.rs\",\"line\":3,\"col\":11,\
             \"rule\":\"L1\",\"name\":\"no_panic\",\"message\":\"`.unwrap()` can panic\",\
             \"snippet\":\"let t = x.unwrap();\"}],\"count\":1}"
        );
    }

    #[test]
    fn empty_json_report() {
        assert_eq!(findings_to_json(&[]), "{\"findings\":[],\"count\":0}");
    }
}
