//! CLI entry point: `cargo xtask lint [FILE...]`.

use std::io::{self, Write};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    let _ = writeln!(
        io::stderr(),
        "usage: cargo xtask lint [FILE...]\n\
         \n\
         Enforces the TVDP invariants over crates/*/src (no args) or the\n\
         given files: L1 no-panic, L2 determinism, L3 pool-only\n\
         threading, L4 no ambient time/randomness."
    );
    ExitCode::from(2)
}

/// Workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the current directory.
fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .and_then(|m| m.parent().and_then(|p| p.parent()).map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, files)) if cmd == "lint" => {
            let root = workspace_root();
            let mut stdout = io::stdout().lock();
            match xtask::run_lint(&root, files, &mut stdout) {
                Ok(0) => ExitCode::SUCCESS,
                Ok(_) => ExitCode::FAILURE,
                Err(e) => {
                    let _ = writeln!(io::stderr(), "tvdp-lint: error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
