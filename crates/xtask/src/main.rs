//! CLI entry point: `cargo xtask lint [--format text|json] [FILE...]`.

use std::io::{self, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use xtask::OutputFormat;

fn usage() -> ExitCode {
    let _ = writeln!(
        io::stderr(),
        "usage: cargo xtask lint [--format text|json] [FILE...]\n\
         \n\
         Enforces the TVDP invariants over crates/*/src (no args) or the\n\
         given files: L1 no-panic, L2 determinism, L3 pool-only\n\
         threading, L4 no ambient time/randomness, L5 lock discipline,\n\
         L6 reviewed atomic orderings, L7 canonical float reductions."
    );
    ExitCode::from(2)
}

/// Workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the current directory.
fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .and_then(|m| m.parent().and_then(|p| p.parent()).map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "lint" => {
            let mut format = OutputFormat::Text;
            let mut files: Vec<String> = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                if arg == "--format" {
                    match it.next().map(String::as_str) {
                        Some("text") => format = OutputFormat::Text,
                        Some("json") => format = OutputFormat::Json,
                        _ => return usage(),
                    }
                } else if let Some(v) = arg.strip_prefix("--format=") {
                    match v {
                        "text" => format = OutputFormat::Text,
                        "json" => format = OutputFormat::Json,
                        _ => return usage(),
                    }
                } else if arg.starts_with('-') {
                    return usage();
                } else {
                    files.push(arg.clone());
                }
            }
            let root = workspace_root();
            let mut stdout = io::stdout().lock();
            match xtask::run_lint_with_format(&root, &files, format, &mut stdout) {
                Ok(0) => ExitCode::SUCCESS,
                Ok(_) => ExitCode::FAILURE,
                Err(e) => {
                    let _ = writeln!(io::stderr(), "tvdp-lint: error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
