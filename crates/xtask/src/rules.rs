//! The four TVDP invariant rules.
//!
//! | id  | rule                  | what it forbids (outside `#[cfg(test)]`)        |
//! |-----|-----------------------|--------------------------------------------------|
//! | L1  | `no_panic`            | `.unwrap()` / `.expect(..)` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` |
//! | L2  | `determinism`         | iterating a `HashMap`/`HashSet` (order leaks)    |
//! | L3  | `pool_only_threading` | `std::thread::{spawn,scope,Builder}` and ad-hoc `std::sync` locks outside `tvdp-kernel` |
//! | L4  | `no_wall_clock`       | `Instant::now` / `SystemTime` / `thread_rng` / entropy RNGs outside allowlisted modules |
//!
//! Every rule is suppressible per line with
//! `// tvdp-lint: allow(<rule>, reason = "...")`.

use crate::source::SourceModel;

/// A rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1: panicking calls in library code.
    NoPanic,
    /// L2: hash-order iteration that can leak into results.
    Determinism,
    /// L3: ad-hoc threads outside the kernel pool.
    PoolOnlyThreading,
    /// L4: ambient wall-clock time or randomness.
    NoWallClock,
    /// Malformed `tvdp-lint:` escape-hatch comment.
    BadAllow,
}

impl Rule {
    /// Short id shown in reports (`L1`..`L4`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "L1",
            Rule::Determinism => "L2",
            Rule::PoolOnlyThreading => "L3",
            Rule::NoWallClock => "L4",
            Rule::BadAllow => "L0",
        }
    }

    /// Name used in `allow(...)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no_panic",
            Rule::Determinism => "determinism",
            Rule::PoolOnlyThreading => "pool_only_threading",
            Rule::NoWallClock => "no_wall_clock",
            Rule::BadAllow => "bad_allow",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

/// Which rules apply to a given file (derived from its crate/path).
#[derive(Debug, Clone, Copy)]
pub struct Policy {
    /// Enforce L3 (`false` inside `tvdp-kernel`, the one crate allowed
    /// to own threads).
    pub check_threading: bool,
    /// Enforce L4 (`false` for bench code and allowlisted modules such
    /// as `api::limit`).
    pub check_wall_clock: bool,
}

impl Policy {
    /// All rules on — the default for library code.
    pub fn strict() -> Self {
        Policy {
            check_threading: true,
            check_wall_clock: true,
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of `needle` in `hay` occurring as a whole word
/// (not embedded in a larger identifier).
fn word_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut out = Vec::new();
    let mut at = 0;
    while let Some(rel) = hay[at..].find(needle) {
        let s = at + rel;
        let before_ok = s == 0 || !is_ident_byte(bytes[s - 1]);
        let after = s + needle.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            out.push(s);
        }
        at = s + needle.len().max(1);
    }
    out
}

fn next_non_ws(bytes: &[u8], mut i: usize) -> Option<u8> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some(bytes[i]);
        }
        i += 1;
    }
    None
}

fn prev_non_ws(bytes: &[u8], i: usize) -> Option<u8> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !bytes[j].is_ascii_whitespace() {
            return Some(bytes[j]);
        }
    }
    None
}

/// Runs every applicable rule over one parsed file, returning findings
/// that are not in test code and not suppressed by an allow comment.
pub fn check(model: &SourceModel, policy: Policy) -> Vec<Finding> {
    let mut raw = Vec::new();
    no_panic(model, &mut raw);
    determinism(model, &mut raw);
    if policy.check_threading {
        pool_only_threading(model, &mut raw);
    }
    if policy.check_wall_clock {
        no_wall_clock(model, &mut raw);
    }
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| !model.is_test_line(f.line))
        .filter(|f| !model.is_allowed(f.line, f.rule.name()))
        .collect();
    // Malformed escape hatches are findings themselves: a broken allow
    // must never silently pass.
    for bad in &model.bad_allows {
        findings.push(Finding {
            rule: Rule::BadAllow,
            line: bad.line,
            col: 1,
            message: format!("malformed tvdp-lint comment: {}", bad.problem),
        });
    }
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

/// L1: panicking method calls and macros.
fn no_panic(model: &SourceModel, out: &mut Vec<Finding>) {
    let hay = &model.masked;
    let bytes = hay.as_bytes();
    for method in ["unwrap", "expect"] {
        for s in word_occurrences(hay, method) {
            // Must be a method call: `.name(` (receiver on the left).
            if prev_non_ws(bytes, s) != Some(b'.') {
                continue;
            }
            if next_non_ws(bytes, s + method.len()) != Some(b'(') {
                continue;
            }
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::NoPanic,
                line,
                col,
                message: format!(
                    "`.{method}()` can panic in library code; return a typed error instead"
                ),
            });
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for s in word_occurrences(hay, mac) {
            if next_non_ws(bytes, s + mac.len()) != Some(b'!') {
                continue;
            }
            // `core::panic!` still panics; a path prefix is fine to flag,
            // but `std::panic::catch_unwind` has no `!` and is skipped.
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::NoPanic,
                line,
                col,
                message: format!("`{mac}!` is forbidden in library code"),
            });
        }
    }
}

/// L2: collect identifiers bound to `HashMap`/`HashSet`, then flag
/// order-dependent iteration over them.
fn determinism(model: &SourceModel, out: &mut Vec<Finding>) {
    let hay = &model.masked;

    // Pass A: names declared with a hash-collection type. Covers
    // `let x: HashMap<..>`, `let x = HashMap::new()`, struct fields and
    // fn params (`name: HashMap<..>`), including `Option<HashSet<..>>`.
    let mut tracked: Vec<String> = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        for s in word_occurrences(hay, ty) {
            if let Some(name) = binding_name_for(hay, s) {
                if !tracked.contains(&name) {
                    tracked.push(name);
                }
            }
        }
    }
    tracked.sort();

    // Pass B: iteration over a tracked name.
    const ITER_METHODS: [&str; 7] = [
        ".iter()",
        ".iter_mut()",
        ".into_iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
    ];
    let bytes = hay.as_bytes();
    for name in &tracked {
        for s in word_occurrences(hay, name) {
            // rustfmt breaks method chains across lines; skip whitespace
            // between the receiver and `.method(`.
            let mut j = s + name.len();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let after = &hay[j..];
            if let Some(m) = ITER_METHODS.iter().find(|m| after.starts_with(**m)) {
                let (line, col) = model.line_col(s);
                out.push(Finding {
                    rule: Rule::Determinism,
                    line,
                    col,
                    message: format!(
                        "`{name}{m}` iterates a hash collection: iteration order is \
                         nondeterministic; use BTreeMap/BTreeSet or sort explicitly"
                    ),
                });
            }
        }
    }

    // `for x in name` / `for x in &name` — iteration without a method.
    for s in word_occurrences(hay, "for") {
        let Some(in_rel) = hay[s..].find(" in ") else {
            continue;
        };
        let expr_start = s + in_rel + 4;
        let Some(brace_rel) = hay[expr_start..].find('{') else {
            continue;
        };
        if hay[s..expr_start].contains('\n') || brace_rel > 200 {
            continue; // not a plausible single `for` header
        }
        let expr = &hay[expr_start..expr_start + brace_rel];
        for name in &tracked {
            let hits = word_occurrences(expr, name);
            // Only flag bare iteration of the collection itself, not
            // e.g. `map.get(..)` chains inside the expression.
            let bare = hits.iter().any(|&h| {
                let after = expr[h + name.len()..].trim_start();
                after.is_empty() || after.starts_with('{')
            });
            if bare {
                let (line, col) = model.line_col(expr_start);
                out.push(Finding {
                    rule: Rule::Determinism,
                    line,
                    col,
                    message: format!(
                        "`for .. in {name}` iterates a hash collection: iteration order \
                         is nondeterministic; use BTreeMap/BTreeSet or sort explicitly"
                    ),
                });
            }
        }
    }
}

/// L3: ad-hoc threads. Everything must go through `tvdp_kernel::Pool`.
///
/// Also covers ad-hoc `std::sync` locks: shared snapshots are published
/// through `tvdp_kernel::GenCell` (writers Arc-swap a frozen generation,
/// readers clone an `Arc` and never block — the sharded engine's read
/// path), and writer-side mutexes use the workspace's `parking_lot`.
/// A bare `std::sync::RwLock`/`Mutex` is how a blocking single-lock
/// engine creeps back in, so it is flagged outside `tvdp-kernel` (the
/// one crate allowed to build the publication primitive itself).
fn pool_only_threading(model: &SourceModel, out: &mut Vec<Finding>) {
    let hay = &model.masked;
    for needle in ["thread::spawn", "thread::scope", "thread::Builder"] {
        let mut at = 0;
        while let Some(rel) = hay[at..].find(needle) {
            let s = at + rel;
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::PoolOnlyThreading,
                line,
                col,
                message: format!(
                    "`{needle}` outside tvdp-kernel: use `tvdp_kernel::Pool` so thread \
                     count stays deterministic and bounded"
                ),
            });
            at = s + needle.len();
        }
    }
    // `std::sync::RwLock` / `std::sync::Mutex`, whether named inline or
    // pulled in through a (possibly grouped) `use std::sync::{..}` —
    // either way the path and the lock name share a line.
    let mut at = 0;
    while let Some(rel) = hay[at..].find("std::sync::") {
        let s = at + rel;
        let line_end = hay[s..].find('\n').map_or(hay.len(), |p| s + p);
        let rest = &hay[s..line_end];
        for lock in ["RwLock", "Mutex"] {
            if !word_occurrences(rest, lock).is_empty() {
                let (line, col) = model.line_col(s);
                out.push(Finding {
                    rule: Rule::PoolOnlyThreading,
                    line,
                    col,
                    message: format!(
                        "`std::sync::{lock}` outside tvdp-kernel: publish read-path \
                         snapshots through `tvdp_kernel::GenCell` generations (lock-free \
                         Arc-swap reads) and guard writer state with `parking_lot`"
                    ),
                });
            }
        }
        at = line_end.min(s + "std::sync::".len().max(1));
    }
}

/// L4: ambient time and randomness.
fn no_wall_clock(model: &SourceModel, out: &mut Vec<Finding>) {
    let hay = &model.masked;
    const NEEDLES: [(&str, &str); 6] = [
        ("Instant::now", "wall-clock time in a result path"),
        ("SystemTime::now", "wall-clock time in a result path"),
        ("UNIX_EPOCH", "wall-clock time in a result path"),
        ("thread_rng", "ambient randomness (unseeded RNG)"),
        ("from_entropy", "ambient randomness (entropy-seeded RNG)"),
        ("OsRng", "ambient randomness (OS RNG)"),
    ];
    for (needle, why) in NEEDLES {
        for s in word_occurrences(hay, needle.split("::").next().unwrap_or(needle)) {
            // Re-check the full dotted needle at this site.
            if !hay[s..].starts_with(needle) {
                continue;
            }
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::NoWallClock,
                line,
                col,
                message: format!(
                    "`{needle}`: {why}; take time/seed as an explicit parameter \
                     (see api::limit) or allowlist the module"
                ),
            });
        }
    }
}

/// For a `HashMap`/`HashSet` type token at byte `s`, the identifier the
/// value is bound to, when the site is a binding (`let x:`, `let x =`,
/// field `x:`, param `x:`).
fn binding_name_for(hay: &str, s: usize) -> Option<String> {
    let line_start = hay[..s].rfind('\n').map_or(0, |p| p + 1);
    let line_end = hay[s..].find('\n').map_or(hay.len(), |p| s + p);
    let line = &hay[line_start..line_end];
    let rel = s - line_start;

    // `= HashMap::new()` style: name is the ident before `=` (skipping
    // `let`/`mut` and any `: Type` annotation).
    if let Some(eq) = line[..rel].rfind('=') {
        let lhs = &line[..eq];
        let lhs = lhs.split(':').next().unwrap_or(lhs);
        let name = lhs
            .split_whitespace()
            .rev()
            .find(|w| w.bytes().all(is_ident_byte) && !w.is_empty())?;
        if name != "let" && name != "mut" {
            return Some(name.to_string());
        }
        return None;
    }
    // `name: HashMap<..>` / `name: Option<HashMap<..>>` style: name is
    // the ident before the first `:` left of the type token.
    let colon = line[..rel].rfind(':')?;
    // Reject `::` paths (e.g. `std::collections::HashMap`): scan left
    // past the whole `path::to::HashMap` chain first.
    if colon > 0 && line.as_bytes()[colon - 1] == b':' {
        let path_start = line[..colon]
            .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
            .map_or(0, |p| p + 1);
        let before = &line[..path_start];
        let colon2 = before.rfind(':')?;
        if colon2 > 0 && before.as_bytes()[colon2 - 1] == b':' {
            return None;
        }
        return name_left_of_colon(before, colon2);
    }
    name_left_of_colon(line, colon)
}

fn name_left_of_colon(line: &str, colon: usize) -> Option<String> {
    let name = line[..colon].trim_end();
    let start = name
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |p| p + 1);
    let ident = &name[start..];
    if ident.is_empty() || ident.bytes().next().is_some_and(|b| b.is_ascii_digit()) {
        None
    } else {
        Some(ident.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceModel;

    fn findings(src: &str) -> Vec<Finding> {
        check(&SourceModel::parse(src), Policy::strict())
    }

    #[test]
    fn l1_flags_unwrap_and_macros() {
        let f = findings("fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::NoPanic);
        let f = findings("fn f() { panic!(\"boom\"); }\n");
        assert_eq!(f.len(), 1);
        let f = findings("fn f() { todo!() }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn l1_skips_unwrap_or_and_should_panic() {
        assert!(findings("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n").is_empty());
        assert!(findings("fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }\n").is_empty());
        // `should_panic` is an attribute word, not a call.
        assert!(findings("#[should_panic(expected = \"x\")]\nfn g() {}\n").is_empty());
    }

    #[test]
    fn l1_skips_test_code_and_strings() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(findings(src).is_empty());
        assert!(findings("const S: &str = \"call .unwrap() later\";\n").is_empty());
    }

    #[test]
    fn l2_flags_hash_iteration() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) -> Vec<u8> {\n m.values().copied().collect()\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Determinism);
    }

    #[test]
    fn l2_flags_for_loop_over_hash() {
        let src = "use std::collections::HashMap;\nfn f() {\n let tf: HashMap<u8, u8> = HashMap::new();\n for (k, v) in tf {\n let _ = (k, v);\n }\n}\n";
        let f = findings(src);
        assert!(
            f.iter().any(|f| f.rule == Rule::Determinism),
            "for-loop over HashMap must fire: {f:?}"
        );
    }

    #[test]
    fn l2_flags_multiline_method_chain() {
        // rustfmt style: receiver and `.iter()` on different lines.
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) -> Vec<u8> {\n m\n  .values()\n  .copied()\n  .collect()\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Determinism);
    }

    #[test]
    fn l2_allows_lookup_only_use() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u8, u8>) -> Option<u8> {\n m.get(&1).copied()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn l2_btreemap_is_fine() {
        let src = "use std::collections::BTreeMap;\nfn f(m: BTreeMap<u8, u8>) -> Vec<u8> {\n m.values().copied().collect()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn l3_flags_spawn_unless_kernel_policy() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let f = findings(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PoolOnlyThreading);
        let kernel = Policy {
            check_threading: false,
            ..Policy::strict()
        };
        assert!(check(&SourceModel::parse(src), kernel).is_empty());
    }

    #[test]
    fn l3_flags_std_sync_locks_outside_kernel() {
        // Inline path.
        let f = findings("fn f() { let l = std::sync::RwLock::new(0); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PoolOnlyThreading);
        // Grouped import.
        let f = findings("use std::sync::{Arc, Mutex};\nfn f() {}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PoolOnlyThreading);
        // The kernel crate may build the primitive itself.
        let kernel = Policy {
            check_threading: false,
            ..Policy::strict()
        };
        let src = "use std::sync::{Arc, RwLock};\nfn f() { let l = RwLock::new(0); }\n";
        assert!(check(&SourceModel::parse(src), kernel).is_empty());
    }

    #[test]
    fn l3_allows_gencell_publication_and_parking_lot() {
        // The blessed pattern: GenCell generation publication plus a
        // parking_lot writer mutex. `std::sync::Arc` alone is fine.
        let src = "use std::sync::Arc;\nuse parking_lot::Mutex;\nuse tvdp_kernel::GenCell;\n\
                   fn publish(cell: &GenCell<u8>, w: &Mutex<u8>) {\n\
                    let v = *w.lock();\n cell.store(Arc::new(v));\n let _ = cell.load();\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn l4_flags_instant_now_and_thread_rng() {
        let f = findings("fn f() -> std::time::Instant { std::time::Instant::now() }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::NoWallClock);
        let f = findings("fn f() { let mut r = rand::thread_rng(); }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn allow_comment_suppresses_with_reason() {
        let src = "fn f(x: Option<u8>) -> u8 {\n // tvdp-lint: allow(no_panic, reason = \"invariant: filled above\")\n x.unwrap()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn allow_without_reason_becomes_finding() {
        let src = "fn f(x: Option<u8>) -> u8 {\n x.unwrap() // tvdp-lint: allow(no_panic)\n}\n";
        let f = findings(src);
        assert!(f.iter().any(|f| f.rule == Rule::BadAllow), "{f:?}");
        assert!(f.iter().any(|f| f.rule == Rule::NoPanic), "{f:?}");
    }
}
