//! The seven TVDP invariant rules.
//!
//! | id  | rule                  | what it forbids (outside `#[cfg(test)]`)        |
//! |-----|-----------------------|--------------------------------------------------|
//! | L1  | `no_panic`            | `.unwrap()` / `.expect(..)` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` |
//! | L2  | `determinism`         | iterating a `HashMap`/`HashSet` (order leaks)    |
//! | L3  | `pool_only_threading` | `std::thread::{spawn,scope,Builder}` and ad-hoc `std::sync` locks outside `tvdp-kernel` |
//! | L4  | `no_wall_clock`       | `Instant::now` / `SystemTime` / raw `std::time::Instant`/`SystemTime` types / `thread_rng` / entropy RNGs outside allowlisted modules |
//! | L5  | `lock_discipline`     | lock guards held across a pool dispatch, and nested lock acquisition while a guard is live |
//! | L6  | `atomic_ordering`     | any explicit `Ordering::{Relaxed,..,SeqCst}` without a reviewed allow annotation |
//! | L7  | `float_reduction`     | ad-hoc `f32`/`f64` `sum`/`fold`/`+=` reductions outside the kernel's canonical reduce paths |
//!
//! Every rule is suppressible per line with
//! `// tvdp-lint: allow(<rule>, reason = "...")`. The escape hatch is
//! itself policed: a malformed comment, or an allow whose rule never
//! fires on the annotated line, is an L0 `bad_allow` finding — stale
//! suppressions must be deleted, not accumulated.

use crate::source::SourceModel;

/// A rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1: panicking calls in library code.
    NoPanic,
    /// L2: hash-order iteration that can leak into results.
    Determinism,
    /// L3: ad-hoc threads outside the kernel pool.
    PoolOnlyThreading,
    /// L4: ambient wall-clock time or randomness.
    NoWallClock,
    /// L5: lock guards held across pool dispatch or nested acquisition.
    LockDiscipline,
    /// L6: explicit atomic memory orderings without a reviewed allow.
    AtomicOrdering,
    /// L7: ad-hoc floating-point reductions (order-sensitive rounding).
    FloatReduction,
    /// Malformed or unused `tvdp-lint:` escape-hatch comment.
    BadAllow,
}

impl Rule {
    /// Short id shown in reports (`L1`..`L7`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "L1",
            Rule::Determinism => "L2",
            Rule::PoolOnlyThreading => "L3",
            Rule::NoWallClock => "L4",
            Rule::LockDiscipline => "L5",
            Rule::AtomicOrdering => "L6",
            Rule::FloatReduction => "L7",
            Rule::BadAllow => "L0",
        }
    }

    /// Name used in `allow(...)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no_panic",
            Rule::Determinism => "determinism",
            Rule::PoolOnlyThreading => "pool_only_threading",
            Rule::NoWallClock => "no_wall_clock",
            Rule::LockDiscipline => "lock_discipline",
            Rule::AtomicOrdering => "atomic_ordering",
            Rule::FloatReduction => "float_reduction",
            Rule::BadAllow => "bad_allow",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

/// Which rules apply to a given file (derived from its crate/path).
#[derive(Debug, Clone, Copy)]
pub struct Policy {
    /// Enforce L3 (`false` inside `tvdp-kernel`, the one crate allowed
    /// to own threads).
    pub check_threading: bool,
    /// Enforce L4 (`false` for bench code and allowlisted modules such
    /// as `api::limit`).
    pub check_wall_clock: bool,
    /// Enforce L5 (`false` inside `tvdp-kernel`, which implements the
    /// dispatch primitives, and `tvdp-check`, which deliberately models
    /// broken locking).
    pub check_lock_discipline: bool,
    /// Enforce L6 (`false` inside `tvdp-check`, whose scheduler shims
    /// are the reviewed home of explicit orderings).
    pub check_atomic_ordering: bool,
    /// Enforce L7 (`false` inside `tvdp-kernel`, home of the canonical
    /// deterministic reductions, and `tvdp-bench` reporting code).
    pub check_float_reduction: bool,
}

impl Policy {
    /// All rules on — the default for library code.
    pub fn strict() -> Self {
        Policy {
            check_threading: true,
            check_wall_clock: true,
            check_lock_discipline: true,
            check_atomic_ordering: true,
            check_float_reduction: true,
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of `needle` in `hay` occurring as a whole word
/// (not embedded in a larger identifier).
fn word_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut out = Vec::new();
    let mut at = 0;
    while let Some(rel) = hay[at..].find(needle) {
        let s = at + rel;
        let before_ok = s == 0 || !is_ident_byte(bytes[s - 1]);
        let after = s + needle.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            out.push(s);
        }
        at = s + needle.len().max(1);
    }
    out
}

fn next_non_ws(bytes: &[u8], mut i: usize) -> Option<u8> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some(bytes[i]);
        }
        i += 1;
    }
    None
}

fn prev_non_ws(bytes: &[u8], i: usize) -> Option<u8> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !bytes[j].is_ascii_whitespace() {
            return Some(bytes[j]);
        }
    }
    None
}

/// Runs every applicable rule over one parsed file, returning findings
/// that are not in test code and not suppressed by an allow comment.
///
/// Allow comments are audited in the same pass: an allow that no raw
/// finding consumed is dead weight that would silently mask a future
/// regression at that line, so it is reported as an L0 finding.
pub fn check(model: &SourceModel, policy: Policy) -> Vec<Finding> {
    let mut raw = Vec::new();
    no_panic(model, &mut raw);
    determinism(model, &mut raw);
    if policy.check_threading {
        pool_only_threading(model, &mut raw);
    }
    if policy.check_wall_clock {
        no_wall_clock(model, &mut raw);
    }
    if policy.check_lock_discipline {
        lock_discipline(model, &mut raw);
    }
    if policy.check_atomic_ordering {
        atomic_ordering(model, &mut raw);
    }
    if policy.check_float_reduction {
        float_reduction(model, &mut raw);
    }
    let mut used_allows: Vec<(usize, &str)> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw.into_iter().filter(|f| !model.is_test_line(f.line)) {
        if model.is_allowed(f.line, f.rule.name()) {
            used_allows.push((f.line, f.rule.name()));
        } else {
            findings.push(f);
        }
    }
    // Malformed escape hatches are findings themselves: a broken allow
    // must never silently pass. So are stale ones: an allow whose rule
    // no longer fires on its line suppresses nothing today and a real
    // regression tomorrow.
    for bad in &model.bad_allows {
        findings.push(Finding {
            rule: Rule::BadAllow,
            line: bad.line,
            col: 1,
            message: format!("malformed tvdp-lint comment: {}", bad.problem),
        });
    }
    for (line, allows) in &model.allows {
        if model.is_test_line(*line) {
            continue;
        }
        for a in allows {
            let consumed = used_allows
                .iter()
                .any(|(l, rule)| l == line && *rule == a.rule);
            if !consumed {
                findings.push(Finding {
                    rule: Rule::BadAllow,
                    line: a.comment_line,
                    col: 1,
                    message: format!(
                        "unused allow({}): no {} finding on the annotated line; \
                         delete the stale suppression",
                        a.rule, a.rule
                    ),
                });
            }
        }
    }
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

/// L1: panicking method calls and macros.
fn no_panic(model: &SourceModel, out: &mut Vec<Finding>) {
    let hay = &model.masked;
    let bytes = hay.as_bytes();
    for method in ["unwrap", "expect"] {
        for s in word_occurrences(hay, method) {
            // Must be a method call: `.name(` (receiver on the left).
            if prev_non_ws(bytes, s) != Some(b'.') {
                continue;
            }
            if next_non_ws(bytes, s + method.len()) != Some(b'(') {
                continue;
            }
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::NoPanic,
                line,
                col,
                message: format!(
                    "`.{method}()` can panic in library code; return a typed error instead"
                ),
            });
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for s in word_occurrences(hay, mac) {
            if next_non_ws(bytes, s + mac.len()) != Some(b'!') {
                continue;
            }
            // `core::panic!` still panics; a path prefix is fine to flag,
            // but `std::panic::catch_unwind` has no `!` and is skipped.
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::NoPanic,
                line,
                col,
                message: format!("`{mac}!` is forbidden in library code"),
            });
        }
    }
}

/// L2: collect identifiers bound to `HashMap`/`HashSet`, then flag
/// order-dependent iteration over them.
fn determinism(model: &SourceModel, out: &mut Vec<Finding>) {
    let hay = &model.masked;

    // Pass A: names declared with a hash-collection type. Covers
    // `let x: HashMap<..>`, `let x = HashMap::new()`, struct fields and
    // fn params (`name: HashMap<..>`), including `Option<HashSet<..>>`.
    let mut tracked: Vec<String> = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        for s in word_occurrences(hay, ty) {
            if let Some(name) = binding_name_for(hay, s) {
                if !tracked.contains(&name) {
                    tracked.push(name);
                }
            }
        }
    }
    tracked.sort();

    // Pass B: iteration over a tracked name.
    const ITER_METHODS: [&str; 7] = [
        ".iter()",
        ".iter_mut()",
        ".into_iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
    ];
    let bytes = hay.as_bytes();
    for name in &tracked {
        for s in word_occurrences(hay, name) {
            // rustfmt breaks method chains across lines; skip whitespace
            // between the receiver and `.method(`.
            let mut j = s + name.len();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let after = &hay[j..];
            if let Some(m) = ITER_METHODS.iter().find(|m| after.starts_with(**m)) {
                let (line, col) = model.line_col(s);
                out.push(Finding {
                    rule: Rule::Determinism,
                    line,
                    col,
                    message: format!(
                        "`{name}{m}` iterates a hash collection: iteration order is \
                         nondeterministic; use BTreeMap/BTreeSet or sort explicitly"
                    ),
                });
            }
        }
    }

    // `for x in name` / `for x in &name` — iteration without a method.
    for s in word_occurrences(hay, "for") {
        let Some(in_rel) = hay[s..].find(" in ") else {
            continue;
        };
        let expr_start = s + in_rel + 4;
        let Some(brace_rel) = hay[expr_start..].find('{') else {
            continue;
        };
        if hay[s..expr_start].contains('\n') || brace_rel > 200 {
            continue; // not a plausible single `for` header
        }
        let expr = &hay[expr_start..expr_start + brace_rel];
        for name in &tracked {
            let hits = word_occurrences(expr, name);
            // Only flag bare iteration of the collection itself, not
            // e.g. `map.get(..)` chains inside the expression.
            let bare = hits.iter().any(|&h| {
                let after = expr[h + name.len()..].trim_start();
                after.is_empty() || after.starts_with('{')
            });
            if bare {
                let (line, col) = model.line_col(expr_start);
                out.push(Finding {
                    rule: Rule::Determinism,
                    line,
                    col,
                    message: format!(
                        "`for .. in {name}` iterates a hash collection: iteration order \
                         is nondeterministic; use BTreeMap/BTreeSet or sort explicitly"
                    ),
                });
            }
        }
    }
}

/// L3: ad-hoc threads. Everything must go through `tvdp_kernel::Pool`.
///
/// Also covers ad-hoc `std::sync` locks: shared snapshots are published
/// through `tvdp_kernel::GenCell` (writers Arc-swap a frozen generation,
/// readers clone an `Arc` and never block — the sharded engine's read
/// path), and writer-side mutexes use the workspace's `parking_lot`.
/// A bare `std::sync::RwLock`/`Mutex` is how a blocking single-lock
/// engine creeps back in, so it is flagged outside `tvdp-kernel` (the
/// one crate allowed to build the publication primitive itself).
fn pool_only_threading(model: &SourceModel, out: &mut Vec<Finding>) {
    let hay = &model.masked;
    for needle in ["thread::spawn", "thread::scope", "thread::Builder"] {
        let mut at = 0;
        while let Some(rel) = hay[at..].find(needle) {
            let s = at + rel;
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::PoolOnlyThreading,
                line,
                col,
                message: format!(
                    "`{needle}` outside tvdp-kernel: use `tvdp_kernel::Pool` so thread \
                     count stays deterministic and bounded"
                ),
            });
            at = s + needle.len();
        }
    }
    // `std::sync::RwLock` / `std::sync::Mutex`, whether named inline or
    // pulled in through a (possibly grouped) `use std::sync::{..}` —
    // either way the path and the lock name share a line.
    let mut at = 0;
    while let Some(rel) = hay[at..].find("std::sync::") {
        let s = at + rel;
        let line_end = hay[s..].find('\n').map_or(hay.len(), |p| s + p);
        let rest = &hay[s..line_end];
        for lock in ["RwLock", "Mutex"] {
            if !word_occurrences(rest, lock).is_empty() {
                let (line, col) = model.line_col(s);
                out.push(Finding {
                    rule: Rule::PoolOnlyThreading,
                    line,
                    col,
                    message: format!(
                        "`std::sync::{lock}` outside tvdp-kernel: publish read-path \
                         snapshots through `tvdp_kernel::GenCell` generations (lock-free \
                         Arc-swap reads) and guard writer state with `parking_lot`"
                    ),
                });
            }
        }
        at = line_end.min(s + "std::sync::".len().max(1));
    }
}

/// L4: ambient time and randomness.
fn no_wall_clock(model: &SourceModel, out: &mut Vec<Finding>) {
    let hay = &model.masked;
    const NEEDLES: [(&str, &str); 6] = [
        ("Instant::now", "wall-clock time in a result path"),
        ("SystemTime::now", "wall-clock time in a result path"),
        ("UNIX_EPOCH", "wall-clock time in a result path"),
        ("thread_rng", "ambient randomness (unseeded RNG)"),
        ("from_entropy", "ambient randomness (entropy-seeded RNG)"),
        ("OsRng", "ambient randomness (OS RNG)"),
    ];
    for (needle, why) in NEEDLES {
        for s in word_occurrences(hay, needle.split("::").next().unwrap_or(needle)) {
            // Re-check the full dotted needle at this site.
            if !hay[s..].starts_with(needle) {
                continue;
            }
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::NoWallClock,
                line,
                col,
                message: format!(
                    "`{needle}`: {why}; take time/seed as an explicit parameter \
                     (see api::limit) or allowlist the module"
                ),
            });
        }
    }
    // Raw `std::time::Instant` / `std::time::SystemTime` *types* — a
    // stored Instant field or a SystemTime threaded through a signature
    // smuggles host time into a deterministic path just as surely as
    // calling the clock inline. Sites immediately followed by `::now`
    // are skipped: the dotted-needle pass above already reported them.
    for ty in ["Instant", "SystemTime"] {
        let path = format!("std::time::{ty}");
        let mut at = 0;
        while let Some(rel) = hay[at..].find(&path) {
            let s = at + rel;
            at = s + path.len();
            if hay[at..].starts_with("::now") {
                continue;
            }
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::NoWallClock,
                line,
                col,
                message: wall_clock_type_message(ty),
            });
        }
    }
    // The same types pulled in through a grouped `use std::time::{..}`
    // import (`Duration` alone is legal — it is a span, not a clock).
    let mut at = 0;
    while let Some(rel) = hay[at..].find("std::time::{") {
        let s = at + rel;
        let open = s + "std::time::".len();
        let group_end = hay[open..].find('}').map_or(hay.len(), |p| open + p);
        let group = &hay[open..group_end];
        for ty in ["Instant", "SystemTime"] {
            for w in word_occurrences(group, ty) {
                let (line, col) = model.line_col(open + w);
                out.push(Finding {
                    rule: Rule::NoWallClock,
                    line,
                    col,
                    message: wall_clock_type_message(ty),
                });
            }
        }
        at = group_end.max(s + 1);
    }
}

/// Finding text for a raw wall-clock type (L4).
fn wall_clock_type_message(ty: &str) -> String {
    format!(
        "`std::time::{ty}`: wall-clock type in a deterministic path; model \
         time as explicit virtual-clock `i64` milliseconds (see \
         edge::transport::VirtualClock) or allowlist the module"
    )
}

/// Matching close for the `(` at byte `open`, if parens balance.
fn matching_paren(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// End byte (exclusive) of the block enclosing byte `from`: the `}`
/// that drops brace depth below zero, or end of file.
fn enclosing_block_end(bytes: &[u8], from: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// A `let`-bound lock guard: `let [mut] name = <expr>.lock();` (or
/// `.read()`/`.write()`), optionally followed by the std-poison
/// recovery suffix. Returns `(name, live_from)` where `live_from` is
/// the byte just past the binding statement's `;`.
fn guard_binding_at(hay: &str, call_start: usize, method_len: usize) -> Option<(String, usize)> {
    let bytes = hay.as_bytes();
    // Statement start: just past the previous `;`, `{` or `}`.
    let stmt_start = hay[..call_start]
        .rfind([';', '{', '}'])
        .map_or(0, |p| p + 1);
    let stmt_head = &hay[stmt_start..call_start];
    if word_occurrences(stmt_head, "let").is_empty() || !stmt_head.contains('=') {
        return None;
    }
    // Binding name: the identifier between `let [mut]` and `=`.
    let eq = stmt_head.find('=')?;
    let name = stmt_head[..eq]
        .trim_start()
        .strip_prefix("let")?
        .trim_start()
        .trim_start_matches("mut ")
        .trim()
        .trim_end_matches(':')
        .split(':')
        .next()?
        .trim()
        .to_string();
    if name.is_empty() || name == "_" || !name.bytes().all(is_ident_byte) {
        return None;
    }
    // The guard must reach the `;` unconsumed: only whitespace or the
    // poison-recovery `.unwrap_or_else(..)` may follow the call.
    let open = call_start + hay[call_start + method_len..].find('(')? + method_len;
    let mut end = matching_paren(bytes, open)? + 1;
    loop {
        match next_non_ws(bytes, end) {
            Some(b';') => break,
            Some(b'.') if hay[end..].trim_start().starts_with(".unwrap_or_else") => {
                let dot = end + hay[end..].find('.')?;
                let open2 = dot + hay[dot..].find('(')?;
                end = matching_paren(bytes, open2)? + 1;
            }
            _ => return None, // `.lock().foo()` — result consumed, no live guard
        }
    }
    let semi = end + hay[end..].find(';')?;
    Some((name, semi + 1))
}

/// L5: lock discipline. A `let`-bound guard must not stay live across
/// a `Pool` dispatch (`scope`/`map`/`map_index` park worker threads for
/// arbitrarily long, so a held lock serializes or deadlocks the pool),
/// and no second lock may be acquired while one is live (nested
/// acquisition is the ABBA deadlock shape the sharded engine forbids).
fn lock_discipline(model: &SourceModel, out: &mut Vec<Finding>) {
    let hay = &model.masked;
    let bytes = hay.as_bytes();
    const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];
    const DISPATCH: [&str; 3] = [".scope(", ".map(", ".map_index("];
    // `.map(` is also `Option`/`Iterator` vocabulary; it only counts as
    // a dispatch when the receiver is a pool (`pool.map(`, `self.pool
    // .map(`, `Pool::global().map(`).
    fn is_pool_receiver(hay: &str, dot: usize) -> bool {
        let recv = hay[..dot].trim_end();
        let tail_start = recv.len().saturating_sub(40);
        let tail = &recv[tail_start..];
        tail.ends_with("pool") || tail.ends_with("Pool") || {
            let last_line = tail.rsplit('\n').next().unwrap_or(tail);
            last_line.contains("Pool::")
        }
    }
    for method in LOCK_METHODS {
        for s in word_occurrences(hay, method) {
            if prev_non_ws(bytes, s) != Some(b'.') {
                continue;
            }
            if next_non_ws(bytes, s + method.len()) != Some(b'(') {
                continue;
            }
            let Some((name, live_from)) = guard_binding_at(hay, s, method.len()) else {
                continue;
            };
            // The guard lives to the end of its block, or an explicit
            // `drop(name)` — whichever comes first.
            let mut live_to = enclosing_block_end(bytes, live_from);
            for d in word_occurrences(&hay[live_from..live_to], "drop") {
                let at = live_from + d;
                let after = hay[at + 4..].trim_start();
                if let Some(arg) = after.strip_prefix('(') {
                    let arg = arg.trim_start();
                    let dropped: String = arg
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if dropped == name {
                        live_to = at;
                        break;
                    }
                }
            }
            let span = &hay[live_from..live_to];
            for needle in DISPATCH {
                let mut at = 0;
                while let Some(rel) = span[at..].find(needle) {
                    let pos = at + rel;
                    at = pos + needle.len();
                    if needle == ".map(" && !is_pool_receiver(hay, live_from + pos) {
                        continue;
                    }
                    let (line, col) = model.line_col(live_from + pos);
                    out.push(Finding {
                        rule: Rule::LockDiscipline,
                        line,
                        col,
                        message: format!(
                            "pool dispatch `{needle}..)` while lock guard `{name}` is live: \
                             drop the guard before fanning out, or move the locked work out \
                             of the dispatch"
                        ),
                    });
                }
            }
            for inner in LOCK_METHODS {
                for rel in word_occurrences(span, inner) {
                    let at = live_from + rel;
                    if prev_non_ws(bytes, at) != Some(b'.') {
                        continue;
                    }
                    if next_non_ws(bytes, at + inner.len()) != Some(b'(') {
                        continue;
                    }
                    let (line, col) = model.line_col(at);
                    out.push(Finding {
                        rule: Rule::LockDiscipline,
                        line,
                        col,
                        message: format!(
                            "`.{inner}()` while lock guard `{name}` is live: nested lock \
                             acquisition risks ABBA deadlock; drop `{name}` first"
                        ),
                    });
                }
            }
        }
    }
}

/// L6: explicit atomic memory orderings. Every ordering choice is a
/// proof obligation — the site must carry
/// `// tvdp-lint: allow(atomic_ordering, reason = "...")` stating why
/// the chosen ordering is sufficient (the allow machinery then marks
/// the site reviewed; an unannotated site surfaces here).
fn atomic_ordering(model: &SourceModel, out: &mut Vec<Finding>) {
    let hay = &model.masked;
    const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    for variant in VARIANTS {
        for s in word_occurrences(hay, variant) {
            // Only `Ordering::<variant>` counts (never `cmp::Ordering`,
            // whose variants are Less/Equal/Greater).
            if !hay[..s].ends_with("Ordering::") {
                continue;
            }
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::AtomicOrdering,
                line,
                col,
                message: format!(
                    "`Ordering::{variant}` needs a reviewed justification: annotate with \
                     `tvdp-lint: allow(atomic_ordering, reason = \"...\")` stating why this \
                     ordering is sufficient"
                ),
            });
        }
    }
}

/// Whether one statement's text mentions floating point: an `f32`/`f64`
/// token or a float literal like `0.0`.
fn has_float_evidence(stmt: &str) -> bool {
    if !word_occurrences(stmt, "f32").is_empty() || !word_occurrences(stmt, "f64").is_empty() {
        return true;
    }
    let b = stmt.as_bytes();
    (1..b.len().saturating_sub(1))
        .any(|i| b[i] == b'.' && b[i - 1].is_ascii_digit() && b[i + 1].is_ascii_digit())
}

/// The single statement around byte `s`, bounded by `;`/`{`/`}` on
/// both sides (with a 400-byte cap on the right, so runaway text never
/// swallows a neighboring item's types).
fn statement_around(hay: &str, s: usize) -> &str {
    let start = hay[..s].rfind([';', '{', '}']).map_or(0, |p| p + 1);
    let cap = (s + 400).min(hay.len());
    let end = hay[s..cap].find([';', '{', '}']).map_or(cap, |p| s + p);
    &hay[start..end]
}

/// The header of the function enclosing byte `s` (from the nearest
/// preceding `fn` to its `{`), for typing tail expressions whose
/// statement text alone names no type.
fn enclosing_fn_header(hay: &str, s: usize) -> &str {
    let Some(fn_at) = word_occurrences(&hay[..s], "fn").last().copied() else {
        return "";
    };
    let cap = (fn_at + 300).min(hay.len());
    let end = hay[fn_at..cap].find('{').map_or(cap, |p| fn_at + p);
    &hay[fn_at..end]
}

/// L7: ad-hoc floating-point reductions. Float addition is not
/// associative, so `sum`/`fold`/`+=` chains give different bits under
/// different traversal or chunking orders; reductions belong in the
/// kernel's canonical fixed-order reduce paths (`Pool::map_index` +
/// in-order combine), or must be annotated as order-fixed.
fn float_reduction(model: &SourceModel, out: &mut Vec<Finding>) {
    let hay = &model.masked;
    let bytes = hay.as_bytes();
    // `.sum()` / `.product()` / `.fold(` over floats.
    for method in ["sum", "product", "fold"] {
        for s in word_occurrences(hay, method) {
            if prev_non_ws(bytes, s) != Some(b'.') {
                continue;
            }
            let after = hay[s + method.len()..].trim_start();
            if !(after.starts_with('(') || after.starts_with("::<")) {
                continue;
            }
            let stmt = statement_around(hay, s);
            // Turbofish names the accumulator type outright — and an
            // explicit integer accumulator is proof of innocence even
            // when the result is cast to float afterwards.
            let turbofish_float = after.starts_with("::<")
                && after[..after.find('(').unwrap_or(after.len())]
                    .split(['<', '>'])
                    .any(|t| t.trim() == "f32" || t.trim() == "f64");
            if after.starts_with("::<") && !turbofish_float {
                continue;
            }
            // A tail/return expression carries no type of its own; its
            // accumulator type lives in the enclosing fn signature.
            let typed_by_fn =
                !stmt.contains('=') && has_float_evidence(enclosing_fn_header(hay, s));
            if !turbofish_float && !has_float_evidence(stmt) && !typed_by_fn {
                continue;
            }
            // min/max folds are order-insensitive; skip them.
            if method == "fold"
                && ["::min", "::max", ".min(", ".max("]
                    .iter()
                    .any(|m| stmt.contains(m))
            {
                continue;
            }
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::FloatReduction,
                line,
                col,
                message: format!(
                    "float `.{method}(..)` reduction: float addition is order-sensitive; \
                     use the kernel's canonical reduce path or annotate the fixed \
                     traversal order"
                ),
            });
        }
    }
    // `acc += x` loops over a `let mut acc = 0.0;`-style accumulator.
    let mut accumulators: Vec<String> = Vec::new();
    for s in word_occurrences(hay, "let") {
        let after = hay[s + 3..].trim_start();
        let Some(rest) = after.strip_prefix("mut ") else {
            continue;
        };
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let stmt = statement_around(hay, s);
        // Scalar float init only — collections accumulate by push.
        if has_float_evidence(stmt)
            && !stmt.contains("Vec")
            && !stmt.contains("vec!")
            && !stmt.contains('[')
            && !accumulators.contains(&name)
        {
            accumulators.push(name);
        }
    }
    for name in &accumulators {
        for s in word_occurrences(hay, name) {
            let after = hay[s + name.len()..].trim_start();
            if !after.starts_with("+=") {
                continue;
            }
            let (line, col) = model.line_col(s);
            out.push(Finding {
                rule: Rule::FloatReduction,
                line,
                col,
                message: format!(
                    "`{name} +=` float accumulation: float addition is order-sensitive; \
                     use the kernel's canonical reduce path or annotate the fixed \
                     traversal order"
                ),
            });
        }
    }
}

/// For a `HashMap`/`HashSet` type token at byte `s`, the identifier the
/// value is bound to, when the site is a binding (`let x:`, `let x =`,
/// field `x:`, param `x:`).
fn binding_name_for(hay: &str, s: usize) -> Option<String> {
    let line_start = hay[..s].rfind('\n').map_or(0, |p| p + 1);
    let line_end = hay[s..].find('\n').map_or(hay.len(), |p| s + p);
    let line = &hay[line_start..line_end];
    let rel = s - line_start;

    // `= HashMap::new()` style: name is the ident before `=` (skipping
    // `let`/`mut` and any `: Type` annotation).
    if let Some(eq) = line[..rel].rfind('=') {
        let lhs = &line[..eq];
        let lhs = lhs.split(':').next().unwrap_or(lhs);
        let name = lhs
            .split_whitespace()
            .rev()
            .find(|w| w.bytes().all(is_ident_byte) && !w.is_empty())?;
        if name != "let" && name != "mut" {
            return Some(name.to_string());
        }
        return None;
    }
    // `name: HashMap<..>` / `name: Option<HashMap<..>>` style: name is
    // the ident before the first `:` left of the type token.
    let colon = line[..rel].rfind(':')?;
    // Reject `::` paths (e.g. `std::collections::HashMap`): scan left
    // past the whole `path::to::HashMap` chain first.
    if colon > 0 && line.as_bytes()[colon - 1] == b':' {
        let path_start = line[..colon]
            .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
            .map_or(0, |p| p + 1);
        let before = &line[..path_start];
        let colon2 = before.rfind(':')?;
        if colon2 > 0 && before.as_bytes()[colon2 - 1] == b':' {
            return None;
        }
        return name_left_of_colon(before, colon2);
    }
    name_left_of_colon(line, colon)
}

fn name_left_of_colon(line: &str, colon: usize) -> Option<String> {
    let name = line[..colon].trim_end();
    let start = name
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |p| p + 1);
    let ident = &name[start..];
    if ident.is_empty() || ident.bytes().next().is_some_and(|b| b.is_ascii_digit()) {
        None
    } else {
        Some(ident.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceModel;

    fn findings(src: &str) -> Vec<Finding> {
        check(&SourceModel::parse(src), Policy::strict())
    }

    #[test]
    fn l1_flags_unwrap_and_macros() {
        let f = findings("fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::NoPanic);
        let f = findings("fn f() { panic!(\"boom\"); }\n");
        assert_eq!(f.len(), 1);
        let f = findings("fn f() { todo!() }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn l1_skips_unwrap_or_and_should_panic() {
        assert!(findings("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n").is_empty());
        assert!(findings("fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }\n").is_empty());
        // `should_panic` is an attribute word, not a call.
        assert!(findings("#[should_panic(expected = \"x\")]\nfn g() {}\n").is_empty());
    }

    #[test]
    fn l1_skips_test_code_and_strings() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(findings(src).is_empty());
        assert!(findings("const S: &str = \"call .unwrap() later\";\n").is_empty());
    }

    #[test]
    fn l2_flags_hash_iteration() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) -> Vec<u8> {\n m.values().copied().collect()\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Determinism);
    }

    #[test]
    fn l2_flags_for_loop_over_hash() {
        let src = "use std::collections::HashMap;\nfn f() {\n let tf: HashMap<u8, u8> = HashMap::new();\n for (k, v) in tf {\n let _ = (k, v);\n }\n}\n";
        let f = findings(src);
        assert!(
            f.iter().any(|f| f.rule == Rule::Determinism),
            "for-loop over HashMap must fire: {f:?}"
        );
    }

    #[test]
    fn l2_flags_multiline_method_chain() {
        // rustfmt style: receiver and `.iter()` on different lines.
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) -> Vec<u8> {\n m\n  .values()\n  .copied()\n  .collect()\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Determinism);
    }

    #[test]
    fn l2_allows_lookup_only_use() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u8, u8>) -> Option<u8> {\n m.get(&1).copied()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn l2_btreemap_is_fine() {
        let src = "use std::collections::BTreeMap;\nfn f(m: BTreeMap<u8, u8>) -> Vec<u8> {\n m.values().copied().collect()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn l3_flags_spawn_unless_kernel_policy() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let f = findings(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PoolOnlyThreading);
        let kernel = Policy {
            check_threading: false,
            ..Policy::strict()
        };
        assert!(check(&SourceModel::parse(src), kernel).is_empty());
    }

    #[test]
    fn l3_flags_std_sync_locks_outside_kernel() {
        // Inline path.
        let f = findings("fn f() { let l = std::sync::RwLock::new(0); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PoolOnlyThreading);
        // Grouped import.
        let f = findings("use std::sync::{Arc, Mutex};\nfn f() {}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PoolOnlyThreading);
        // The kernel crate may build the primitive itself.
        let kernel = Policy {
            check_threading: false,
            ..Policy::strict()
        };
        let src = "use std::sync::{Arc, RwLock};\nfn f() { let l = RwLock::new(0); }\n";
        assert!(check(&SourceModel::parse(src), kernel).is_empty());
    }

    #[test]
    fn l3_allows_gencell_publication_and_parking_lot() {
        // The blessed pattern: GenCell generation publication plus a
        // parking_lot writer mutex. `std::sync::Arc` alone is fine.
        let src = "use std::sync::Arc;\nuse parking_lot::Mutex;\nuse tvdp_kernel::GenCell;\n\
                   fn publish(cell: &GenCell<u8>, w: &Mutex<u8>) {\n\
                    let v = *w.lock();\n cell.store(Arc::new(v));\n let _ = cell.load();\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn l4_flags_instant_now_and_thread_rng() {
        // One finding for the raw return type, one for the `::now` call.
        let f = findings("fn f() -> std::time::Instant { std::time::Instant::now() }\n");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == Rule::NoWallClock));
        let f = findings("fn f() { let mut r = rand::thread_rng(); }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn l4_flags_wall_clock_types_without_a_now_call() {
        // A stored Instant never calls `::now` in this file, but the
        // host clock still leaks in through whoever constructs it.
        let f = findings("pub struct T { pub at: std::time::Instant }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::NoWallClock);
        // Grouped import: SystemTime fires, Duration is a legal span.
        let f = findings("use std::time::{Duration, SystemTime};\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("SystemTime"));
        let f = findings("use std::time::Duration;\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_comment_suppresses_with_reason() {
        let src = "fn f(x: Option<u8>) -> u8 {\n // tvdp-lint: allow(no_panic, reason = \"invariant: filled above\")\n x.unwrap()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn allow_without_reason_becomes_finding() {
        let src = "fn f(x: Option<u8>) -> u8 {\n x.unwrap() // tvdp-lint: allow(no_panic)\n}\n";
        let f = findings(src);
        assert!(f.iter().any(|f| f.rule == Rule::BadAllow), "{f:?}");
        assert!(f.iter().any(|f| f.rule == Rule::NoPanic), "{f:?}");
    }

    #[test]
    fn unused_allow_becomes_finding() {
        // Well-formed allow, but nothing on the target line panics.
        let src = "fn f(x: u8) -> u8 {\n \
                   // tvdp-lint: allow(no_panic, reason = \"stale\")\n \
                   x + 1\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::BadAllow);
        assert_eq!(f[0].line, 2, "reported at the comment line");
        assert!(f[0].message.contains("unused allow(no_panic)"), "{f:?}");
    }

    #[test]
    fn used_allow_is_not_flagged_as_unused() {
        let src = "fn f(x: Option<u8>) -> u8 {\n \
                   // tvdp-lint: allow(no_panic, reason = \"invariant: checked\")\n \
                   x.unwrap()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn unused_allow_in_test_code_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n \
                   // tvdp-lint: allow(no_panic, reason = \"test only\")\n \
                   fn t(x: u8) -> u8 { x }\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn l5_flags_guard_held_across_pool_dispatch() {
        let src = "fn f(m: &parking_lot::Mutex<u8>, pool: &Pool) {\n \
                   let g = m.lock();\n \
                   pool.scope(|| {});\n \
                   let _ = *g;\n}\n";
        let f = findings(src);
        assert!(
            f.iter()
                .any(|f| f.rule == Rule::LockDiscipline && f.message.contains("pool dispatch")),
            "{f:?}"
        );
    }

    #[test]
    fn l5_flags_nested_lock_acquisition() {
        let src = "fn f(a: &parking_lot::Mutex<u8>, b: &parking_lot::Mutex<u8>) {\n \
                   let ga = a.lock();\n \
                   let gb = b.lock();\n \
                   let _ = (*ga, *gb);\n}\n";
        let f = findings(src);
        assert!(
            f.iter()
                .any(|f| f.rule == Rule::LockDiscipline && f.message.contains("nested lock")),
            "{f:?}"
        );
    }

    #[test]
    fn l5_respects_explicit_drop_before_dispatch() {
        let src = "fn f(m: &parking_lot::Mutex<u8>, pool: &Pool) {\n \
                   let g = m.lock();\n \
                   let v = *g;\n \
                   drop(g);\n \
                   pool.scope(|| v);\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn l5_option_map_under_guard_is_not_a_dispatch() {
        let src = "fn f(m: &parking_lot::Mutex<Option<u8>>) -> Option<u8> {\n \
                   let g = m.lock();\n \
                   g.map(|v| v + 1)\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn l5_pool_map_under_guard_is_a_dispatch() {
        let src = "fn f(m: &parking_lot::Mutex<u8>, pool: &Pool) -> Vec<u8> {\n \
                   let g = m.lock();\n \
                   pool.map(&[1u8, 2], |_, &x| x + *g)\n}\n";
        let f = findings(src);
        assert!(
            f.iter()
                .any(|f| f.rule == Rule::LockDiscipline && f.message.contains("pool dispatch")),
            "{f:?}"
        );
    }

    #[test]
    fn l5_ignores_temporary_guards_and_consumed_results() {
        // `*m.lock() = 1` drops its guard at the semicolon; `.lock().clone()`
        // consumes the guard in the same expression. Neither stays live.
        let src = "fn f(m: &parking_lot::Mutex<u8>, p: &parking_lot::Mutex<u8>) {\n \
                   *m.lock() = 1;\n \
                   let v = p.lock().clone();\n \
                   let _ = v;\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn l6_flags_bare_atomic_orderings_only() {
        let f = findings("fn f(x: &AtomicUsize) -> usize { x.load(Ordering::SeqCst) }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::AtomicOrdering);
        // cmp::Ordering and an ordering-free line never fire.
        assert!(findings("fn f(a: u8, b: u8) -> std::cmp::Ordering { a.cmp(&b) }\n").is_empty());
        // The mandatory annotation both suppresses and is counted used.
        let src = "fn f(x: &AtomicUsize) -> usize {\n \
                   // tvdp-lint: allow(atomic_ordering, reason = \"SeqCst: publication fence\")\n \
                   x.load(Ordering::SeqCst)\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn l7_flags_float_sum_and_fold() {
        let f = findings("fn f(xs: &[f64]) -> f64 { xs.iter().sum() }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::FloatReduction);
        let f = findings("fn f(xs: &[u32]) -> f32 { xs.iter().map(|x| *x as f32).sum::<f32>() }\n");
        assert!(f.iter().any(|f| f.rule == Rule::FloatReduction), "{f:?}");
        let f = findings("fn f(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |a, b| a + b) }\n");
        assert!(f.iter().any(|f| f.rule == Rule::FloatReduction), "{f:?}");
    }

    #[test]
    fn l7_skips_integer_sums_and_minmax_folds() {
        assert!(findings("fn f(xs: &[u64]) -> u64 { xs.iter().sum() }\n").is_empty());
        assert!(findings(
            "fn f(xs: &[f64]) -> f64 { xs.iter().copied().fold(f64::NEG_INFINITY, f64::max) }\n"
        )
        .is_empty());
    }

    #[test]
    fn l7_flags_plus_eq_float_accumulators() {
        let src = "fn f(xs: &[f64]) -> f64 {\n let mut acc = 0.0;\n \
                   for x in xs {\n acc += x;\n }\n acc\n}\n";
        let f = findings(src);
        assert!(f.iter().any(|f| f.rule == Rule::FloatReduction), "{f:?}");
        // Integer accumulators are fine.
        let src = "fn f(xs: &[u64]) -> u64 {\n let mut n = 0u64;\n \
                   for x in xs {\n n += x;\n }\n n\n}\n";
        assert!(findings(src).is_empty());
    }
}
