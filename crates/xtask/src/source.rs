//! Lexical source model for the TVDP invariant linter.
//!
//! The linter is deliberately dependency-free (no `syn`), so rules run
//! over a *masked* copy of each file: comment and string/char-literal
//! bytes are blanked out (newlines preserved) so that token scans never
//! match inside prose, and `#[cfg(test)]`-gated items are resolved to
//! line ranges so that test-only code is exempt. The model also extracts
//! `// tvdp-lint: allow(<rule>, reason = "...")` escape-hatch comments
//! and maps each one to the line of code it suppresses.

use std::collections::BTreeMap;

/// A parsed `tvdp-lint: allow(...)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule name as written, e.g. `no_panic`.
    pub rule: String,
    /// The mandatory human-readable justification.
    pub reason: String,
    /// 1-based line the comment itself sits on.
    pub comment_line: usize,
}

/// A malformed allow comment (missing reason, unknown syntax).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadAllow {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// What is wrong with it.
    pub problem: String,
}

/// Masked view of one source file plus the side tables rules need.
#[derive(Debug)]
pub struct SourceModel {
    /// Original text (for snippet extraction in reports).
    pub raw: String,
    /// Same byte length as `raw`; comments and literal contents are
    /// spaces, newlines are preserved.
    pub masked: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// `true` for each line inside a `#[cfg(test)]`-gated item.
    pub test_lines: Vec<bool>,
    /// Code line (1-based) -> rules suppressed on that line.
    pub allows: BTreeMap<usize, Vec<Allow>>,
    /// Malformed escape-hatch comments (reported as findings).
    pub bad_allows: Vec<BadAllow>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length in bytes of the UTF-8 character starting at `bytes[i]`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

impl SourceModel {
    /// Builds the model for one file's contents.
    pub fn parse(raw: &str) -> SourceModel {
        let (masked, comments) = mask(raw);
        let line_starts = line_starts(raw);
        let (allows, bad_allows) = collect_allows(raw, &masked, &line_starts, &comments);
        let test_lines = test_lines(&masked, &line_starts);
        SourceModel {
            raw: raw.to_string(),
            masked,
            line_starts,
            test_lines,
            allows,
            bad_allows,
        }
    }

    /// 1-based (line, column) for a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// Whether the 1-based line is inside `#[cfg(test)]`-gated code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// Whether `rule` is suppressed on the 1-based line.
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|v| v.iter().any(|a| a.rule == rule))
    }

    /// The raw text of a 1-based line, trimmed (for report snippets).
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.raw.len(), |&e| e.saturating_sub(1));
        self.raw[start..end.max(start)].trim()
    }
}

/// One comment span in the original text (byte range, excludes markers'
/// surroundings — the range covers the whole comment including `//`).
#[derive(Debug)]
struct CommentSpan {
    start: usize,
    end: usize,
}

/// Blanks comments and string/char literals; returns the masked text and
/// the comment spans (needed to find allow annotations afterwards).
fn mask(src: &str) -> (String, Vec<CommentSpan>) {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut comments = Vec::new();
    let mut i = 0;

    // Blanks out[range], preserving newlines so line numbers survive.
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in &mut out[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(CommentSpan { start, end: i });
                blank(&mut out, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(CommentSpan { start, end: i });
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start, i.min(bytes.len()));
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                let start = i;
                // Skip the `r` / `b` / `br` prefix.
                while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
                    i += 1;
                }
                let mut hashes = 0;
                while bytes.get(i) == Some(&b'#') {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                let raw = src[start..].starts_with('r') || src[start + 1..].starts_with('r');
                loop {
                    match bytes.get(i) {
                        None => break,
                        Some(b'\\') if !raw => i += 2,
                        Some(b'"') => {
                            let mut closing = 0;
                            while closing < hashes && bytes.get(i + 1 + closing) == Some(&b'#') {
                                closing += 1;
                            }
                            if closing == hashes {
                                i += 1 + hashes;
                                break;
                            }
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start, i.min(bytes.len()));
            }
            b'\'' => {
                // Char literal vs lifetime: a literal is `'\..'` or `'<one
                // char>'`; anything else (e.g. `'static`) is a lifetime.
                if bytes.get(i + 1) == Some(&b'\\') {
                    let start = i;
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(bytes.len());
                    blank(&mut out, start, i);
                } else if let Some(&c) = bytes.get(i + 1) {
                    let clen = utf8_len(c);
                    if bytes.get(i + 1 + clen) == Some(&b'\'') {
                        let start = i;
                        i += 2 + clen;
                        blank(&mut out, start, i);
                    } else {
                        i += 1; // lifetime tick
                    }
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // The masking only writes ASCII spaces over whole spans, so the
    // buffer stays valid UTF-8 unless a span ended mid-character; fall
    // back to lossy conversion to stay total.
    let masked = String::from_utf8(out)
        .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned());
    (masked, comments)
}

/// Is `bytes[i..]` the start of a raw/byte string literal (`r"`, `r#"`,
/// `b"`, `br#"` ...), as opposed to a plain identifier like `radius`?
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // Must not be the middle of an identifier: `for` / `attr` end in
    // `r` but are preceded by ident bytes.
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Extracts `tvdp-lint: allow(rule, reason = "...")` annotations from
/// comment spans and resolves each to the code line it suppresses: the
/// same line for a trailing comment, otherwise the next line that holds
/// code.
fn collect_allows(
    raw: &str,
    masked: &str,
    line_starts: &[usize],
    comments: &[CommentSpan],
) -> (BTreeMap<usize, Vec<Allow>>, Vec<BadAllow>) {
    const MARKER: &str = "tvdp-lint:";
    let mut allows: BTreeMap<usize, Vec<Allow>> = BTreeMap::new();
    let mut bad = Vec::new();
    let masked_lines: Vec<&str> = masked.split('\n').collect();

    for span in comments {
        let text = &raw[span.start..span.end];
        // Doc comments only *describe* the escape hatch (rustdoc prose);
        // a real directive is always a plain `//` or `/* */` comment.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|d| text.starts_with(d))
        {
            continue;
        }
        let Some(marker_pos) = text.find(MARKER) else {
            continue;
        };
        let comment_line = match line_starts.binary_search(&span.start) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        let directive = text[marker_pos + MARKER.len()..].trim_start();
        match parse_allow(directive) {
            Ok((rule, reason)) => {
                // Trailing comment -> same line; standalone -> next code line.
                let line_start = line_starts[comment_line - 1];
                let before = &masked[line_start..span.start.max(line_start)];
                let target = if before.trim().is_empty() {
                    // Standalone: walk forward to the first non-blank
                    // masked line after the comment.
                    let mut t = comment_line + 1;
                    while t <= masked_lines.len() && masked_lines[t - 1].trim().is_empty() {
                        t += 1;
                    }
                    t
                } else {
                    comment_line
                };
                allows.entry(target).or_default().push(Allow {
                    rule,
                    reason,
                    comment_line,
                });
            }
            Err(problem) => bad.push(BadAllow {
                line: comment_line,
                problem,
            }),
        }
    }
    (allows, bad)
}

/// Parses `allow(rule, reason = "...")`; the reason is mandatory.
fn parse_allow(directive: &str) -> Result<(String, String), String> {
    let rest = directive
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(<rule>, reason = \"...\")`".to_string())?;
    let close = rest
        .rfind(')')
        .ok_or_else(|| "unclosed `allow(` directive".to_string())?;
    let body = &rest[..close];
    let (rule, tail) = match body.split_once(',') {
        Some((r, t)) => (r.trim(), t.trim()),
        None => (body.trim(), ""),
    };
    if rule.is_empty() || !rule.bytes().all(is_ident_byte) {
        return Err(format!("bad rule name `{rule}`"));
    }
    let reason = tail
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or("");
    if reason.trim().is_empty() {
        return Err(format!(
            "allow({rule}) needs a justification: allow({rule}, reason = \"...\")"
        ));
    }
    Ok((rule.to_string(), reason.trim().to_string()))
}

/// Marks every line covered by a `#[cfg(test)]`-gated item (or a
/// `#[cfg(any(.., test, ..))]` variant) as test code.
fn test_lines(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let bytes = masked.as_bytes();
    let mut flags = vec![false; line_starts.len()];
    let mut i = 0;
    while let Some(rel) = masked[i..].find("#[") {
        let attr_start = i + rel;
        let Some(attr_end) = matching_bracket(bytes, attr_start + 1, b'[', b']') else {
            break;
        };
        let attr_body = &masked[attr_start + 2..attr_end];
        if attr_is_test_cfg(attr_body) {
            let item_end = item_end_after(bytes, attr_end + 1);
            mark_lines(&mut flags, line_starts, attr_start, item_end);
            i = item_end;
        } else {
            i = attr_end + 1;
        }
    }
    flags
}

/// Does the attribute body (text between `#[` and `]`) gate on `test`?
fn attr_is_test_cfg(body: &str) -> bool {
    let body = body.trim();
    let Some(args) = body.strip_prefix("cfg") else {
        return false;
    };
    let args = args.trim_start();
    if !args.starts_with('(') {
        return false;
    }
    // `test` must appear as a standalone word inside the cfg predicate.
    let inner = &args[1..args.rfind(')').unwrap_or(args.len())];
    let b = inner.as_bytes();
    let mut at = 0;
    while let Some(rel) = inner[at..].find("test") {
        let s = at + rel;
        let before_ok = s == 0 || !is_ident_byte(b[s - 1]);
        let after = s + 4;
        let after_ok = after >= b.len() || !is_ident_byte(b[after]);
        if before_ok && after_ok {
            return true;
        }
        at = s + 4;
    }
    false
}

/// Byte offset one past the end of the item that starts after offset
/// `from` (skipping further attributes): either the matching `}` of its
/// first block, or the first top-level `;`.
fn item_end_after(bytes: &[u8], from: usize) -> usize {
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'#' if bytes.get(i + 1) == Some(&b'[') => {
                match matching_bracket(bytes, i + 1, b'[', b']') {
                    Some(e) => i = e + 1,
                    None => return bytes.len(),
                }
            }
            b'{' => {
                return matching_bracket(bytes, i, b'{', b'}').map_or(bytes.len(), |e| e + 1);
            }
            b';' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Offset of the bracket matching `open` at `bytes[start]`.
fn matching_bracket(bytes: &[u8], start: usize, open: u8, close: u8) -> Option<usize> {
    debug_assert_eq!(bytes.get(start), Some(&open));
    let mut depth = 0usize;
    for (off, &b) in bytes.iter().enumerate().skip(start) {
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some(off);
            }
        }
    }
    None
}

fn mark_lines(flags: &mut [bool], line_starts: &[usize], start: usize, end: usize) {
    let first = match line_starts.binary_search(&start) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    let last = match line_starts.binary_search(&end) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    for f in flags.iter_mut().take(last + 1).skip(first) {
        *f = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let x = \"unwrap()\"; // .unwrap() here\nlet y = 1; /* panic! */\n";
        let m = SourceModel::parse(src);
        assert!(!m.masked.contains("unwrap"));
        assert!(!m.masked.contains("panic"));
        assert_eq!(m.masked.len(), src.len());
        assert_eq!(m.masked.matches('\n').count(), 2);
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let src = "let s = r#\"x.unwrap()\"#; let c = '\\n'; let l: &'static str = \"p!\";";
        let m = SourceModel::parse(src);
        assert!(!m.masked.contains("unwrap"));
        assert!(m.masked.contains("'static"), "lifetime must survive");
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let m = SourceModel::parse(src);
        assert!(m.masked.contains("'a>"));
        assert!(!m.masked.contains("'x'"));
    }

    #[test]
    fn cfg_test_module_lines_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let m = SourceModel::parse(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(2));
        assert!(m.is_test_line(3));
        assert!(m.is_test_line(4));
        assert!(m.is_test_line(5));
        assert!(!m.is_test_line(6));
    }

    #[test]
    fn cfg_any_test_marked_but_cfg_feature_not() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod a {}\n#[cfg(feature = \"testing_tools\")]\nmod b {}\n";
        let m = SourceModel::parse(src);
        assert!(m.is_test_line(2));
        // `testing_tools` is a feature string (masked), not a test gate.
        assert!(!m.is_test_line(4));
    }

    #[test]
    fn trailing_allow_targets_same_line() {
        let src = "let x = y.unwrap(); // tvdp-lint: allow(no_panic, reason = \"startup only\")\n";
        let m = SourceModel::parse(src);
        assert!(m.is_allowed(1, "no_panic"));
        assert!(!m.is_allowed(1, "determinism"));
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "// tvdp-lint: allow(determinism, reason = \"order-insensitive fold\")\n\nfor v in map.values() {}\n";
        let m = SourceModel::parse(src);
        assert!(m.is_allowed(3, "determinism"));
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let src = "let x = y.unwrap(); // tvdp-lint: allow(no_panic)\n";
        let m = SourceModel::parse(src);
        assert!(!m.is_allowed(1, "no_panic"));
        assert_eq!(m.bad_allows.len(), 1);
        assert!(m.bad_allows[0].problem.contains("justification"));
    }
}
