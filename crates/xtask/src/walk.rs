//! Workspace traversal and per-file lint policy.
//!
//! Workspace mode walks `crates/*/src/**/*.rs` plus the umbrella crate's
//! `src/`, in sorted order (the linter obeys its own determinism rule).
//! Policy is derived from the path:
//!
//! * `crates/kernel` — owns the thread pool, so L3 is off there; it is
//!   also the home of the canonical fixed-order reductions (L7 off) and
//!   implements the dispatch primitives L5 polices (L5 off);
//! * `crates/check` — the model checker schedules real OS threads and
//!   its shims are the reviewed home of explicit atomic orderings, so
//!   L3/L5/L6 are off there (it deliberately models broken locking);
//! * `crates/bench` — exists to measure wall-clock time and report
//!   float means, so L4 and L7 are off;
//! * `crates/api/src/limit.rs` — the rate limiter is the designated
//!   place where wall-clock time would be fed in, so L4 is off.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{check, Finding, Policy};
use crate::source::SourceModel;

/// Modules where ambient time/randomness is part of the job.
const WALL_CLOCK_ALLOWLIST: [&str; 1] = ["crates/api/src/limit.rs"];

/// Crates whose whole `src/` is exempt from L4 (benchmark drivers).
const WALL_CLOCK_ALLOWLIST_CRATES: [&str; 1] = ["bench"];

/// Crates allowed to create threads: the pool owner and the model
/// checker (whose controlled scheduler *is* its subject matter).
const THREADING_OWNERS: [&str; 2] = ["kernel", "check"];

/// Crates exempt from lock-discipline L5: the kernel implements the
/// dispatch primitives, and the checker deliberately models broken
/// locking (its mutants are the rule's counterexamples).
const LOCK_DISCIPLINE_EXEMPT: [&str; 2] = ["kernel", "check"];

/// Crates exempt from atomic-ordering L6: the checker's scheduler shims
/// are the one reviewed home of explicit orderings.
const ATOMIC_ORDERING_EXEMPT: [&str; 1] = ["check"];

/// Crates exempt from float-reduction L7: the kernel owns the canonical
/// fixed-order reduce paths, and bench reports are diagnostics.
const FLOAT_REDUCTION_EXEMPT: [&str; 2] = ["kernel", "bench"];

/// The lint policy for one file, derived from its workspace-relative
/// path (separators normalized to `/`).
pub fn policy_for(rel_path: &str) -> Policy {
    let rel = rel_path.replace('\\', "/");
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    Policy {
        check_threading: !THREADING_OWNERS.contains(&crate_name),
        check_wall_clock: !WALL_CLOCK_ALLOWLIST_CRATES.contains(&crate_name)
            && !WALL_CLOCK_ALLOWLIST.iter().any(|m| rel.ends_with(m)),
        check_lock_discipline: !LOCK_DISCIPLINE_EXEMPT.contains(&crate_name),
        check_atomic_ordering: !ATOMIC_ORDERING_EXEMPT.contains(&crate_name),
        check_float_reduction: !FLOAT_REDUCTION_EXEMPT.contains(&crate_name),
    }
}

/// A finding bound to the file it came from.
#[derive(Debug, Clone)]
pub struct FileFinding {
    /// Workspace-relative path.
    pub path: String,
    /// The finding itself.
    pub finding: Finding,
    /// Trimmed source line, for the report.
    pub snippet: String,
}

/// Lints one file under an explicit policy.
pub fn lint_file(root: &Path, rel_path: &str, policy: Policy) -> io::Result<Vec<FileFinding>> {
    let text = fs::read_to_string(root.join(rel_path))?;
    let model = SourceModel::parse(&text);
    Ok(check(&model, policy)
        .into_iter()
        .map(|finding| FileFinding {
            path: rel_path.to_string(),
            snippet: model.line_text(finding.line).to_string(),
            finding,
        })
        .collect())
}

/// All library source files in the workspace, sorted.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        collect_rs(&umbrella, &mut files)?;
    }
    let mut rel: Vec<String> = files
        .iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<FileFinding>> {
    let mut findings = Vec::new();
    for rel in workspace_sources(root)? {
        findings.extend(lint_file(root, &rel, policy_for(&rel))?);
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_exempt_from_threading_rule() {
        assert!(!policy_for("crates/kernel/src/pool.rs").check_threading);
        assert!(policy_for("crates/storage/src/store.rs").check_threading);
    }

    #[test]
    fn checker_owns_its_scheduler_and_orderings() {
        let p = policy_for("crates/check/src/exec.rs");
        assert!(!p.check_threading);
        assert!(!p.check_lock_discipline);
        assert!(!p.check_atomic_ordering);
        assert!(p.check_float_reduction, "no float math in the checker");
    }

    #[test]
    fn kernel_owns_canonical_reductions_and_dispatch() {
        let p = policy_for("crates/kernel/src/pool.rs");
        assert!(!p.check_lock_discipline);
        assert!(!p.check_float_reduction);
        assert!(
            p.check_atomic_ordering,
            "kernel orderings still need review"
        );
        let q = policy_for("crates/query/src/sharded.rs");
        assert!(q.check_lock_discipline);
        assert!(q.check_atomic_ordering);
        assert!(q.check_float_reduction);
    }

    #[test]
    fn bench_reports_may_sum_floats() {
        assert!(!policy_for("crates/bench/src/lib.rs").check_float_reduction);
        assert!(policy_for("crates/ml/src/eval.rs").check_float_reduction);
    }

    #[test]
    fn bench_and_rate_limiter_exempt_from_wall_clock() {
        assert!(!policy_for("crates/bench/src/bin/fig6.rs").check_wall_clock);
        assert!(!policy_for("crates/api/src/limit.rs").check_wall_clock);
        assert!(policy_for("crates/api/src/router.rs").check_wall_clock);
        assert!(policy_for("crates/query/src/engine.rs").check_wall_clock);
    }
}
