//! End-to-end tests: the `cargo xtask lint` binary must reject each
//! committed violation fixture (nonzero exit) and pass the clean one.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_lint_on(fixture: &str) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg(format!("crates/xtask/fixtures/{fixture}"))
        .env("CARGO_MANIFEST_DIR", workspace_root().join("crates/xtask"))
        .current_dir(workspace_root())
        .output();
    match out {
        Ok(o) => o,
        Err(e) => panic!("failed to run xtask binary: {e}"),
    }
}

fn assert_fires(fixture: &str, rule_tag: &str) {
    let out = run_lint_on(fixture);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "lint must exit nonzero on {fixture}; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains(rule_tag),
        "expected a {rule_tag} finding in {fixture}; got:\n{stdout}"
    );
}

#[test]
fn l1_fixture_rejected() {
    assert_fires("l1_no_panic.rs", "[L1/no_panic]");
}

#[test]
fn l2_fixture_rejected() {
    assert_fires("l2_hash_iteration.rs", "[L2/determinism]");
}

#[test]
fn l3_fixture_rejected() {
    assert_fires("l3_adhoc_thread.rs", "[L3/pool_only_threading]");
}

#[test]
fn l4_fixture_rejected() {
    assert_fires("l4_wall_clock.rs", "[L4/no_wall_clock]");
}

#[test]
fn l4_transport_fixture_rejected() {
    assert_fires("l4_transport_wall_clock.rs", "[L4/no_wall_clock]");
}

#[test]
fn l4_transport_fixture_flags_each_violation_once() {
    let out = run_lint_on("l4_transport_wall_clock.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Instant::now + SystemTime::now + thread_rng.
    assert_eq!(
        stdout.matches("[L4/no_wall_clock]").count(),
        3,
        "wrong violation count:\n{stdout}"
    );
}

#[test]
fn clean_virtual_transport_fixture_passes() {
    let out = run_lint_on("clean_virtual_transport.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "virtual-clock transport fixture must pass; stdout:\n{stdout}"
    );
}

#[test]
fn clean_fixture_passes() {
    let out = run_lint_on("clean_with_allows.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "clean fixture must pass; stdout:\n{stdout}"
    );
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn l1_fixture_flags_each_violation_once() {
    let out = run_lint_on("l1_no_panic.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // unwrap + expect + todo!, but not the unwrap inside #[cfg(test)].
    assert_eq!(
        stdout.matches("[L1/no_panic]").count(),
        3,
        "wrong violation count:\n{stdout}"
    );
}

#[test]
fn whole_workspace_is_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .env("CARGO_MANIFEST_DIR", workspace_root().join("crates/xtask"))
        .current_dir(workspace_root())
        .output();
    let out = match out {
        Ok(o) => o,
        Err(e) => panic!("failed to run xtask binary: {e}"),
    };
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace must be lint-clean:\n{stdout}"
    );
}
