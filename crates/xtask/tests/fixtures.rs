//! End-to-end tests: the `cargo xtask lint` binary must reject each
//! committed violation fixture (nonzero exit) and pass the clean one.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_lint_on(fixture: &str) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg(format!("crates/xtask/fixtures/{fixture}"))
        .env("CARGO_MANIFEST_DIR", workspace_root().join("crates/xtask"))
        .current_dir(workspace_root())
        .output();
    match out {
        Ok(o) => o,
        Err(e) => panic!("failed to run xtask binary: {e}"),
    }
}

fn assert_fires(fixture: &str, rule_tag: &str) {
    let out = run_lint_on(fixture);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "lint must exit nonzero on {fixture}; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains(rule_tag),
        "expected a {rule_tag} finding in {fixture}; got:\n{stdout}"
    );
}

#[test]
fn l1_fixture_rejected() {
    assert_fires("l1_no_panic.rs", "[L1/no_panic]");
}

#[test]
fn l2_fixture_rejected() {
    assert_fires("l2_hash_iteration.rs", "[L2/determinism]");
}

#[test]
fn l3_fixture_rejected() {
    assert_fires("l3_adhoc_thread.rs", "[L3/pool_only_threading]");
}

#[test]
fn l4_fixture_rejected() {
    assert_fires("l4_wall_clock.rs", "[L4/no_wall_clock]");
}

#[test]
fn l4_transport_fixture_rejected() {
    assert_fires("l4_transport_wall_clock.rs", "[L4/no_wall_clock]");
}

#[test]
fn l4_transport_fixture_flags_each_violation_once() {
    let out = run_lint_on("l4_transport_wall_clock.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Instant::now + SystemTime::now + thread_rng, plus the grouped
    // `use std::time::{Instant, SystemTime}` import (one per type).
    assert_eq!(
        stdout.matches("[L4/no_wall_clock]").count(),
        5,
        "wrong violation count:\n{stdout}"
    );
}

#[test]
fn l4_admission_instant_fixture_rejected() {
    assert_fires("l4_admission_instant.rs", "[L4/no_wall_clock]");
}

#[test]
fn l4_admission_instant_fixture_flags_each_type_once() {
    let out = run_lint_on("l4_admission_instant.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The stored `std::time::Instant` field and the `SystemTime` in the
    // grouped import; `Duration` in the same group stays legal.
    assert_eq!(
        stdout.matches("[L4/no_wall_clock]").count(),
        2,
        "wrong violation count:\n{stdout}"
    );
    assert!(stdout.contains("wall-clock type"), "{stdout}");
}

#[test]
fn l5_fixture_rejected() {
    assert_fires("l5_lock_across_dispatch.rs", "[L5/lock_discipline]");
}

#[test]
fn l5_fixture_flags_dispatch_and_nested_acquisition() {
    let out = run_lint_on("l5_lock_across_dispatch.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pool dispatch"), "{stdout}");
    assert!(stdout.contains("nested lock"), "{stdout}");
}

#[test]
fn l6_fixture_rejected() {
    assert_fires("l6_bare_atomic_ordering.rs", "[L6/atomic_ordering]");
}

#[test]
fn l6_fixture_flags_only_the_unreviewed_sites() {
    let out = run_lint_on("l6_bare_atomic_ordering.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // SeqCst load + Relaxed store fire; the annotated fetch_add does not.
    assert_eq!(
        stdout.matches("[L6/atomic_ordering]").count(),
        2,
        "wrong violation count:\n{stdout}"
    );
}

#[test]
fn l7_fixture_rejected() {
    assert_fires("l7_float_reduction.rs", "[L7/float_reduction]");
}

#[test]
fn l7_fixture_flags_each_float_reduction_once() {
    let out = run_lint_on("l7_float_reduction.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Bare sum + float fold + `acc +=`; the integer-turbofish sum and
    // the min/max fold stay legal.
    assert_eq!(
        stdout.matches("[L7/float_reduction]").count(),
        3,
        "wrong violation count:\n{stdout}"
    );
}

#[test]
fn l0_unused_allow_fixture_rejected() {
    assert_fires("l0_unused_allow.rs", "[L0/bad_allow]");
    let out = run_lint_on("l0_unused_allow.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unused allow(no_panic)"), "{stdout}");
}

#[test]
fn json_format_reports_findings_machine_readably() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--format")
        .arg("json")
        .arg("crates/xtask/fixtures/l6_bare_atomic_ordering.rs")
        .env("CARGO_MANIFEST_DIR", workspace_root().join("crates/xtask"))
        .current_dir(workspace_root())
        .output();
    let out = match out {
        Ok(o) => o,
        Err(e) => panic!("failed to run xtask binary: {e}"),
    };
    assert!(!out.status.success(), "violations must still exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.trim();
    assert!(line.starts_with("{\"findings\":["), "{line}");
    assert!(line.ends_with(",\"count\":2}"), "{line}");
    assert!(
        line.contains("\"file\":\"crates/xtask/fixtures/l6_bare_atomic_ordering.rs\""),
        "{line}"
    );
    assert!(line.contains("\"rule\":\"L6\""), "{line}");
    assert!(line.contains("\"name\":\"atomic_ordering\""), "{line}");
    assert!(line.contains("\"line\":"), "{line}");
    assert!(line.contains("\"snippet\":"), "{line}");
}

#[test]
fn json_format_clean_file_reports_empty_findings() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--format=json")
        .arg("crates/xtask/fixtures/clean_with_allows.rs")
        .env("CARGO_MANIFEST_DIR", workspace_root().join("crates/xtask"))
        .current_dir(workspace_root())
        .output();
    let out = match out {
        Ok(o) => o,
        Err(e) => panic!("failed to run xtask binary: {e}"),
    };
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert_eq!(stdout.trim(), "{\"findings\":[],\"count\":0}");
}

#[test]
fn clean_virtual_transport_fixture_passes() {
    let out = run_lint_on("clean_virtual_transport.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "virtual-clock transport fixture must pass; stdout:\n{stdout}"
    );
}

#[test]
fn clean_fixture_passes() {
    let out = run_lint_on("clean_with_allows.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "clean fixture must pass; stdout:\n{stdout}"
    );
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn l1_fixture_flags_each_violation_once() {
    let out = run_lint_on("l1_no_panic.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // unwrap + expect + todo!, but not the unwrap inside #[cfg(test)].
    assert_eq!(
        stdout.matches("[L1/no_panic]").count(),
        3,
        "wrong violation count:\n{stdout}"
    );
}

#[test]
fn whole_workspace_is_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .env("CARGO_MANIFEST_DIR", workspace_root().join("crates/xtask"))
        .current_dir(workspace_root())
        .output();
    let out = match out {
        Ok(o) => o,
        Err(e) => panic!("failed to run xtask binary: {e}"),
    };
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace must be lint-clean:\n{stdout}"
    );
}
