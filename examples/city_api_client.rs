//! A non-technical partner using TVDP purely through the JSON API
//! (paper Section V: "API users without deep programming experience
//! easily have access to APIs").
//!
//! Everything below goes through `ApiServer::handle` with JSON text
//! bodies — no direct platform calls. Pixel buffers travel as hex
//! strings, the compact wire form the edge transport uses too.
//!
//! Run with: `cargo run --release --example city_api_client`

use std::sync::Arc;

use tvdp::api::{ApiRequest, ApiServer, RateLimitConfig};
use tvdp::datagen::{generate, DatasetConfig};
use tvdp::platform::{PlatformConfig, Role, Tvdp};
use tvdp::storage::codec;

fn main() {
    // Platform side: stand up the service and issue a key.
    let platform = Arc::new(Tvdp::new(PlatformConfig::default()));
    let dept = platform.register_user("Bureau of Street Services", Role::Government);
    let server = ApiServer::with_rate_limit(
        Arc::clone(&platform),
        RateLimitConfig {
            burst: 10_000,
            per_second: 10_000.0,
            ..Default::default()
        },
    );
    let key = server.issue_key(dept);
    println!("issued API key {key}\n");

    let mut now_ms = 0i64;
    let mut call = |endpoint: &str, body: String| {
        now_ms += 7;
        let response = server.handle(&ApiRequest::new(key.clone(), endpoint, body), now_ms);
        assert!(
            response.is_ok(),
            "{endpoint} failed: {}",
            response.render_body()
        );
        response.body
    };

    // Register the labelling task.
    let scheme = call(
        "schemes/register",
        concat!(
            r#"{"name":"street-cleanliness","labels":["Bulky Item","Illegal Dumping","#,
            r#""Encampment","Overgrown Vegetation","Clean"]}"#
        )
        .to_string(),
    )["scheme"]
        .as_u64()
        .unwrap();
    println!("registered scheme cls-{scheme}");

    // Upload 120 images with metadata, labelling 100 of them.
    let data = generate(&DatasetConfig {
        n_images: 120,
        image_size: 48,
        ..Default::default()
    });
    let mut image_ids = Vec::new();
    for (i, d) in data.iter().enumerate() {
        let keywords: Vec<String> = d.keywords.iter().map(|k| format!("\"{k}\"")).collect();
        let body = format!(
            concat!(
                r#"{{"width":{},"height":{},"pixels":"{}","lat":{},"lon":{},"#,
                r#""fov":{{"heading_deg":{},"angle_deg":{},"radius_m":{}}},"#,
                r#""captured_at":{},"uploaded_at":{},"keywords":[{}]}}"#
            ),
            d.image.width(),
            d.image.height(),
            codec::hex_encode(d.image.raw()),
            d.fov.camera.lat,
            d.fov.camera.lon,
            d.fov.heading_deg,
            d.fov.angle_deg,
            d.fov.radius_m,
            d.captured_at,
            d.uploaded_at,
            keywords.join(","),
        );
        let id = call("data/add", body)["image"].as_u64().unwrap();
        if i < 100 {
            call(
                "annotations/add",
                format!(
                    r#"{{"image":{id},"scheme":{scheme},"label":{}}}"#,
                    d.cleanliness.index()
                ),
            );
        }
        image_ids.push(id);
    }
    println!("uploaded {} images, labelled 100", image_ids.len());

    // Devise a model over the uploads (paper API 7).
    let model = call(
        "models/devise",
        format!(
            r#"{{"name":"cleanliness","scheme":{scheme},"feature_kind":"Cnn","algorithm":"Mlp"}}"#
        ),
    )["model"]
        .as_u64()
        .unwrap();
    println!("devised model model-{model}");

    // Apply it to the unlabelled tail (paper API 5).
    let tail: Vec<String> = image_ids[100..].iter().map(u64::to_string).collect();
    let preds = call(
        "models/apply",
        format!(r#"{{"model":{model},"images":[{}]}}"#, tail.join(",")),
    );
    println!(
        "applied model to {} images",
        preds["predictions"].as_array().unwrap().len()
    );

    // Search by keyword and by region (paper API 2).
    let by_word = call(
        "data/search",
        r#"{"query":{"Textual":{"text":"tent","mode":"Any"}}}"#.to_string(),
    );
    println!(
        "keyword 'tent' matches    : {}",
        by_word["count"].as_u64().unwrap()
    );
    let by_region = call(
        "data/search",
        concat!(
            r#"{"query":{"Spatial":{"Range":{"min_lat":34.04,"min_lon":-118.26,"#,
            r#""max_lat":34.053,"max_lon":-118.238}}}}"#
        )
        .to_string(),
    );
    println!(
        "north-half region matches : {}",
        by_region["count"].as_u64().unwrap()
    );

    // Download a record with pixels (paper API 3).
    let item = call(
        "data/download",
        format!(r#"{{"ids":[{}],"include_pixels":true}}"#, image_ids[0]),
    );
    let pixels = codec::hex_decode(item["items"][0]["pixels"].as_str().unwrap()).unwrap();
    println!(
        "downloaded image {} ({} keyword(s), {} pixel bytes)",
        image_ids[0],
        item["items"][0]["keywords"].as_array().unwrap().len(),
        pixels.len(),
    );

    // Which model should a Raspberry Pi in the field run? (edge dispatch)
    let pick = call(
        "edge/dispatch",
        r#"{"device":"rpi","max_latency_ms":800.0}"#.to_string(),
    );
    println!(
        "edge dispatch for an RPi  : {} ({} MB download)",
        pick["model"].as_str().unwrap(),
        pick["download_bytes"].as_u64().unwrap() / 1_000_000
    );

    let stats = call("stats", "{}".to_string());
    println!(
        "\nfinal stats over the API  : {} images, {} annotations, {} models",
        stats["images"].as_u64().unwrap(),
        stats["annotations"].as_u64().unwrap(),
        stats["models"].as_u64().unwrap()
    );
}
