//! A non-technical partner using TVDP purely through the JSON API
//! (paper Section V: "API users without deep programming experience
//! easily have access to APIs").
//!
//! Everything below goes through `ApiServer::handle` with JSON bodies —
//! no direct platform calls.
//!
//! Run with: `cargo run --release --example city_api_client`

use std::sync::Arc;

use serde_json::json;

use tvdp::api::{ApiRequest, ApiServer, RateLimitConfig};
use tvdp::datagen::{generate, DatasetConfig};
use tvdp::platform::{PlatformConfig, Role, Tvdp};

fn main() {
    // Platform side: stand up the service and issue a key.
    let platform = Arc::new(Tvdp::new(PlatformConfig::default()));
    let dept = platform.register_user("Bureau of Street Services", Role::Government);
    let server = ApiServer::with_rate_limit(
        Arc::clone(&platform),
        RateLimitConfig {
            burst: 10_000,
            per_second: 10_000.0,
            ..Default::default()
        },
    );
    let key = server.issue_key(dept);
    println!("issued API key {key}\n");

    let mut now_ms = 0i64;
    let mut call = |endpoint: &str, body: serde_json::Value| {
        now_ms += 7;
        let response = server.handle(
            &ApiRequest {
                key: key.clone(),
                endpoint: endpoint.into(),
                body,
            },
            now_ms,
        );
        assert!(response.is_ok(), "{endpoint} failed: {:?}", response.body);
        response.body
    };

    // Register the labelling task.
    let scheme = call(
        "schemes/register",
        json!({ "name": "street-cleanliness",
                 "labels": ["Bulky Item", "Illegal Dumping", "Encampment",
                            "Overgrown Vegetation", "Clean"] }),
    )["scheme"]
        .as_u64()
        .unwrap();
    println!("registered scheme cls-{scheme}");

    // Upload 120 images with metadata, labelling 100 of them.
    let data = generate(&DatasetConfig {
        n_images: 120,
        image_size: 48,
        ..Default::default()
    });
    let mut image_ids = Vec::new();
    for (i, d) in data.iter().enumerate() {
        let body = json!({
            "width": d.image.width(),
            "height": d.image.height(),
            "pixels": d.image.raw().to_vec(),
            "lat": d.fov.camera.lat,
            "lon": d.fov.camera.lon,
            "fov": { "heading_deg": d.fov.heading_deg, "angle_deg": d.fov.angle_deg,
                      "radius_m": d.fov.radius_m },
            "captured_at": d.captured_at,
            "uploaded_at": d.uploaded_at,
            "keywords": d.keywords,
        });
        let id = call("data/add", body)["image"].as_u64().unwrap();
        if i < 100 {
            call(
                "annotations/add",
                json!({ "image": id, "scheme": scheme, "label": d.cleanliness.index() }),
            );
        }
        image_ids.push(id);
    }
    println!("uploaded {} images, labelled 100", image_ids.len());

    // Devise a model over the uploads (paper API 7).
    let model = call(
        "models/devise",
        json!({ "name": "cleanliness", "scheme": scheme,
                 "feature_kind": "Cnn", "algorithm": "Mlp" }),
    )["model"]
        .as_u64()
        .unwrap();
    println!("devised model model-{model}");

    // Apply it to the unlabelled tail (paper API 5).
    let tail: Vec<u64> = image_ids[100..].to_vec();
    let preds = call("models/apply", json!({ "model": model, "images": tail }));
    println!(
        "applied model to {} images",
        preds["predictions"].as_array().unwrap().len()
    );

    // Search by keyword and by region (paper API 2).
    let by_word = call(
        "data/search",
        json!({ "query": { "Textual": { "text": "tent", "mode": "Any" } } }),
    );
    println!("keyword 'tent' matches    : {}", by_word["count"]);
    let by_region = call(
        "data/search",
        json!({ "query": { "Spatial": { "Range": {
            "min_lat": 34.04, "min_lon": -118.26, "max_lat": 34.053, "max_lon": -118.238
        } } } }),
    );
    println!("north-half region matches : {}", by_region["count"]);

    // Download a record with pixels (paper API 3).
    let item = call(
        "data/download",
        json!({ "ids": [image_ids[0]], "include_pixels": true }),
    );
    println!(
        "downloaded image {} ({} keyword(s), {} pixel bytes)",
        image_ids[0],
        item["items"][0]["keywords"].as_array().unwrap().len(),
        item["items"][0]["pixels"].as_array().unwrap().len(),
    );

    // Which model should a Raspberry Pi in the field run? (edge dispatch)
    let pick = call(
        "edge/dispatch",
        json!({ "device": "rpi", "max_latency_ms": 800.0 }),
    );
    println!(
        "edge dispatch for an RPi  : {} ({} MB download)",
        pick["model"].as_str().unwrap(),
        pick["download_bytes"].as_u64().unwrap() / 1_000_000
    );

    let stats = call("stats", json!({}));
    println!(
        "\nfinal stats over the API  : {} images, {} annotations, {} models",
        stats["images"], stats["annotations"], stats["models"]
    );
}
