//! The paper's future-work scenario (Section VIII): TVDP as a disaster
//! data platform. A wildfire breaks out; a spatial-crowdsourcing campaign
//! drives drone/mobile capture of the affected area until every cell is
//! photographed from several directions, and responders use directed and
//! temporal queries for situation awareness.
//!
//! Run with: `cargo run --release --example disaster_response`

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use tvdp::crowd::simulate::AssignStrategy;
use tvdp::crowd::{Campaign, SimulationConfig};
use tvdp::geo::{AngularRange, BBox, CoverageSpec, GeoPoint};
use tvdp::platform::{PlatformConfig, Role, Tvdp};
use tvdp::query::{Query, SpatialQuery, TemporalField};
use tvdp::vision::Image;

/// Synthesizes a smoke-tinged aerial frame for a capture pose.
fn drone_frame(rng: &mut StdRng) -> Image {
    let smoke = rng.gen_range(60..200u16);
    Image::from_fn(48, 48, |x, y| {
        let terrain = ((x * 7 + y * 13) % 31) as u16 * 3;
        let v = (terrain + smoke).min(255) as u8;
        [v, v.saturating_sub(20), v.saturating_sub(40)]
    })
}

fn main() {
    let tvdp = Tvdp::new(PlatformConfig::default());
    let agency = tvdp.register_user("Emergency Management", Role::Government);
    let _ngo = tvdp.register_user("Relief NGO", Role::CommunityPartner);

    // 1. Declare the affected area and the coverage goal: every 100 m
    //    cell seen from at least 4 of 8 compass directions.
    let fire_origin = GeoPoint::new(34.08, -118.45);
    let ne = fire_origin.destination(0.0, 800.0);
    let e = fire_origin.destination(90.0, 800.0);
    let area = BBox::new(fire_origin.lat, fire_origin.lon, ne.lat, e.lon);
    let campaign = Campaign::new(
        "wildfire-situation-awareness",
        CoverageSpec::new(area, 100.0, 8),
        4,
        10, // reward points: time-critical tasks pay more
    );
    println!(
        "wildfire campaign over {:.2} km^2, goal: 4 directions per cell",
        area.area_m2() / 1e6
    );

    // 2. Run the iterative campaign; every captured FOV becomes an
    //    ingested drone frame.
    let mut rng = StdRng::seed_from_u64(0xF12E);
    let mut t = 1_700_000_000i64;
    let sim = SimulationConfig {
        n_workers: 30,
        worker_range_m: 400.0,
        round_budget: 400,
        max_rounds: 10,
        strategy: AssignStrategy::Matching,
        ..Default::default()
    };
    let (report, ids) = tvdp
        .acquire_via_campaign(agency, &campaign, &sim, |_fov| {
            t += rng.gen_range(5..40);
            (
                drone_frame(&mut rng),
                vec!["wildfire".into(), "drone".into()],
                t,
            )
        })
        .expect("campaign");
    println!(
        "campaign: {} tasks issued, {} frames captured over {} rounds (goal met: {})",
        report.tasks_issued,
        ids.len(),
        report.rounds.len(),
        report.satisfied
    );
    for (i, round) in report.rounds.iter().enumerate() {
        println!(
            "  round {:>2}: cell coverage {:>5.1}%  direction coverage {:>5.1}%",
            i + 1,
            round.cell_coverage * 100.0,
            round.direction_coverage * 100.0
        );
    }

    // 3. Situation awareness queries.
    // Which frames look north toward the ridge?
    let north = tvdp
        .search(&Query::Spatial(SpatialQuery::Directed {
            region: area,
            directions: AngularRange::centered(0.0, 45.0),
        }))
        .expect("valid query");
    println!(
        "\nframes looking north over the fire area : {}",
        north.len()
    );

    // What arrived in the last simulated ten minutes?
    let fresh = tvdp
        .search(&Query::Temporal {
            field: TemporalField::Captured,
            from: t - 600,
            to: t,
        })
        .expect("valid query");
    println!("frames from the last 10 minutes          : {}", fresh.len());

    // Who can see the fire origin right now?
    let eyes = tvdp
        .search(&Query::Spatial(SpatialQuery::Covering(
            fire_origin.destination(45.0, 300.0),
        )))
        .expect("valid query");
    println!("frames with eyes on the hotspot          : {}", eyes.len());

    println!(
        "\nplatform holds {} frames ready for damage-evaluation learning",
        tvdp.stats().images
    );
}
