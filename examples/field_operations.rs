//! Field-operations walkthrough: the messier acquisition paths a real
//! deployment hits — dash-cam videos, duplicate uploads, and photos that
//! arrive without GPS.
//!
//! Run with: `cargo run --release --example field_operations`

use std::sync::Arc;

use tvdp::datagen::{generate, DatasetConfig};
use tvdp::geo::{Fov, GeoPoint};
use tvdp::platform::platform::{IngestOutcome, IngestRequest};
use tvdp::platform::video::{KeyframePolicy, VideoFrame};
use tvdp::platform::{PlatformConfig, Role, Tvdp};
use tvdp::query::engine::EngineConfig;
use tvdp::query::{localize, QueryEngine};
use tvdp::storage::persist;
use tvdp::vision::{ColorHistogramExtractor, FeatureExtractor, FeatureKind, Image};

fn main() {
    let tvdp = Tvdp::new(PlatformConfig::default());
    let dept = tvdp.register_user("Street Services", Role::Government);

    // ------------------------------------------------------------------
    // 1. A dash-cam video arrives: 40 frames, truck stopped at a light
    //    for half of them. Key-frame selection stores only the novel ones.
    // ------------------------------------------------------------------
    let start = GeoPoint::new(34.045, -118.25);
    let frames: Vec<VideoFrame> = (0..40)
        .map(|i| {
            let moved = if i < 20 { 0.0 } else { (i - 19) as f64 * 18.0 };
            VideoFrame {
                image: Image::from_fn(48, 48, |x, y| {
                    let v = ((x * 3 + y * 7 + i) % 23) as u8 * 9;
                    [v, v / 2, 120]
                }),
                fov: Fov::new(start.destination(90.0, moved), 90.0, 60.0, 90.0),
                captured_at: 1_700_000_000 + i as i64,
            }
        })
        .collect();
    let report = tvdp
        .ingest_video(
            dept,
            &frames,
            KeyframePolicy::SpatialNovelty {
                min_move_m: 12.0,
                min_turn_deg: 30.0,
            },
            vec!["route-12".into(), "dashcam".into()],
        )
        .expect("video ingest");
    println!(
        "dash-cam video: {} frames offered, {} key frames stored, {} redundant frames dropped",
        report.frames_offered,
        report.keyframes.len(),
        report.frames_dropped
    );

    // ------------------------------------------------------------------
    // 2. A community partner re-uploads a photo the truck already took.
    //    Near-duplicate detection rejects it and points at the original.
    // ------------------------------------------------------------------
    let partner = tvdp.register_user("Neighborhood Watch", Role::CommunityPartner);
    let original_id = report.keyframes[0];
    let original_pixels = tvdp.store().pixels(original_id).expect("stored key frame");
    let outcome = tvdp
        .ingest_dedup(
            partner,
            original_pixels,
            IngestRequest {
                gps: frames[0].fov.camera,
                fov: Some(frames[0].fov),
                captured_at: 1_700_000_100,
                uploaded_at: 1_700_000_160,
                keywords: vec!["repeat".into()],
            },
            0.05,
            50.0,
        )
        .expect("dedup ingest");
    match outcome {
        IngestOutcome::Duplicate {
            existing,
            feature_distance,
        } => println!(
            "re-upload rejected: duplicate of {existing} (feature distance {feature_distance:.3})"
        ),
        IngestOutcome::Stored(id) => println!("unexpectedly stored as {id}"),
    }

    // ------------------------------------------------------------------
    // 3. A photo arrives with no GPS (stripped EXIF). Localize it from
    //    the platform's geo-tagged corpus by visual appearance.
    // ------------------------------------------------------------------
    let corpus = generate(&DatasetConfig {
        n_images: 400,
        image_size: 48,
        appearance_by_block: true,
        ..Default::default()
    });
    let extractor = ColorHistogramExtractor::paper_default();
    let store = tvdp.store();
    for d in &corpus[..360] {
        let id = tvdp
            .ingest(
                dept,
                d.image.clone(),
                IngestRequest {
                    gps: d.fov.camera,
                    fov: Some(d.fov),
                    captured_at: d.captured_at,
                    uploaded_at: d.uploaded_at,
                    keywords: vec![],
                },
            )
            .expect("corpus ingest");
        store
            .put_feature(id, FeatureKind::ColorHistogram, extractor.extract(&d.image))
            .expect("store feature");
    }
    // A color-appearance engine over the same store.
    let engine = QueryEngine::build(
        Arc::clone(store),
        EngineConfig {
            visual_kind: FeatureKind::ColorHistogram,
            ..Default::default()
        },
    );
    // Forty photos with stripped EXIF; report the median placement error.
    let mut errors: Vec<f64> = Vec::new();
    for mystery in &corpus[360..] {
        let features = extractor.extract(&mystery.image);
        let estimate = localize(&engine, store, &features, FeatureKind::ColorHistogram, 9)
            .expect("enough neighbours");
        errors.push(estimate.center.fast_distance_m(&mystery.fov.camera));
    }
    errors.sort_by(f64::total_cmp);
    println!(
        "{} GPS-less photos localized by appearance: median error {:.0} m \
         (blind guess over this ~2 km region would median ~900 m)",
        errors.len(),
        errors[errors.len() / 2]
    );

    // ------------------------------------------------------------------
    // 4. End of shift: persist everything.
    // ------------------------------------------------------------------
    let mut path = std::env::temp_dir();
    path.push("tvdp-field-ops.jsonl");
    persist::save(store, &path).expect("persist");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "\npersisted {} images ({} annotations) to {} ({} KiB)",
        tvdp.stats().images,
        tvdp.stats().annotations,
        path.display(),
        bytes / 1024
    );
    std::fs::remove_file(&path).ok();
}
