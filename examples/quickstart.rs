//! Quickstart: stand up a TVDP instance, upload geo-tagged images, query
//! them five different ways, train a model, and apply it.
//!
//! Run with: `cargo run --release --example quickstart`

use tvdp::datagen::{generate, DatasetConfig};
use tvdp::geo::{AngularRange, BBox};
use tvdp::platform::platform::{Algorithm, IngestRequest};
use tvdp::platform::{PlatformConfig, Role, Tvdp};
use tvdp::query::{Query, SpatialQuery, TemporalField, TextualMode, VisualMode};
use tvdp::vision::FeatureKind;

fn main() {
    // 1. A platform and a participant.
    let tvdp = Tvdp::new(PlatformConfig::default());
    let city = tvdp.register_user("City of Los Angeles", Role::Government);
    println!("registered {city} — City of Los Angeles (Government)");

    // 2. Upload 300 geo-tagged street images (synthetic stand-ins for
    //    truck-mounted camera captures).
    let data = generate(&DatasetConfig {
        n_images: 300,
        image_size: 48,
        ..Default::default()
    });
    let scheme = tvdp
        .register_scheme(
            "street-cleanliness",
            tvdp::datagen::CleanlinessClass::ALL
                .iter()
                .map(|c| c.label().into())
                .collect(),
        )
        .expect("fresh scheme");
    let mut ids = Vec::new();
    for d in &data {
        let id = tvdp
            .ingest(
                city,
                d.image.clone(),
                IngestRequest {
                    gps: d.fov.camera,
                    fov: Some(d.fov),
                    captured_at: d.captured_at,
                    uploaded_at: d.uploaded_at,
                    keywords: d.keywords.clone(),
                },
            )
            .expect("ingest");
        ids.push(id);
    }
    println!(
        "ingested {} images ({} indexed features each)",
        ids.len(),
        2
    );

    // 3. Query the platform five ways.
    let region = BBox::new(34.04, -118.255, 34.05, -118.245);
    let spatial = tvdp
        .search(&Query::Spatial(SpatialQuery::Range(region)))
        .expect("valid query");
    println!("spatial range query      : {} hits", spatial.len());

    let directed = tvdp
        .search(&Query::Spatial(SpatialQuery::Directed {
            region: BBox::new(34.035, -118.26, 34.053, -118.238),
            directions: AngularRange::centered(0.0, 60.0),
        }))
        .expect("valid query");
    println!("north-facing FOV query   : {} hits", directed.len());

    let example = tvdp
        .store()
        .feature(ids[0], FeatureKind::Cnn)
        .expect("stored feature");
    let similar = tvdp
        .search(&Query::Visual {
            example,
            kind: FeatureKind::Cnn,
            mode: VisualMode::TopK(5),
        })
        .expect("valid query");
    println!(
        "visual top-5 (like img 0): {:?}",
        similar.iter().map(|r| r.image.raw()).collect::<Vec<_>>()
    );

    let textual = tvdp
        .search(&Query::Textual {
            text: "tent".into(),
            mode: TextualMode::All,
        })
        .expect("valid query");
    println!("keyword query 'tent'     : {} hits", textual.len());

    let temporal = tvdp
        .search(&Query::Temporal {
            field: TemporalField::Captured,
            from: data[0].captured_at - 86_400,
            to: data[0].captured_at + 86_400,
        })
        .expect("valid query");
    println!("±1 day around capture #0 : {} hits", temporal.len());

    // 4. Label some uploads, train an MLP (the fine-tuned-CNN analogue),
    //    classify the rest.
    let labelled = 240;
    for (d, &id) in data[..labelled].iter().zip(&ids[..labelled]) {
        tvdp.annotate_human(city, id, scheme, d.cleanliness.index())
            .expect("annotate");
    }
    let model = tvdp
        .train_model(
            city,
            "cleanliness-mlp",
            scheme,
            FeatureKind::Cnn,
            Algorithm::Mlp,
        )
        .expect("train");
    let predictions = tvdp.apply_model(model, &ids[labelled..]).expect("apply");
    let correct = predictions
        .iter()
        .zip(&data[labelled..])
        .filter(|((_, label, _), d)| *label == d.cleanliness.index())
        .count();
    println!(
        "trained {model}; classified {} new images, {}/{} match ground truth",
        predictions.len(),
        correct,
        predictions.len()
    );

    // 5. Hybrid query: encampment-labelled images in a region.
    let enc = tvdp::datagen::CleanlinessClass::Encampment.index();
    let hybrid = tvdp
        .search(&Query::And(vec![
            Query::Spatial(SpatialQuery::Range(BBox::new(
                34.035, -118.26, 34.053, -118.238,
            ))),
            Query::Categorical {
                scheme,
                label: enc,
                min_confidence: 0.0,
            },
        ]))
        .expect("valid query");
    println!("encampments in region    : {} images", hybrid.len());

    let stats = tvdp.stats();
    println!(
        "\nplatform stats: {} images, {} annotations, {} models, {} users",
        stats.images, stats.annotations, stats.models, stats.users
    );
}
