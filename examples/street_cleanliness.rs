//! The paper's flagship scenario (Section II + VII): LASAN collects
//! street imagery, USC builds a cleanliness classifier, the results are
//! written back as annotations, and the Homeless Coordinator reuses the
//! encampment class — translational data in action.
//!
//! Run with: `cargo run --release --example street_cleanliness`

use tvdp::datagen::{generate, CleanlinessClass, DatasetConfig, StreetGrid};
use tvdp::platform::platform::{Algorithm, IngestRequest};
use tvdp::platform::{count_by_cell, hotspots, PlatformConfig, Role, Tvdp};
use tvdp::vision::FeatureKind;

fn main() {
    let tvdp = Tvdp::new(PlatformConfig::default());

    // The collaborators of the paper's example scenario.
    let lasan = tvdp.register_user("LA Sanitation (LASAN)", Role::Government);
    let usc = tvdp.register_user("USC IMSC", Role::Researcher);
    let coordinator = tvdp.register_user("Homeless Coordinator", Role::Government);
    println!("participants: LASAN (gov), USC (research), Homeless Coordinator (gov)\n");

    // 1. LASAN's garbage trucks record streets while on their routes.
    let data = generate(&DatasetConfig {
        n_images: 700,
        image_size: 48,
        ..Default::default()
    });
    let cleanliness = tvdp
        .register_scheme(
            "street-cleanliness",
            CleanlinessClass::ALL
                .iter()
                .map(|c| c.label().into())
                .collect(),
        )
        .expect("fresh scheme");
    let batch: Vec<_> = data
        .iter()
        .map(|d| {
            (
                d.image.clone(),
                IngestRequest {
                    gps: d.fov.camera,
                    fov: Some(d.fov),
                    captured_at: d.captured_at,
                    uploaded_at: d.uploaded_at,
                    keywords: d.keywords.clone(),
                },
            )
        })
        .collect();
    let ids = tvdp.ingest_batch(lasan, batch, 8).expect("ingest");
    println!("LASAN uploaded {} truck-camera images", ids.len());

    // 2. LASAN labels a training portion with its cleanliness levels.
    let labelled = 500;
    for (d, &id) in data[..labelled].iter().zip(&ids[..labelled]) {
        tvdp.annotate_human(lasan, id, cleanliness, d.cleanliness.index())
            .expect("annotate");
    }
    println!("LASAN hand-labelled {labelled} of them");

    // 3. USC trains the classifier and machine-annotates the rest.
    let model = tvdp
        .train_model(
            usc,
            "cleanliness",
            cleanliness,
            FeatureKind::Cnn,
            Algorithm::Mlp,
        )
        .expect("train");
    let predictions = tvdp.apply_model(model, &ids[labelled..]).expect("apply");
    let per_class: Vec<usize> = (0..5)
        .map(|c| {
            predictions
                .iter()
                .filter(|(_, label, _)| *label == c)
                .count()
        })
        .collect();
    println!(
        "\nUSC's model classified the remaining {}:",
        predictions.len()
    );
    for (c, count) in CleanlinessClass::ALL.iter().zip(&per_class) {
        println!("  {:<22} {count}", c.label());
    }

    // 4. Translation: the Homeless Coordinator queries the encampment
    //    annotations — produced for street cleaning — to map tents.
    let enc = CleanlinessClass::Encampment.index();
    let region = *StreetGrid::downtown_la().region();
    let cells = count_by_cell(tvdp.store(), cleanliness, enc, &region, 200.0, 0.0);
    let top = hotspots(tvdp.store(), cleanliness, enc, &region, 200.0, 0.0, 3);
    let tents: usize = cells.iter().map(|c| c.count).sum();
    println!("\nHomeless Coordinator (no new learning, same database):");
    println!(
        "  {} encampment sightings across {} map cells",
        tents,
        cells.len()
    );
    println!("  top tent hotspots:");
    for (i, cell) in top.iter().enumerate() {
        let c = cell.cell.center();
        println!(
            "    #{} at ({:.4}, {:.4}) — {} sightings",
            i + 1,
            c.lat,
            c.lon,
            cell.count
        );
    }
    let _ = coordinator;

    // 5. Street cleaning actions go out for the dirtiest detections.
    let dirty: Vec<_> = predictions
        .iter()
        .filter(|(_, label, conf)| {
            *label == CleanlinessClass::IllegalDumping.index() && *conf > 0.5
        })
        .collect();
    println!(
        "\nLASAN dispatches cleanup crews to {} high-confidence illegal-dumping sites",
        dirty.len()
    );
    let stats = tvdp.stats();
    println!(
        "\nfinal platform state: {} images, {} annotations, {} models",
        stats.images, stats.annotations, stats.models
    );
}
