//! Umbrella crate for the Translational Visual Data Platform (TVDP).
//!
//! Re-exports every TVDP subsystem under one namespace. See the README for
//! an architecture overview and `DESIGN.md` for the system inventory.

pub use tvdp_api as api;
pub use tvdp_core as platform;
pub use tvdp_crowd as crowd;
pub use tvdp_datagen as datagen;
pub use tvdp_edge as edge;
pub use tvdp_geo as geo;
pub use tvdp_index as index;
pub use tvdp_kernel as kernel;
pub use tvdp_ml as ml;
pub use tvdp_query as query;
pub use tvdp_storage as storage;
pub use tvdp_vision as vision;
