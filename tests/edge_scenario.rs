//! Cross-crate integration of the Action layer: dispatch, energy limits,
//! latency simulation, and the crowd-based learning loop working on one
//! fleet.

use tvdp::edge::learning::run_crowd_learning;
use tvdp::edge::{
    energy_per_inference_j, inferences_per_charge, simulate_inference, CrowdLearningConfig,
    DeviceClass, DispatchConstraints, EdgeNode, ModelDispatcher, PowerProfile, SelectionStrategy,
    MODEL_ZOO,
};
use tvdp::ml::{Dataset, LinearSvm};

#[test]
fn fleet_dispatch_energy_and_latency_are_consistent() {
    let dispatcher = ModelDispatcher::new(MODEL_ZOO.to_vec()).expect("zoo is non-empty");
    for class in DeviceClass::ALL {
        let device = class.profile();
        let power = PowerProfile::for_device(&device);
        let constraints = DispatchConstraints {
            max_latency_ms: 800.0,
            min_accuracy: None,
            min_inferences_per_charge: Some(5_000),
        };
        let Some(model) = dispatcher.dispatch(&device, &constraints) else {
            panic!("{class:?} got no model under a generous budget");
        };
        // The dispatched model honours the latency constraint when
        // actually simulated.
        let stats = simulate_inference(&model, &device, 100, 42);
        assert!(
            stats.mean_ms <= 800.0 * 1.2,
            "{class:?}/{}: simulated {} ms breaks the 800 ms dispatch promise",
            model.name,
            stats.mean_ms
        );
        // And the energy constraint, when the device has a battery.
        if let Some(per_charge) = inferences_per_charge(&model, &device, &power) {
            assert!(
                per_charge >= 5_000,
                "{class:?}: only {per_charge} inferences per charge"
            );
        }
        assert!(energy_per_inference_j(&model, &device, &power) > 0.0);
    }
}

#[test]
fn learning_loop_runs_on_dispatched_fleet() {
    // A two-blob problem distributed over the three device tiers.
    let mut train_x = Vec::new();
    let mut train_y = Vec::new();
    for i in 0..10 {
        let j = (i % 5) as f32 * 0.1;
        train_x.push(vec![j, j]);
        train_y.push(0);
        train_x.push(vec![3.0 + j, 3.0 - j]);
        train_y.push(1);
    }
    let train = Dataset::new(train_x, train_y, 2);
    let mut test_x = Vec::new();
    let mut test_y = Vec::new();
    for i in 0..60 {
        let j = (i % 20) as f32 * 0.07;
        test_x.push(vec![j, 0.5 - j]);
        test_y.push(0);
        test_x.push(vec![3.0 - j, 2.5 + j]);
        test_y.push(1);
    }
    let test = Dataset::new(test_x, test_y, 2);

    let mut edges: Vec<EdgeNode> = DeviceClass::ALL
        .iter()
        .enumerate()
        .map(|(i, _)| EdgeNode {
            id: i as u64,
            pool: (0..60)
                .map(|k| {
                    let class = k % 2;
                    let j = (k % 12) as f32 * 0.09;
                    (vec![class as f32 * 3.0 + j, class as f32 * 3.0 - j], class)
                })
                .collect(),
        })
        .collect();

    let report = run_crowd_learning(
        &train,
        &test,
        &mut edges,
        &CrowdLearningConfig {
            rounds: 3,
            per_edge_budget_bytes: 96, // 12 two-dim f32 vectors
            feature_bytes: 8,
            raw_image_bytes: 6_912,
            strategy: SelectionStrategy::Margin,
            seed: 7,
        },
        LinearSvm::new,
    );
    assert!(report.final_f1() >= report.initial_f1() - 0.02);
    assert!(report.bandwidth_saving > 0.99);
    // Each edge shipped at most its budget each round.
    for r in &report.rounds[1..] {
        assert!(r.uploaded <= 3 * 12);
    }
}
