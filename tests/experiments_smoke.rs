//! Shape invariants of every experiment runner at tiny scale: the
//! qualitative claims the paper's figures rest on must hold even in fast
//! debug runs (statistical claims are asserted loosely; the release-mode
//! figure binaries verify them at full scale).

use tvdp_bench::{
    run_coverage, run_edge_learning, run_fig8, run_fig9, CoverageConfig, EdgeLearningConfig,
    Fig8Config, Fig9Config,
};

#[test]
fn fig8_latency_ordering_holds() {
    let result = run_fig8(&Fig8Config { runs: 40, seed: 3 });
    // Every model: desktop < smartphone < RPi.
    for model in ["MobileNetV1", "MobileNetV2", "InceptionV3"] {
        let d = result.mean_ms(model, "Desktop").unwrap();
        let s = result.mean_ms(model, "Smartphone").unwrap();
        let r = result.mean_ms(model, "Raspberry PI").unwrap();
        assert!(d < s && s < r, "{model}: {d} {s} {r}");
    }
    // Every device: MobileNetV2 < MobileNetV1 < InceptionV3.
    for device in ["Desktop", "Smartphone", "Raspberry PI"] {
        let v2 = result.mean_ms("MobileNetV2", device).unwrap();
        let v1 = result.mean_ms("MobileNetV1", device).unwrap();
        let inc = result.mean_ms("InceptionV3", device).unwrap();
        assert!(v2 < v1 && v1 < inc, "{device}: {v2} {v1} {inc}");
    }
    // Paper's headline: ~1.5 orders of magnitude RPi vs desktop.
    let orders = result.rpi_desktop_orders();
    assert!((1.0..2.3).contains(&orders), "separation {orders}");
}

#[test]
fn fig9_translational_flow_produces_usable_knowledge() {
    let r = run_fig9(&Fig9Config {
        n_images: 200,
        image_size: 32,
        ..Default::default()
    });
    // The cleanliness model must beat random guessing (5 classes).
    assert!(
        r.cleanliness_f1 > 0.25,
        "cleanliness F1 {}",
        r.cleanliness_f1
    );
    // The reused encampment knowledge localizes something real.
    assert!(r.tents_ground_truth > 0);
    assert!(r.hotspot_cells > 0);
    // The graffiti follow-on beats random (2 classes) on the same data.
    assert!(r.graffiti_f1 > 0.4, "graffiti F1 {}", r.graffiti_f1);
    assert_eq!(r.images_reused, 200);
}

#[test]
fn coverage_campaign_is_monotone_and_terminates() {
    let result = run_coverage(&CoverageConfig {
        region_m: 300.0,
        min_sectors: 3,
        max_rounds: 10,
        ..Default::default()
    });
    for outcome in &result.outcomes {
        for w in outcome.coverage_per_round.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "{}: coverage decreased",
                outcome.strategy
            );
        }
        assert!(
            outcome.satisfied,
            "{} did not reach the goal",
            outcome.strategy
        );
    }
}

#[test]
fn edge_learning_improves_and_saves_bandwidth() {
    let result = run_edge_learning(&EdgeLearningConfig {
        n_images: 260,
        image_size: 32,
        server_seed_size: 40,
        test_size: 60,
        n_edges: 4,
        rounds: 3,
        per_edge_budget_bytes: 30_000,
        ..Default::default()
    });
    for outcome in &result.outcomes {
        let first = outcome.f1_per_round[0];
        let best = outcome.f1_per_round.iter().copied().fold(0.0f64, f64::max);
        assert!(
            best > first,
            "{}: no round improved on the seed model",
            outcome.strategy
        );
        assert!(outcome.bandwidth_saving > 0.0);
    }
    assert!(result.feature_bytes < result.raw_image_bytes);
}
