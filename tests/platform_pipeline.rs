//! Cross-crate integration: the full platform pipeline from synthetic
//! acquisition through analysis, translational reuse, and persistence.

use std::sync::Arc;

use tvdp::datagen::{generate, CleanlinessClass, DatasetConfig, StreetGrid};
use tvdp::platform::platform::{Algorithm, IngestRequest};
use tvdp::platform::{count_by_cell, PlatformConfig, Role, Tvdp};
use tvdp::query::engine::EngineConfig;
use tvdp::query::{Query, QueryEngine, SpatialQuery, TextualMode};
use tvdp::storage::persist;
use tvdp::vision::{CnnConfig, FeatureKind};

fn fast_platform() -> Tvdp {
    Tvdp::new(PlatformConfig {
        cnn: CnnConfig {
            input_size: 16,
            stage_channels: vec![4, 8],
            pool_grid: 2,
            seed: 1,
        },
        min_training_samples: 10,
        ..Default::default()
    })
}

#[test]
fn ingest_train_apply_translate() {
    let tvdp = fast_platform();
    let gov = tvdp.register_user("LASAN", Role::Government);
    let usc = tvdp.register_user("USC", Role::Researcher);
    let scheme = tvdp
        .register_scheme(
            "street-cleanliness",
            CleanlinessClass::ALL
                .iter()
                .map(|c| c.label().into())
                .collect(),
        )
        .unwrap();

    let data = generate(&DatasetConfig {
        n_images: 120,
        image_size: 32,
        ..Default::default()
    });
    let mut ids = Vec::new();
    for d in &data {
        ids.push(
            tvdp.ingest(
                gov,
                d.image.clone(),
                IngestRequest {
                    gps: d.fov.camera,
                    fov: Some(d.fov),
                    captured_at: d.captured_at,
                    uploaded_at: d.uploaded_at,
                    keywords: d.keywords.clone(),
                },
            )
            .unwrap(),
        );
    }
    // Label 90, machine-annotate 30.
    for (d, &id) in data[..90].iter().zip(&ids[..90]) {
        tvdp.annotate_human(gov, id, scheme, d.cleanliness.index())
            .unwrap();
    }
    let model = tvdp
        .train_model(
            usc,
            "m",
            scheme,
            FeatureKind::Cnn,
            Algorithm::RandomForest(10),
        )
        .unwrap();
    let predictions = tvdp.apply_model(model, &ids[90..]).unwrap();
    assert_eq!(predictions.len(), 30);

    // Translational reuse: encampment counting over ALL annotations.
    let enc = CleanlinessClass::Encampment.index();
    let region = *StreetGrid::downtown_la().region();
    let cells = count_by_cell(tvdp.store(), scheme, enc, &region, 300.0, 0.0);
    let counted: usize = cells.iter().map(|c| c.count).sum();
    let human_enc = data[..90]
        .iter()
        .filter(|d| d.cleanliness == CleanlinessClass::Encampment)
        .count();
    assert!(
        counted >= human_enc,
        "human annotations alone guarantee {human_enc}"
    );

    // Every machine annotation is attached to the right scheme.
    for &id in &ids[90..] {
        let anns = tvdp.store().annotations_of(id);
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].classification, scheme);
        assert!(!anns[0].is_human());
    }
}

#[test]
fn persistence_roundtrip_preserves_queryability() {
    let tvdp = fast_platform();
    let user = tvdp.register_user("u", Role::CommunityPartner);
    let data = generate(&DatasetConfig {
        n_images: 40,
        image_size: 32,
        ..Default::default()
    });
    for d in &data {
        tvdp.ingest(
            user,
            d.image.clone(),
            IngestRequest {
                gps: d.fov.camera,
                fov: Some(d.fov),
                captured_at: d.captured_at,
                uploaded_at: d.uploaded_at,
                keywords: vec!["persisted".into()],
            },
        )
        .unwrap();
    }

    // Save, reload, rebuild the engine over the reloaded store.
    let mut path = std::env::temp_dir();
    path.push(format!("tvdp-pipeline-{}.jsonl", std::process::id()));
    persist::save(tvdp.store(), &path).unwrap();
    let reloaded = Arc::new(persist::load(&path).unwrap());
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.len(), 40);

    let engine = QueryEngine::build(Arc::clone(&reloaded), EngineConfig::default());
    let hits = engine.execute(&Query::Textual {
        text: "persisted".into(),
        mode: TextualMode::All,
    });
    assert_eq!(hits.len(), 40);

    // Spatial queries agree before and after the round trip.
    let region = *StreetGrid::downtown_la().region();
    let before = tvdp
        .search(&Query::Spatial(SpatialQuery::Range(region)))
        .unwrap()
        .len();
    let after = engine
        .execute(&Query::Spatial(SpatialQuery::Range(region)))
        .len();
    assert_eq!(before, after);

    // Features survive too.
    for id in reloaded.image_ids() {
        assert!(reloaded.feature(id, FeatureKind::Cnn).is_some());
    }
}

#[test]
fn campaign_acquisition_feeds_directed_queries() {
    use tvdp::crowd::{Campaign, SimulationConfig};
    use tvdp::geo::{AngularRange, BBox, CoverageSpec, GeoPoint};

    let tvdp = fast_platform();
    let agency = tvdp.register_user("agency", Role::Government);
    let sw = GeoPoint::new(34.02, -118.29);
    let ne = sw.destination(0.0, 300.0);
    let e = sw.destination(90.0, 300.0);
    let area = BBox::new(sw.lat, sw.lon, ne.lat, e.lon);
    let campaign = Campaign::new("c", CoverageSpec::new(area, 100.0, 8), 2, 1);
    let sim = SimulationConfig {
        max_rounds: 4,
        ..Default::default()
    };
    let mut t = 0i64;
    let (report, ids) = tvdp
        .acquire_via_campaign(agency, &campaign, &sim, |_| {
            t += 10;
            (
                tvdp::vision::Image::from_fn(24, 24, |x, y| [x as u8, y as u8, 100]),
                vec!["campaign".into()],
                t,
            )
        })
        .unwrap();
    assert!(!ids.is_empty());
    assert_eq!(report.tasks_completed, ids.len());

    // All captures are findable, and direction filters prune.
    let all = tvdp
        .search(&Query::Spatial(SpatialQuery::Directed {
            region: area,
            directions: AngularRange::FULL,
        }))
        .unwrap();
    assert_eq!(all.len(), ids.len());
    let north_only = tvdp
        .search(&Query::Spatial(SpatialQuery::Directed {
            region: area,
            directions: AngularRange::centered(0.0, 30.0),
        }))
        .unwrap();
    assert!(north_only.len() < all.len());
}

#[test]
fn augmentation_expands_training_data_with_lineage() {
    use tvdp::vision::Augmentation;

    let tvdp = fast_platform();
    let user = tvdp.register_user("u", Role::Academic);
    let data = generate(&DatasetConfig {
        n_images: 6,
        image_size: 32,
        ..Default::default()
    });
    let d = &data[0];
    let parent = tvdp
        .ingest(
            user,
            d.image.clone(),
            IngestRequest {
                gps: d.fov.camera,
                fov: Some(d.fov),
                captured_at: d.captured_at,
                uploaded_at: d.uploaded_at,
                keywords: vec![],
            },
        )
        .unwrap();
    let ops = [
        Augmentation::FlipHorizontal,
        Augmentation::Rotate180,
        Augmentation::Brightness { delta: 25 },
        Augmentation::GaussianNoise {
            sigma: 5.0,
            seed: 3,
        },
    ];
    let children: Vec<_> = ops
        .iter()
        .map(|op| tvdp.augment(user, parent, *op).unwrap())
        .collect();
    assert_eq!(tvdp.store().augmented_children(parent).len(), 4);
    for &child in &children {
        let rec = tvdp.store().image(child).unwrap();
        assert!(rec.is_augmented());
        // Augmented rows inherit the parent's spatial metadata.
        assert_eq!(rec.meta.gps, d.fov.camera);
        assert!(tvdp.store().feature(child, FeatureKind::Cnn).is_some());
    }
    assert_eq!(tvdp.stats().images, 5);
}
